// Paper Fig. 9: impact of the federation size |P|. The paper sweeps 1M-5M
// records; locally we sweep 100k-500k so the suite finishes in minutes,
// and FRA_BENCH_SCALE=paper restores the paper's scale (see
// EXPERIMENTS.md).

#include "bench/fig_common.h"

int main() {
  const char* env = std::getenv("FRA_BENCH_SCALE");
  const bool paper_scale = env != nullptr && std::string(env) == "paper";
  const size_t unit = paper_scale ? 1'000'000 : 100'000;

  std::vector<fra::bench::SweepPoint> points;
  for (size_t k : {1UL, 2UL, 3UL, 4UL, 5UL}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.total_objects = k * unit;
    char label[32];
    std::snprintf(label, sizeof(label), "%zuk",
                  config.total_objects / 1000);
    points.push_back({label, config});
  }
  // Bypass ApplyEnvScale's default override by clearing the variable: the
  // sweep sets total_objects explicitly.
  ::unsetenv("FRA_BENCH_SCALE");
  return fra::bench::RunFigure("Fig. 9: impact of federation size |P|",
                               "|P|", points);
}
