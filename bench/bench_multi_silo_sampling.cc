// Extension study: sampling k silos per query instead of 1. The paper's
// single-silo scheme is k = 1; averaging k independent per-silo estimates
// reduces variance ~ 1/sqrt(k) at the cost of k communication exchanges
// (k = m degenerates to an approximate fan-out). This bench maps the
// accuracy/communication frontier.

#include <cstdio>

#include "baseline/centralized.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "util/timer.h"

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 600000;
  data_options.seed = 31;
  data_options.non_iid = true;
  const auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();
  auto partitions =
      fra::SplitIntoSilos(dataset.company_partitions, 6, 1).ValueOrDie();
  const fra::CentralizedRTree truth(partitions);

  fra::WorkloadOptions workload;
  workload.num_queries = 150;
  workload.radius_km = 2.0;
  workload.seed = 32;
  const auto queries =
      fra::GenerateQueries(partitions, workload).ValueOrDie();
  std::vector<double> exact(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    exact[i] =
        truth.Aggregate(queries[i].range, queries[i].kind).ValueOrDie();
  }

  std::printf("\n=== Extension: k silos per query (IID-est / NonIID-est) "
              "===\n");
  std::printf("%-4s %16s %16s %14s %14s\n", "k", "IID MRE(%)",
              "NonIID MRE(%)", "msgs/query", "time(ms)");

  for (size_t k = 1; k <= 6; ++k) {
    fra::FederationOptions options;
    options.silo.grid_spec.domain = dataset.domain;
    options.silo.grid_spec.cell_length = 1.5;
    options.provider.silos_per_query = k;
    auto federation =
        fra::Federation::Create(partitions, options).ValueOrDie();
    fra::ServiceProvider& provider = federation->provider();

    double mres[2] = {0.0, 0.0};
    double msgs_per_query = 0.0;
    double total_ms = 0.0;
    const fra::FraAlgorithm algorithms[2] = {fra::FraAlgorithm::kIidEst,
                                             fra::FraAlgorithm::kNonIidEst};
    for (int a = 0; a < 2; ++a) {
      const fra::CommStats::Snapshot before = provider.comm();
      fra::Timer timer;
      const auto answers =
          provider.ExecuteBatch(queries, algorithms[a]).ValueOrDie();
      total_ms += timer.ElapsedMillis();
      const fra::CommStats::Snapshot comm = provider.comm() - before;
      msgs_per_query = static_cast<double>(comm.messages) /
                       static_cast<double>(queries.size());
      fra::MreAccumulator mre;
      for (size_t i = 0; i < answers.size(); ++i) {
        mre.Add(exact[i], answers[i]);
      }
      mres[a] = mre.Mre();
    }
    std::printf("%-4zu %16.3f %16.3f %14.1f %14.2f\n", k, mres[0] * 100.0,
                mres[1] * 100.0, msgs_per_query, total_ms);
  }
  std::printf("\nk = 1 is the paper's algorithm; k = m approaches the\n"
              "accuracy of a fan-out at a fan-out's communication cost.\n");
  return 0;
}
