// Ablation: LSR-Forest level choice. Forces every level of one silo's
// forest on a fixed local workload and reports per-level error/latency,
// then shows where Lemma 1 lands for the default (eps, delta). Validates
// the design decision that the level formula balances the two.

#include <cstdio>

#include "core/lsr_forest.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "util/timer.h"

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 400000;
  data_options.seed = 1;
  auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();

  // One silo's partition: company 0.
  const fra::ObjectSet& partition = dataset.company_partitions[0];
  const fra::LsrForest forest = fra::LsrForest::Build(partition);

  fra::WorkloadOptions workload;
  workload.num_queries = 200;
  workload.radius_km = 2.0;
  workload.seed = 5;
  const auto queries =
      fra::GenerateQueries({partition}, workload).ValueOrDie();

  // Exact local answers from T_0.
  std::vector<double> exact(queries.size());
  double mean_exact = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    exact[i] = static_cast<double>(
        forest.ExactRangeAggregate(queries[i].range).count);
    mean_exact += exact[i];
  }
  mean_exact /= static_cast<double>(queries.size());

  std::printf("\n=== Ablation: forced LSR level vs Lemma 1 ===\n");
  std::printf("silo size n=%zu, levels=%d, workload: %zu circular COUNT "
              "queries (r=2km)\n",
              partition.size(), forest.num_levels(), queries.size());
  std::printf("%-8s %12s %14s %14s %12s\n", "level", "MRE(%)", "time(ms)",
              "us/query", "tree size");

  for (int level = 0; level < forest.num_levels(); ++level) {
    fra::MreAccumulator mre;
    fra::Timer timer;
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto estimate = forest.AggregateAtLevel(queries[i].range, level);
      mre.Add(exact[i], static_cast<double>(estimate.count));
    }
    const double elapsed_ms = timer.ElapsedMillis();
    std::printf("%-8d %12.3f %14.3f %14.2f %12zu\n", level, mre.Mre() * 100.0,
                elapsed_ms,
                elapsed_ms * 1000.0 / static_cast<double>(queries.size()),
                forest.tree(level).size());
  }

  for (double epsilon : {0.05, 0.10, 0.25}) {
    const int chosen = fra::LsrForest::SelectLevel(
        epsilon, 0.01, mean_exact, forest.max_level());
    std::printf("Lemma 1 picks level %d for eps=%.2f, delta=0.01 "
                "(sum0=mean exact=%.0f)\n",
                chosen, epsilon, mean_exact);
  }
  return 0;
}
