// Range-shape study: the paper's Def. 2 allows circular and rectangular
// ranges. The evaluation uses circles; this bench runs the default
// configuration under both shapes (square side = 2r for equal extent) to
// confirm the estimators behave identically on rectangles — where the
// grid fast path is even cheaper (one O(1) prefix-sum block).

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (bool rect : {false, true}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.rect_ranges = rect;
    points.push_back({rect ? "rect" : "circle", config});
  }
  return fra::bench::RunFigure("Range shape: circle vs rectangle (Def. 2)",
                               "shape", points);
}
