// Ablation: the Sec. 4.2.2 boundary-cell communication optimisation.
// NonIID-est can transmit per-cell contributions for every cell
// intersecting R (the plain Alg. 3, O(|g_0|) transfer) or only for the
// cells crossing R's boundary (O(sqrt(|g_0|))), answering interior cells
// exactly from g_0. Both produce identical estimates (without LSR); this
// bench measures the wire-byte and latency savings across query radii.

#include <cstdio>

#include "data/generator.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "util/timer.h"

namespace {

struct ModeResult {
  double bytes_per_query;
  double micros_per_query;
};

ModeResult RunMode(bool boundary_only, const fra::FederationDataset& dataset,
                   const std::vector<fra::FraQuery>& queries) {
  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;
  options.provider.non_iid_boundary_only = boundary_only;
  auto federation =
      fra::Federation::Create(dataset.company_partitions, options)
          .ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  const fra::CommStats::Snapshot before = provider.comm();
  fra::Timer timer;
  auto results = provider.ExecuteBatch(queries, fra::FraAlgorithm::kNonIidEst);
  const double elapsed = timer.ElapsedMicros();
  FRA_CHECK_OK(results.status());
  const fra::CommStats::Snapshot comm = provider.comm() - before;
  return {static_cast<double>(comm.TotalBytes()) /
              static_cast<double>(queries.size()),
          elapsed / static_cast<double>(queries.size())};
}

}  // namespace

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 400000;
  data_options.seed = 3;
  data_options.non_iid = true;
  const auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();

  std::printf("\n=== Ablation: NonIID-est boundary-only vs full cell vector "
              "===\n");
  std::printf("%-8s %18s %18s %12s\n", "r (km)", "boundary (B/q)",
              "full (B/q)", "comm saved");

  for (double radius : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    fra::WorkloadOptions workload;
    workload.num_queries = 100;
    workload.radius_km = radius;
    workload.seed = 4;
    const auto queries =
        fra::GenerateQueries(dataset.company_partitions, workload)
            .ValueOrDie();
    const ModeResult boundary = RunMode(true, dataset, queries);
    const ModeResult full = RunMode(false, dataset, queries);
    std::printf("%-8.1f %18.1f %18.1f %11.2fx\n", radius,
                boundary.bytes_per_query, full.bytes_per_query,
                full.bytes_per_query / boundary.bytes_per_query);
  }
  std::printf("\nInterior cells grow with r^2 but boundary cells only with "
              "r, so the\nsavings factor grows with the radius — the "
              "O(sqrt(|g_0|)) claim of Sec. 4.2.2.\n");
  return 0;
}
