// Paper Sec. 7 extensions: AVG and STDEV, derived from COUNT / SUM /
// SUM_SQR. Complexity and communication match COUNT/SUM (our wire format
// ships all three components in one 40-byte summary, so the "larger
// constant factor" the paper mentions is already folded in); accuracy
// stays bounded.

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (fra::AggregateKind kind :
       {fra::AggregateKind::kAvg, fra::AggregateKind::kStdev}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.kind = kind;
    points.push_back({fra::AggregateKindToString(kind), config});
  }
  return fra::bench::RunFigure("Extensions: AVG / STDEV (Sec. 7)", "F",
                               points);
}
