// What does the observability layer cost on the query path? Three
// scenarios over the same in-process federation and IID-est workload:
//
//   baseline   health tracking on (the default), auditor off, no scraper
//   audit 1%   the default production auditor rate — 1% of approximate
//              answers re-executed EXACT on the batch pool
//   scraped    auditor off, an admin server being scraped continuously
//              (GET /metrics in a tight loop) during the query storm
//
// The foreground number is what a caller of ExecuteBatch sees; "drained"
// additionally waits for the background audit replays, bounding the
// total extra work the auditor schedules.
//
//   ./build/bench/bench_observability_overhead
//   FRA_BENCH_SCALE=smoke ./build/bench/bench_observability_overhead

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "obs/admin_server.h"
#include "tests/test_util.h"
#include "util/timer.h"

namespace {

struct ScenarioResult {
  double foreground_ms = 0.0;
  double drained_ms = 0.0;
  // Per-query latency from fra_query_latency_microseconds{IID-est},
  // read back out of the registry like the figure benches do.
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t scrapes = 0;
};

// One timed ExecuteBatch round over a freshly built federation (same
// seed everywhere, so the three scenarios answer identical queries).
ScenarioResult RunScenario(double audit_sample_rate, bool scrape,
                           size_t num_objects, size_t num_queries,
                           int repetitions) {
  // Scenarios share the process-wide registry; start each from zero so
  // the read-back below only sees this scenario's queries.
  fra::MetricsRegistry::Default().Reset();

  fra::MobilityDataOptions data_options;
  data_options.num_objects = num_objects;
  data_options.seed = 42;
  fra::FederationDataset dataset =
      fra::GenerateMobilityData(data_options).ValueOrDie();

  fra::WorkloadOptions workload;
  workload.num_queries = num_queries;
  workload.radius_km = 4.0;
  const std::vector<fra::FraQuery> queries =
      fra::GenerateQueries(dataset.company_partitions, workload).ValueOrDie();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;
  options.provider.audit_sample_rate = audit_sample_rate;
  auto federation =
      fra::Federation::Create(std::move(dataset.company_partitions), options)
          .ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  std::unique_ptr<fra::AdminServer> admin;
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (scrape) {
    admin = fra::AdminServer::Start().ValueOrDie();
    scraper = std::thread([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (fra::testing::HttpGet(admin->port(), "/metrics").ok()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ScenarioResult result;
  for (int rep = 0; rep < repetitions; ++rep) {
    fra::Timer timer;
    FRA_CHECK_OK(
        provider.ExecuteBatch(queries, fra::FraAlgorithm::kIidEst).status());
    result.foreground_ms += timer.ElapsedMillis();
    provider.WaitForAudits();
    result.drained_ms += timer.ElapsedMillis();
  }
  result.foreground_ms /= repetitions;
  result.drained_ms /= repetitions;

  for (const auto& [labels, histogram] :
       fra::MetricsRegistry::Default().HistogramsNamed(
           "fra_query_latency_microseconds")) {
    for (const auto& [key, value] : labels) {
      if (key == "algorithm" && value == "IID-est") {
        result.p50_us = histogram->Quantile(0.50);
        result.p99_us = histogram->Quantile(0.99);
      }
    }
  }

  if (scrape) {
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    result.scrapes = scrapes.load(std::memory_order_relaxed);
    admin->Stop();
  }
  return result;
}

}  // namespace

int main() {
  const char* scale = std::getenv("FRA_BENCH_SCALE");
  const bool smoke = scale != nullptr && std::strcmp(scale, "smoke") == 0;
  const size_t num_objects = smoke ? 20000 : 200000;
  const size_t num_queries = smoke ? 200 : 2000;
  const int repetitions = smoke ? 2 : 5;

  std::printf(
      "IID-est batch of %zu queries, %zu objects, mean of %d rounds\n\n",
      num_queries, num_objects, repetitions);

  struct Row {
    const char* name;
    double audit_rate;
    bool scrape;
  };
  const Row rows[] = {
      {"baseline (auditor off)", 0.0, false},
      {"audit 1%", 0.01, false},
      {"scraped (/metrics loop)", 0.0, true},
  };

  double baseline_ms = 0.0;
  std::printf("%-26s %14s %14s %10s %10s %10s\n", "scenario", "foreground ms",
              "drained ms", "p50 us", "p99 us", "overhead");
  for (const Row& row : rows) {
    const ScenarioResult result = RunScenario(
        row.audit_rate, row.scrape, num_objects, num_queries, repetitions);
    if (baseline_ms == 0.0) baseline_ms = result.foreground_ms;
    const double overhead =
        (result.foreground_ms - baseline_ms) / baseline_ms * 100.0;
    std::printf("%-26s %14.2f %14.2f %10.2f %10.2f %+9.1f%%\n", row.name,
                result.foreground_ms, result.drained_ms, result.p50_us,
                result.p99_us, overhead);
    if (row.scrape) {
      std::printf("  (scraper completed %llu /metrics requests during the "
                  "storm)\n",
                  static_cast<unsigned long long>(result.scrapes));
    }
  }
  return 0;
}
