// What does the observability layer cost on the query path? Three
// scenarios over the same in-process federation and IID-est workload:
//
//   baseline   health tracking on (the default), auditor off, no scraper
//   audit 1%   the default production auditor rate — 1% of approximate
//              answers re-executed EXACT on the batch pool
//   scraped    auditor off, an admin server being scraped continuously
//              (GET /metrics in a tight loop) during the query storm
//
// The foreground number is what a caller of ExecuteBatch sees; "drained"
// additionally waits for the background audit replays, bounding the
// total extra work the auditor schedules.
//
// A second comparison runs the same workload over the reactor TCP
// transport — the paper's deployment shape — with the diagnostics stack
// fully off (tracing disabled, flight recorder removed) vs fully on
// (tracing + cross-silo span shipping + flight recorder capturing every
// query). The qps delta is the whole price of federation-wide
// observability on the wire path; the acceptance bar is <= 10%.
//
// Results land in BENCH_observability_overhead.json (see bench_json.h).
//
//   ./build/bench/bench_observability_overhead
//   FRA_BENCH_SCALE=smoke ./build/bench/bench_observability_overhead

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "data/generator.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "net/tcp_network.h"
#include "obs/admin_server.h"
#include "obs/profiler.h"
#include "tests/test_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

struct ScenarioResult {
  double foreground_ms = 0.0;
  double drained_ms = 0.0;
  // Per-query latency from fra_query_latency_microseconds{IID-est},
  // read back out of the registry like the figure benches do.
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t scrapes = 0;
};

// One timed ExecuteBatch round over a freshly built federation (same
// seed everywhere, so the three scenarios answer identical queries).
ScenarioResult RunScenario(double audit_sample_rate, bool scrape,
                           size_t num_objects, size_t num_queries,
                           int repetitions) {
  // Scenarios share the process-wide registry; start each from zero so
  // the read-back below only sees this scenario's queries.
  fra::MetricsRegistry::Default().Reset();

  fra::MobilityDataOptions data_options;
  data_options.num_objects = num_objects;
  data_options.seed = 42;
  fra::FederationDataset dataset =
      fra::GenerateMobilityData(data_options).ValueOrDie();

  fra::WorkloadOptions workload;
  workload.num_queries = num_queries;
  workload.radius_km = 4.0;
  const std::vector<fra::FraQuery> queries =
      fra::GenerateQueries(dataset.company_partitions, workload).ValueOrDie();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;
  options.provider.audit_sample_rate = audit_sample_rate;
  auto federation =
      fra::Federation::Create(std::move(dataset.company_partitions), options)
          .ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  std::unique_ptr<fra::AdminServer> admin;
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (scrape) {
    admin = fra::AdminServer::Start().ValueOrDie();
    scraper = std::thread([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (fra::testing::HttpGet(admin->port(), "/metrics").ok()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ScenarioResult result;
  for (int rep = 0; rep < repetitions; ++rep) {
    fra::Timer timer;
    FRA_CHECK_OK(
        provider.ExecuteBatch(queries, fra::FraAlgorithm::kIidEst).status());
    result.foreground_ms += timer.ElapsedMillis();
    provider.WaitForAudits();
    result.drained_ms += timer.ElapsedMillis();
  }
  result.foreground_ms /= repetitions;
  result.drained_ms /= repetitions;

  for (const auto& [labels, histogram] :
       fra::MetricsRegistry::Default().HistogramsNamed(
           "fra_query_latency_microseconds")) {
    for (const auto& [key, value] : labels) {
      if (key == "algorithm" && value == "IID-est") {
        result.p50_us = histogram->Quantile(0.50);
        result.p99_us = histogram->Quantile(0.99);
      }
    }
  }

  if (scrape) {
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    result.scrapes = scrapes.load(std::memory_order_relaxed);
    admin->Stop();
  }
  return result;
}

struct TcpScenarioResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  size_t flight_records = 0;
  size_t traces = 0;
  uint64_t profiler_samples = 0;
};

enum class TcpStack {
  kOff,       // tracing disabled, flight recorder removed
  kFull,      // tracing + span shipping on at the default head-sampling
              // rate, recorder armed at its default threshold — the
              // shipped production config
  kCaptureAll // every query traced (sampling 1) AND recorder threshold
              // 0: each one pays span shipping plus record assembly
};

// The same IID-est storm over real loopback sockets on the reactor
// transport, with the diagnostics stack off, on, or capturing all.
// `profiler_hz` > 0 additionally arms the SIGPROF sampling profiler for
// the timed portion — the sweep below prices continuous profiling.
TcpScenarioResult RunReactorScenario(TcpStack stack, size_t num_objects,
                                     size_t num_queries, int repetitions,
                                     int profiler_hz = 0) {
  const bool diagnostics_on = stack != TcpStack::kOff;
  fra::MetricsRegistry::Default().Reset();
  fra::Tracer::Get().Clear();
  fra::Tracer::Get().SetEnabled(diagnostics_on);

  fra::MobilityDataOptions data_options;
  data_options.num_objects = num_objects;
  data_options.seed = 42;
  fra::FederationDataset dataset =
      fra::GenerateMobilityData(data_options).ValueOrDie();

  fra::WorkloadOptions workload;
  workload.num_queries = num_queries;
  workload.radius_km = 4.0;
  const std::vector<fra::FraQuery> queries =
      fra::GenerateQueries(dataset.company_partitions, workload).ValueOrDie();

  fra::Silo::Options silo_options;
  silo_options.grid_spec.domain = dataset.domain;
  silo_options.grid_spec.cell_length = 1.5;

  std::vector<std::unique_ptr<fra::Silo>> silos;
  std::vector<std::unique_ptr<fra::TcpSiloServer>> servers;
  fra::TcpNetwork network;  // reactor substrate is the default
  for (size_t s = 0; s < dataset.company_partitions.size(); ++s) {
    silos.push_back(fra::Silo::Create(static_cast<int>(s),
                                      std::move(dataset.company_partitions[s]),
                                      silo_options)
                        .ValueOrDie());
    servers.push_back(fra::TcpSiloServer::Start(silos.back().get())
                          .ValueOrDie());
    FRA_CHECK_OK(
        network.AddSilo(static_cast<int>(s), servers.back()->port()));
  }

  fra::ServiceProvider::Options provider_options;
  provider_options.audit_sample_rate = 0.0;
  provider_options.flight_recorder.enabled = diagnostics_on;
  if (stack == TcpStack::kCaptureAll) {
    // Worst case: every query is traced (no head sampling) and every
    // query qualifies for the recorder, so each one pays span shipping
    // plus the full record assembly (silo statuses + stitched span
    // snapshot), not just the atomic threshold check.
    provider_options.trace_sample_every_n = 1;
    provider_options.flight_recorder.slow_threshold_micros = 0.0;
  }
  auto provider =
      fra::ServiceProvider::Create(&network, provider_options).ValueOrDie();

  // Warm connections and code paths before timing.
  FRA_CHECK_OK(
      provider->ExecuteBatch(queries, fra::FraAlgorithm::kIidEst).status());

  if (profiler_hz > 0) {
    fra::ContinuousProfiler::Options profiler_options;
    profiler_options.hz = profiler_hz;
    FRA_CHECK_OK(fra::ContinuousProfiler::Get().Start(profiler_options));
  }

  // Per-rep timing, best rep kept: on a loaded (or single-core) machine
  // the scheduler can steal a whole rep, and an 8 ms measurement window
  // would report the noise, not the stack. The best of many reps is the
  // honest throughput estimate both scenarios are compared at.
  double best_seconds = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    fra::Timer timer;
    FRA_CHECK_OK(
        provider->ExecuteBatch(queries, fra::FraAlgorithm::kIidEst).status());
    const double seconds = timer.ElapsedSeconds();
    if (best_seconds == 0.0 || seconds < best_seconds) {
      best_seconds = seconds;
    }
  }

  uint64_t profiler_samples = 0;
  if (profiler_hz > 0) {
    fra::ContinuousProfiler::Get().Stop();
    profiler_samples = fra::ContinuousProfiler::Get().samples();
    fra::ContinuousProfiler::Get().Clear();
  }

  TcpScenarioResult result;
  result.profiler_samples = profiler_samples;
  result.qps = static_cast<double>(num_queries) / best_seconds;
  for (const auto& [labels, histogram] :
       fra::MetricsRegistry::Default().HistogramsNamed(
           "fra_query_latency_microseconds")) {
    for (const auto& [key, value] : labels) {
      if (key == "algorithm" && value == "IID-est") {
        result.p50_us = histogram->Quantile(0.50);
        result.p99_us = histogram->Quantile(0.99);
      }
    }
  }
  if (fra::FlightRecorder* recorder = provider->flight_recorder()) {
    result.flight_records = recorder->size();
  }
  result.traces = fra::Tracer::Get().TraceIds().size();
  fra::Tracer::Get().SetEnabled(false);
  fra::Tracer::Get().Clear();
  return result;
}

}  // namespace

int main() {
  const char* scale = std::getenv("FRA_BENCH_SCALE");
  const bool smoke = scale != nullptr && std::strcmp(scale, "smoke") == 0;
  const size_t num_objects = smoke ? 20000 : 200000;
  const size_t num_queries = smoke ? 200 : 2000;
  const int repetitions = smoke ? 2 : 5;

  std::printf(
      "IID-est batch of %zu queries, %zu objects, mean of %d rounds\n\n",
      num_queries, num_objects, repetitions);

  struct Row {
    const char* name;
    double audit_rate;
    bool scrape;
  };
  const Row rows[] = {
      {"baseline (auditor off)", 0.0, false},
      {"audit 1%", 0.01, false},
      {"scraped (/metrics loop)", 0.0, true},
  };

  fra::bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("observability_overhead");
  json.Key("git_sha").String(fra::bench::GitSha());
  json.Key("scale").String(smoke ? "smoke" : "default");
  json.Key("num_objects").Int(static_cast<long long>(num_objects));
  json.Key("num_queries").Int(static_cast<long long>(num_queries));
  json.Key("repetitions").Int(repetitions);

  double baseline_ms = 0.0;
  json.Key("in_process").BeginArray();
  std::printf("%-26s %14s %14s %10s %10s %10s\n", "scenario", "foreground ms",
              "drained ms", "p50 us", "p99 us", "overhead");
  for (const Row& row : rows) {
    const ScenarioResult result = RunScenario(
        row.audit_rate, row.scrape, num_objects, num_queries, repetitions);
    if (baseline_ms == 0.0) baseline_ms = result.foreground_ms;
    const double overhead =
        (result.foreground_ms - baseline_ms) / baseline_ms * 100.0;
    std::printf("%-26s %14.2f %14.2f %10.2f %10.2f %+9.1f%%\n", row.name,
                result.foreground_ms, result.drained_ms, result.p50_us,
                result.p99_us, overhead);
    if (row.scrape) {
      std::printf("  (scraper completed %llu /metrics requests during the "
                  "storm)\n",
                  static_cast<unsigned long long>(result.scrapes));
    }
    json.BeginObject();
    json.Key("scenario").String(row.name);
    json.Key("foreground_ms").Number(result.foreground_ms);
    json.Key("drained_ms").Number(result.drained_ms);
    json.Key("p50_us").Number(result.p50_us);
    json.Key("p99_us").Number(result.p99_us);
    json.Key("overhead_pct").Number(overhead);
    if (row.scrape) {
      json.Key("scrapes").Int(static_cast<long long>(result.scrapes));
    }
    json.EndObject();
  }
  json.EndArray();

  // --- Reactor TCP path: diagnostics off vs the full stack ----------------
  std::printf("\nreactor TCP path (same workload over loopback sockets)\n");
  std::printf("%-26s %12s %10s %10s %10s\n", "scenario", "qps", "p50 us",
              "p99 us", "overhead");
  // Enough reps that the best one is a stable capacity estimate even on
  // a busy CI machine (each rep is only a few milliseconds at smoke
  // scale).
  const int tcp_repetitions = repetitions * (smoke ? 10 : 4);
  // Interleaved passes, best kept per scenario: machine-state drift over
  // the minutes a default-scale run takes (page cache, turbo, background
  // load) would otherwise swamp the few-percent effect being measured —
  // scenario A measured early against scenario B measured late is not a
  // fair comparison on a shared core.
  const int tcp_passes = smoke ? 2 : 3;
  TcpScenarioResult off, on, worst;
  for (int pass = 0; pass < tcp_passes; ++pass) {
    const TcpScenarioResult off_pass = RunReactorScenario(
        TcpStack::kOff, num_objects, num_queries, tcp_repetitions);
    if (off_pass.qps > off.qps) off = off_pass;
    const TcpScenarioResult on_pass = RunReactorScenario(
        TcpStack::kFull, num_objects, num_queries, tcp_repetitions);
    if (on_pass.qps > on.qps) on = on_pass;
    const TcpScenarioResult worst_pass = RunReactorScenario(
        TcpStack::kCaptureAll, num_objects, num_queries, tcp_repetitions);
    if (worst_pass.qps > worst.qps) worst = worst_pass;
  }
  const double tcp_overhead = (off.qps - on.qps) / off.qps * 100.0;
  const double worst_overhead = (off.qps - worst.qps) / off.qps * 100.0;
  std::printf("%-26s %12.0f %10.2f %10.2f %10s\n", "diagnostics off", off.qps,
              off.p50_us, off.p99_us, "-");
  std::printf("%-26s %12.0f %10.2f %10.2f %+9.1f%%\n", "full stack", on.qps,
              on.p50_us, on.p99_us, tcp_overhead);
  std::printf("%-26s %12.0f %10.2f %10.2f %+9.1f%%\n",
              "trace + capture all", worst.qps, worst.p50_us, worst.p99_us,
              worst_overhead);
  std::printf("  (full stack: shipped defaults — tracing head-sampled 1/%zu "
              "with span shipping, flight recorder at its default\n   "
              "threshold; %zu traces retained. 'all' traces every query and "
              "drops the threshold to 0, so each one pays span\n   shipping "
              "plus record assembly — %zu records)\n",
              fra::ServiceProvider::Options().trace_sample_every_n, on.traces,
              worst.flight_records);

  json.Key("reactor_tcp").BeginObject();
  json.Key("algorithm").String("IID-est");
  json.Key("diagnostics_off").BeginObject();
  json.Key("qps").Number(off.qps);
  json.Key("p50_us").Number(off.p50_us);
  json.Key("p99_us").Number(off.p99_us);
  json.EndObject();
  json.Key("full_stack").BeginObject();
  json.Key("trace_sample_every_n")
      .Int(static_cast<long long>(
          fra::ServiceProvider::Options().trace_sample_every_n));
  json.Key("qps").Number(on.qps);
  json.Key("p50_us").Number(on.p50_us);
  json.Key("p99_us").Number(on.p99_us);
  json.Key("flight_records").Int(static_cast<long long>(on.flight_records));
  json.Key("traces").Int(static_cast<long long>(on.traces));
  json.EndObject();
  json.Key("trace_and_capture_all").BeginObject();
  json.Key("trace_sample_every_n").Int(1);
  json.Key("qps").Number(worst.qps);
  json.Key("p50_us").Number(worst.p50_us);
  json.Key("p99_us").Number(worst.p99_us);
  json.Key("flight_records").Int(
      static_cast<long long>(worst.flight_records));
  json.Key("qps_overhead_pct").Number(worst_overhead);
  json.EndObject();
  json.Key("qps_overhead_pct").Number(tcp_overhead);
  json.EndObject();

  // --- Continuous profiler: off vs 19 Hz vs 97 Hz -------------------------
  // Same reactor workload at the shipped diagnostics defaults, with the
  // SIGPROF sampler off, at its default rate, and at the aggressive
  // debug rate. The acceptance bar (profiler-smoke CI stage and
  // docs/observability.md) is < 5% at the default 19 Hz.
  std::printf("\ncontinuous profiler (full diagnostics stack, reactor TCP)\n");
  std::printf("%-26s %12s %10s %10s %10s %10s\n", "scenario", "qps", "p50 us",
              "p99 us", "samples", "overhead");
  const int profiler_rates[] = {0, 19, 97};
  TcpScenarioResult profiled[3];
  for (int pass = 0; pass < tcp_passes; ++pass) {
    for (int i = 0; i < 3; ++i) {
      const TcpScenarioResult run =
          RunReactorScenario(TcpStack::kFull, num_objects, num_queries,
                             tcp_repetitions, profiler_rates[i]);
      if (run.qps > profiled[i].qps) profiled[i] = run;
    }
  }
  json.Key("profiler_sweep").BeginArray();
  for (int i = 0; i < 3; ++i) {
    const double overhead =
        (profiled[0].qps - profiled[i].qps) / profiled[0].qps * 100.0;
    char name[32];
    if (profiler_rates[i] == 0) {
      std::snprintf(name, sizeof(name), "profiler off");
    } else {
      std::snprintf(name, sizeof(name), "profiler %d Hz",
                    profiler_rates[i]);
    }
    std::printf("%-26s %12.0f %10.2f %10.2f %10llu ", name, profiled[i].qps,
                profiled[i].p50_us, profiled[i].p99_us,
                static_cast<unsigned long long>(profiled[i].profiler_samples));
    if (i == 0) {
      std::printf("%10s\n", "-");
    } else {
      std::printf("%+9.1f%%\n", overhead);
    }
    json.BeginObject();
    json.Key("hz").Int(profiler_rates[i]);
    json.Key("qps").Number(profiled[i].qps);
    json.Key("p50_us").Number(profiled[i].p50_us);
    json.Key("p99_us").Number(profiled[i].p99_us);
    json.Key("samples").Int(
        static_cast<long long>(profiled[i].profiler_samples));
    json.Key("qps_overhead_pct").Number(i == 0 ? 0.0 : overhead);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  fra::bench::WriteJsonFile("BENCH_observability_overhead.json", json.str());
  return 0;
}
