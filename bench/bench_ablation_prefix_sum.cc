// Ablation: the cumulative-array (prefix-sum) remark of Sec. 4.2.1.
// Compares the O(rows) / O(1) fast path of IntersectingCellsAggregate
// against the naive full-grid scan on grids of increasing resolution.

#include <cstdio>

#include "data/generator.h"
#include "index/grid_index.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 400000;
  data_options.seed = 2;
  auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();
  fra::ObjectSet all;
  for (const auto& p : dataset.company_partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }

  std::printf("\n=== Ablation: prefix-sum grid aggregation vs naive scan "
              "===\n");
  std::printf("%-8s %10s %14s %14s %10s\n", "L (km)", "cells",
              "fast (us/q)", "naive (us/q)", "speedup");

  constexpr int kQueries = 2000;
  for (double cell_length : {2.5, 1.5, 1.0, 0.5}) {
    fra::GridIndex::GridSpec spec;
    spec.domain = dataset.domain;
    spec.cell_length = cell_length;
    const fra::GridIndex grid =
        fra::GridIndex::Build(all, spec).ValueOrDie();

    // Random circular queries over the domain (r = 2 km).
    fra::Rng rng(7);
    std::vector<fra::QueryRange> queries;
    queries.reserve(kQueries);
    for (int q = 0; q < kQueries; ++q) {
      queries.push_back(fra::QueryRange::MakeCircle(
          {rng.NextDouble(spec.domain.min.x, spec.domain.max.x),
           rng.NextDouble(spec.domain.min.y, spec.domain.max.y)},
          2.0));
    }

    volatile uint64_t sink = 0;  // defeat dead-code elimination
    fra::Timer fast_timer;
    for (const auto& range : queries) {
      sink = sink + grid.IntersectingCellsAggregate(range).count;
    }
    const double fast_us = fast_timer.ElapsedMicros() / kQueries;

    // Naive is far slower; sample fewer queries at high resolution.
    const int naive_queries = cell_length < 1.0 ? 200 : kQueries / 2;
    fra::Timer naive_timer;
    for (int q = 0; q < naive_queries; ++q) {
      sink = sink + grid.IntersectingCellsAggregateNaive(queries[q]).count;
    }
    const double naive_us = naive_timer.ElapsedMicros() / naive_queries;

    std::printf("%-8.1f %10zu %14.2f %14.2f %9.1fx\n", cell_length,
                grid.num_cells(), fast_us, naive_us, naive_us / fast_us);
  }
  std::printf("\nThe naive scan grows with the cell count; the cumulative-"
              "array path\nstays flat, matching the Sec. 4.2.1 remark.\n");
  return 0;
}
