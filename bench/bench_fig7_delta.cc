// Paper Fig. 7: impact of the LSR-Forest failure bound delta. The level
// formula depends on delta only through ln(2/delta), so effects are mild
// (the paper reports marginal changes).

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (double delta : {0.01, 0.02, 0.03, 0.04, 0.05}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.delta = delta;
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", delta);
    points.push_back({label, config});
  }
  return fra::bench::RunFigure("Fig. 7: impact of least upper bound delta",
                               "delta", points);
}
