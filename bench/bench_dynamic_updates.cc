// Extension study: streaming ingest. Real bike-share federations ingest
// new records continuously; this bench measures (a) silo ingest + auto-
// compaction throughput, (b) local query latency as the uncompacted delta
// grows (the LSM-style read path), and (c) delta-sync communication vs a
// full Alg. 1 grid re-ship.

#include <cstdio>

#include "data/generator.h"
#include "federation/federation.h"
#include "tests/test_util.h"
#include "util/timer.h"

int main() {
  const fra::Rect domain{{0, 0}, {145, 276}};

  // (a) Ingest throughput with auto-compaction.
  {
    fra::Silo::Options options;
    options.grid_spec.domain = domain;
    options.grid_spec.cell_length = 1.5;
    options.compact_fraction = 0.02;
    auto silo = fra::Silo::Create(
                    0, fra::testing::RandomObjects(500000, domain, 1),
                    options)
                    .ValueOrDie();
    const fra::ObjectSet stream =
        fra::testing::RandomObjects(100000, domain, 2);
    fra::Timer timer;
    constexpr size_t kBatch = 1000;
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      const fra::ObjectSet batch(
          stream.begin() + begin,
          stream.begin() + std::min(stream.size(), begin + kBatch));
      silo->Ingest(batch);
    }
    const double elapsed = timer.ElapsedSeconds();
    std::printf("\n=== Streaming ingest (500k base, 100k stream, 2%% "
                "auto-compaction) ===\n");
    std::printf("ingest throughput: %.0f objects/s (total %.2f s, final "
                "size %zu)\n",
                100000.0 / elapsed, elapsed, silo->size());
  }

  // (b) Query latency vs pending delta size (no auto-compaction).
  {
    fra::Silo::Options options;
    options.grid_spec.domain = domain;
    options.grid_spec.cell_length = 1.5;
    options.compact_fraction = 0.0;
    auto silo = fra::Silo::Create(
                    0, fra::testing::RandomObjects(500000, domain, 3),
                    options)
                    .ValueOrDie();
    std::printf("\n%-14s %16s\n", "delta size", "query (us)");
    const fra::QueryRange range = fra::QueryRange::MakeCircle({70, 140}, 2);
    fra::Rng rng(4);
    size_t delta = 0;
    for (size_t target : {0UL, 1000UL, 5000UL, 20000UL, 50000UL}) {
      if (target > delta) {
        silo->Ingest(
            fra::testing::RandomObjects(target - delta, domain, 5 + target));
        delta = target;
      }
      constexpr int kQueries = 2000;
      volatile uint64_t sink = 0;
      fra::Timer timer;
      for (int q = 0; q < kQueries; ++q) {
        sink = sink + silo->ExactRangeAggregate(range).count;
      }
      std::printf("%-14zu %16.2f\n", target,
                  timer.ElapsedMicros() / kQueries);
    }
    fra::Timer compact_timer;
    silo->Compact();
    std::printf("compaction of 50k delta over 500k base: %.1f ms\n",
                compact_timer.ElapsedMillis());
  }

  // (c) Delta sync cost vs full grid re-ship.
  {
    std::vector<fra::ObjectSet> partitions(6);
    const fra::ObjectSet all =
        fra::testing::RandomObjects(300000, domain, 6);
    for (size_t i = 0; i < all.size(); ++i) {
      partitions[i % 6].push_back(all[i]);
    }
    fra::FederationOptions options;
    options.silo.grid_spec.domain = domain;
    options.silo.grid_spec.cell_length = 1.5;
    auto federation =
        fra::Federation::Create(std::move(partitions), options).ValueOrDie();
    fra::ServiceProvider& provider = federation->provider();
    const uint64_t full_ship =
        provider.merged_grid().num_cells() *
        fra::AggregateSummary::kWireSize * 6;

    std::printf("\n%-14s %16s %18s\n", "batch size", "sync bytes",
                "vs full re-ship");
    for (size_t batch : {10UL, 100UL, 1000UL, 10000UL}) {
      federation->silo(0).Ingest(
          fra::testing::RandomObjects(batch, domain, 7 + batch));
      const fra::CommStats::Snapshot before = provider.comm();
      FRA_CHECK_OK(provider.SyncGrids());
      const uint64_t bytes = (provider.comm() - before).TotalBytes();
      std::printf("%-14zu %16llu %17.1fx\n", batch,
                  static_cast<unsigned long long>(bytes),
                  static_cast<double>(full_ship) /
                      static_cast<double>(bytes));
    }
    std::printf("(full Alg. 1 re-ship of all 6 grids would be %llu bytes)\n",
                static_cast<unsigned long long>(full_ship));
  }
  return 0;
}
