// Paper Fig. 6: impact of the LSR-Forest approximation ratio epsilon.
// Only the +LSR variants are sensitive: larger epsilon -> higher LSR
// levels -> faster local queries, slightly higher MRE.

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (double epsilon : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.epsilon = epsilon;
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", epsilon);
    points.push_back({label, config});
  }
  return fra::bench::RunFigure("Fig. 6: impact of approximate ratio eps",
                               "eps", points);
}
