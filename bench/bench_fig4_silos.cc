// Paper Fig. 4: impact of the number of data silos m (COUNT queries).
// Each company's records are equally split into m/3 silos (Sec. 8.1).

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (size_t m : {3UL, 6UL, 9UL, 12UL, 15UL}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.num_silos = m;
    points.push_back({std::to_string(m), config});
  }
  return fra::bench::RunFigure("Fig. 4: impact of number of silos m (COUNT)",
                               "m", points);
}
