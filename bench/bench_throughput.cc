// Throughput claim (paper Sec. 1 & 8 summary): the sampling algorithms
// must sustain >250 queries/second at the default configuration while
// EXACT saturates far earlier (~50 q/s on the paper's testbed). Absolute
// numbers on a local in-process federation are higher across the board;
// the claim to check is the ORDER and the >=5x gap (m = 6 silos).
//
// Tail latencies come from the metrics registry's
// fra_query_latency_microseconds histograms (ExecuteBatch records every
// query), not a hand-rolled latency vector — the bench reports exactly
// what an operator scraping the registry would see.
//
// The second section measures request coalescing over real TCP: 64
// concurrent IID-est+LSR queries against 4 silo servers, with the
// per-silo micro-batching off and on. The +LSR path keeps silo-local
// work cheap (Alg. 6), so the socket round trip dominates the query
// cost — exactly what coalescing amortises; the batched run should beat
// the unbatched one clearly (the CI acceptance bar is 2x at full scale).
//
// Results also land in BENCH_throughput.json (see bench_json.h) for
// regression tooling: qps, p50/p99, batch-size distribution, git sha.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/fig_common.h"
#include "eval/report.h"
#include "federation/federation.h"
#include "federation/service_provider.h"
#include "federation/silo.h"
#include "net/tcp_network.h"
#include "obs/profiler.h"
#include "util/buffer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

struct CoalescingRun {
  double qps = 0.0;
  double total_seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double QuantileOf(std::vector<double> sorted_ascending, double q) {
  if (sorted_ascending.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_ascending.size() - 1));
  return sorted_ascending[index];
}

// --- Answer-cache sweep (docs/caching.md) ----------------------------------
//
// A Zipf-popular pool of overlapping ranges replayed against an in-process
// federation at three cache configurations: off, exact layer only, and
// exact + tile layer (kFraction boundaries, so warm queries need zero silo
// exchanges). The metric that matters is silo RPCs *per query* — the
// provider-side work the cache absorbs — plus an auditor-verified check
// that tile-assembled answers still respect the (eps, delta) regime.

struct CacheRun {
  double qps = 0.0;
  double rpcs_per_query = 0.0;
  uint64_t messages = 0;
  uint64_t exact_hits = 0;
  uint64_t tile_hits = 0;
  uint64_t tile_misses = 0;
  // Verification federation (audits on) — accuracy of the served answers.
  uint64_t audited = 0;
  uint64_t violations = 0;
  double mean_relative_error = 0.0;
  double max_relative_error = 0.0;
};

std::unique_ptr<fra::Federation> MakeCacheFederation(
    size_t objects, size_t silos, const fra::Rect& domain,
    const fra::ServiceProvider::Options::CacheOptions& cache,
    double audit_rate) {
  // A mixture of uniform background and per-silo hotspots: heterogeneous
  // enough that NonIID-est is the natural estimator choice.
  std::vector<fra::ObjectSet> partitions(silos);
  fra::Rng rng(777);
  for (size_t i = 0; i < objects; ++i) {
    const size_t s = i % silos;
    fra::Point p;
    if (i % 3 == 0) {
      const double cx = 20.0 + 15.0 * static_cast<double>(s);
      p = {rng.NextGaussian(cx, 6.0), rng.NextGaussian(cx, 6.0)};
      p.x = std::clamp(p.x, domain.min.x, domain.max.x);
      p.y = std::clamp(p.y, domain.min.y, domain.max.y);
    } else {
      p = {rng.NextDouble(domain.min.x, domain.max.x),
           rng.NextDouble(domain.min.y, domain.max.y)};
    }
    partitions[s].push_back({p, static_cast<double>(rng.NextInt64(0, 9))});
  }
  fra::FederationOptions options;
  options.silo.grid_spec.domain = domain;
  options.silo.grid_spec.cell_length = 2.0;
  options.provider.cache = cache;
  options.provider.audit_sample_rate = audit_rate;
  return fra::Federation::Create(std::move(partitions), options).ValueOrDie();
}

// Runs `queries` twice: a measurement federation with audits off (clean
// comm counters => RPCs/query and qps), and a verification federation
// with audits on (the auditor replays a sample EXACT — including
// cache-served answers — and scores relative error).
CacheRun RunCacheSweep(
    size_t objects, size_t silos, const fra::Rect& domain,
    const fra::ServiceProvider::Options::CacheOptions& cache,
    const std::vector<fra::FraQuery>& queries) {
  CacheRun run;
  {
    auto federation =
        MakeCacheFederation(objects, silos, domain, cache, /*audit=*/0.0);
    fra::ServiceProvider& provider = federation->provider();
    const fra::CommStats::Snapshot before = provider.comm();
    fra::Timer timer;
    FRA_CHECK_OK(provider.ExecuteBatch(queries, fra::FraAlgorithm::kNonIidEst)
                     .status());
    run.qps = static_cast<double>(queries.size()) / timer.ElapsedSeconds();
    run.messages = (provider.comm() - before).messages;
    run.rpcs_per_query = static_cast<double>(run.messages) /
                         static_cast<double>(queries.size());
    if (const fra::ProviderCache* pc = provider.cache()) {
      run.exact_hits = provider.cache()->exact().counters().hits;
      run.tile_hits = provider.cache()->tiles().counters().hits;
      run.tile_misses = provider.cache()->tiles().counters().misses;
      (void)pc;
    }
  }
  {
    auto federation =
        MakeCacheFederation(objects, silos, domain, cache, /*audit=*/0.25);
    fra::ServiceProvider& provider = federation->provider();
    FRA_CHECK_OK(provider.ExecuteBatch(queries, fra::FraAlgorithm::kNonIidEst)
                     .status());
    provider.WaitForAudits();
    if (const fra::AccuracyAuditor* auditor = provider.auditor()) {
      const fra::AccuracyAuditor::Snapshot audit = auditor->snapshot();
      run.audited = audit.audited;
      run.violations = audit.violations;
      run.mean_relative_error = audit.mean_relative_error;
      run.max_relative_error = audit.max_relative_error;
    }
  }
  return run;
}

// One ExecuteBatch sweep of `queries` over the TCP federation, with
// per-silo coalescing configured by `coalescing`.
fra::Result<CoalescingRun> RunTcpSweep(
    fra::TcpNetwork* network, const std::vector<fra::FraQuery>& queries,
    const fra::ServiceProvider::Options::CoalescingOptions& coalescing) {
  fra::ServiceProvider::Options options;
  options.batch_threads = 64;
  options.audit_sample_rate = 0.0;  // no background EXACT replays
  options.coalescing = coalescing;
  FRA_ASSIGN_OR_RETURN(std::unique_ptr<fra::ServiceProvider> provider,
                       fra::ServiceProvider::Create(network, options));
  // Warm the connection pools so neither mode pays first-dial costs.
  FRA_RETURN_NOT_OK(
      provider->Execute(queries[0], fra::FraAlgorithm::kIidEstLsr).status());

  std::vector<double> latencies;
  fra::Timer timer;
  FRA_RETURN_NOT_OK(provider
                        ->ExecuteBatch(queries, fra::FraAlgorithm::kIidEstLsr,
                                       &latencies)
                        .status());
  CoalescingRun run;
  run.total_seconds = timer.ElapsedSeconds();
  run.qps = static_cast<double>(queries.size()) / run.total_seconds;
  std::sort(latencies.begin(), latencies.end());
  run.p50_us = QuantileOf(latencies, 0.5) * 1e6;
  run.p99_us = QuantileOf(latencies, 0.99) * 1e6;
  return run;
}

}  // namespace

int main() {
  // FRA_PROFILE_HZ=<hz> arms the continuous profiler over the whole run
  // (the `profiler-smoke` CI stage uses this to verify sampling costs
  // nothing measurable and produces usable stacks under real load).
  int profile_hz = 0;
  if (const char* hz_env = std::getenv("FRA_PROFILE_HZ")) {
    profile_hz = std::atoi(hz_env);
  }
  if (profile_hz > 0) {
    fra::ContinuousProfiler::Options profiler_options;
    profiler_options.hz = profile_hz;
    FRA_CHECK_OK(fra::ContinuousProfiler::Get().Start(profiler_options));
  }

  fra::ExperimentConfig config =
      fra::ApplyEnvScale(fra::ExperimentConfig::Defaults());
  fra::ExperimentRunner runner(config);
  const fra::Status prepared = runner.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.ToString().c_str());
    return 1;
  }

  fra::MetricsRegistry& registry = fra::MetricsRegistry::Default();
  fra::bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("throughput");
  json.Key("git_sha").String(fra::bench::GitSha());
  const char* scale_env = std::getenv("FRA_BENCH_SCALE");
  json.Key("scale").String(scale_env != nullptr ? scale_env : "default");

  std::printf("\n=== Throughput at defaults (|P|=%zu, m=%zu, nQ=%zu) ===\n",
              config.total_objects, config.num_silos, config.num_queries);
  std::printf("%-16s %12s %12s %9s %12s %12s %14s\n", "algorithm", "qps",
              "time(s)", "MRE(%)", "p50(us)", "p95(us)", "meets >250 q/s?");

  json.Key("in_process").BeginArray();
  double exact_qps = 0.0;
  double best_sampling_qps = 0.0;
  for (fra::FraAlgorithm algorithm : fra::bench::AllAlgorithms()) {
    auto result = runner.RunAlgorithm(algorithm);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    if (algorithm == fra::FraAlgorithm::kExact) {
      exact_qps = result->throughput_qps;
    }
    if (fra::IsSingleSilo(algorithm)) {
      best_sampling_qps = std::max(best_sampling_qps, result->throughput_qps);
    }
    const fra::Histogram& latency = registry.GetHistogram(
        "fra_query_latency_microseconds",
        {{"algorithm", fra::FraAlgorithmToString(algorithm)}});
    std::printf("%-16s %12.1f %12.4f %9.3f %12.1f %12.1f %14s\n",
                fra::FraAlgorithmToString(algorithm), result->throughput_qps,
                result->total_time_seconds, result->mre * 100.0,
                latency.Quantile(0.5), latency.Quantile(0.95),
                result->throughput_qps >= 250.0 ? "yes" : "no");
    json.BeginObject();
    json.Key("algorithm").String(fra::FraAlgorithmToString(algorithm));
    json.Key("qps").Number(result->throughput_qps);
    json.Key("total_seconds").Number(result->total_time_seconds);
    json.Key("mre").Number(result->mre);
    json.Key("p50_us").Number(latency.Quantile(0.5));
    json.Key("p95_us").Number(latency.Quantile(0.95));
    json.EndObject();
  }
  json.EndArray();
  std::printf("\nsampling vs EXACT speedup: %.1fx (paper reports up to "
              "85.1x on 3M records over TCP)\n",
              best_sampling_qps / exact_qps);

  fra::PrintQueryLatencyTable(registry);

  // --- Request coalescing over TCP -----------------------------------------
  const char* scale = std::getenv("FRA_BENCH_SCALE");
  const bool smoke = scale != nullptr && std::strcmp(scale, "smoke") == 0;
  // The dataset stays small at both scales so the socket round trip —
  // the cost coalescing amortises — dominates the per-query silo CPU
  // (which batching cannot reduce in the single-core silo model); full
  // scale raises the query count for stable throughput statistics.
  const size_t coalesce_silos = 4;
  const size_t objects_per_silo = 2000;
  const size_t coalesce_queries = smoke ? 192 : 2048;

  const fra::Rect domain{{0, 0}, {100, 100}};
  fra::Silo::Options silo_options;
  silo_options.grid_spec.domain = domain;
  silo_options.grid_spec.cell_length = 2.0;

  std::vector<std::unique_ptr<fra::Silo>> silos;
  std::vector<std::unique_ptr<fra::TcpSiloServer>> servers;
  fra::TcpNetwork network;
  fra::Rng rng(4242);
  for (size_t s = 0; s < coalesce_silos; ++s) {
    fra::ObjectSet objects;
    objects.reserve(objects_per_silo);
    for (size_t i = 0; i < objects_per_silo; ++i) {
      objects.push_back({{rng.NextDouble(domain.min.x, domain.max.x),
                          rng.NextDouble(domain.min.y, domain.max.y)},
                         static_cast<double>(rng.NextInt64(0, 4))});
    }
    auto silo = fra::Silo::Create(static_cast<int>(s), std::move(objects),
                                  silo_options)
                    .ValueOrDie();
    auto server = fra::TcpSiloServer::Start(silo.get()).ValueOrDie();
    FRA_CHECK_OK(network.AddSilo(static_cast<int>(s), server->port()));
    silos.push_back(std::move(silo));
    servers.push_back(std::move(server));
  }

  std::vector<fra::FraQuery> coalesce_workload;
  coalesce_workload.reserve(coalesce_queries);
  for (size_t i = 0; i < coalesce_queries; ++i) {
    const double x = rng.NextDouble(0.0, 90.0);
    const double y = rng.NextDouble(0.0, 90.0);
    coalesce_workload.push_back({fra::QueryRange::MakeRect(
                                     {x, y}, {x + 10.0, y + 10.0}),
                                 fra::AggregateKind::kCount});
  }

  fra::ServiceProvider::Options::CoalescingOptions off;
  off.enabled = false;
  fra::ServiceProvider::Options::CoalescingOptions on;
  on.enabled = true;
  on.max_batch_size = 32;
  on.max_batch_delay_us = 200;

  const fra::Histogram& batch_size_histogram =
      registry.GetHistogram("fra_batch_size", {},
                            {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  const std::vector<uint64_t> batch_counts_before =
      batch_size_histogram.BucketCounts();

  // Interleaved repetitions, best qps kept per mode: one transient
  // machine stall (shared CI runners) must not masquerade as a
  // coalescing regression.
  const int repetitions = smoke ? 1 : 3;
  CoalescingRun best_off;
  CoalescingRun best_on;
  std::vector<double> off_rep_qps;
  std::vector<double> on_rep_qps;
  for (int rep = 0; rep < repetitions; ++rep) {
    auto off_run = RunTcpSweep(&network, coalesce_workload, off);
    if (!off_run.ok()) {
      std::fprintf(stderr, "coalescing-off sweep failed: %s\n",
                   off_run.status().ToString().c_str());
      return 1;
    }
    auto on_run = RunTcpSweep(&network, coalesce_workload, on);
    if (!on_run.ok()) {
      std::fprintf(stderr, "coalescing-on sweep failed: %s\n",
                   on_run.status().ToString().c_str());
      return 1;
    }
    off_rep_qps.push_back(off_run->qps);
    on_rep_qps.push_back(on_run->qps);
    if (off_run->qps > best_off.qps) best_off = *off_run;
    if (on_run->qps > best_on.qps) best_on = *on_run;
  }
  const CoalescingRun& off_run = best_off;
  const CoalescingRun& on_run = best_on;
  const std::vector<uint64_t> batch_counts_after =
      batch_size_histogram.BucketCounts();

  const double speedup = on_run.qps / off_run.qps;
  std::printf("\n=== Request coalescing over TCP (m=%zu, |P_i|=%zu, "
              "nQ=%zu, 64 workers, IID-est+LSR) ===\n",
              coalesce_silos, objects_per_silo, coalesce_queries);
  std::printf("%-12s %12s %12s %12s\n", "coalescing", "qps", "p50(us)",
              "p99(us)");
  std::printf("%-12s %12.1f %12.1f %12.1f\n", "off", off_run.qps,
              off_run.p50_us, off_run.p99_us);
  std::printf("%-12s %12.1f %12.1f %12.1f  (batch<=%zu, delay %dus)\n", "on",
              on_run.qps, on_run.p50_us, on_run.p99_us,
              on.max_batch_size, on.max_batch_delay_us);
  std::printf("coalescing speedup: %.2fx\n", speedup);

  json.Key("tcp_coalescing").BeginObject();
  json.Key("num_silos").Int(static_cast<long long>(coalesce_silos));
  json.Key("objects_per_silo").Int(static_cast<long long>(objects_per_silo));
  json.Key("num_queries").Int(static_cast<long long>(coalesce_queries));
  json.Key("concurrency").Int(64);
  json.Key("algorithm").String(
      fra::FraAlgorithmToString(fra::FraAlgorithm::kIidEstLsr));
  json.Key("repetitions").Int(repetitions);
  json.Key("off").BeginObject();
  json.Key("qps").Number(off_run.qps);
  json.Key("p50_us").Number(off_run.p50_us);
  json.Key("p99_us").Number(off_run.p99_us);
  json.Key("rep_qps").BeginArray();
  for (double qps : off_rep_qps) json.Number(qps);
  json.EndArray();
  json.EndObject();
  json.Key("on").BeginObject();
  json.Key("qps").Number(on_run.qps);
  json.Key("p50_us").Number(on_run.p50_us);
  json.Key("p99_us").Number(on_run.p99_us);
  json.Key("rep_qps").BeginArray();
  for (double qps : on_rep_qps) json.Number(qps);
  json.EndArray();
  json.Key("max_batch_size").Int(static_cast<long long>(on.max_batch_size));
  json.Key("max_batch_delay_us").Int(on.max_batch_delay_us);
  json.EndObject();
  json.Key("speedup").Number(speedup);
  // Per-bucket (non-cumulative) counts of the coalescing-on run only.
  json.Key("batch_size_distribution").BeginArray();
  const std::vector<double>& bounds = batch_size_histogram.bounds();
  for (size_t i = 0; i < batch_counts_after.size(); ++i) {
    const uint64_t delta = batch_counts_after[i] -
                           (i < batch_counts_before.size()
                                ? batch_counts_before[i]
                                : 0);
    json.BeginObject();
    if (i < bounds.size()) {
      json.Key("le").Number(bounds[i]);
    } else {
      json.Key("le").String("+Inf");
    }
    json.Key("count").Int(static_cast<long long>(delta));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();  // tcp_coalescing

  // --- Buffer pool A/B over the same TCP federation -----------------------
  //
  // Same workload, coalescing on both times; only the data plane's
  // BufferPool flips. The delta isolates what slab recycling and the
  // scatter-gather wire path save once batching has already amortised
  // the syscalls. EXACT answers must not move — recycled buffers change
  // performance, never bytes.
  fra::BufferPool::SetEnabled(false);
  auto pool_off_run = RunTcpSweep(&network, coalesce_workload, on);
  fra::BufferPool::SetEnabled(true);
  auto pool_on_run = RunTcpSweep(&network, coalesce_workload, on);
  if (!pool_off_run.ok() || !pool_on_run.ok()) {
    std::fprintf(stderr, "buffer-pool sweep failed\n");
    return 1;
  }

  bool pool_bit_identical = true;
  {
    fra::ServiceProvider::Options exact_options;
    exact_options.audit_sample_rate = 0.0;
    auto exact_provider =
        fra::ServiceProvider::Create(&network, exact_options).ValueOrDie();
    const size_t probes = std::min<size_t>(coalesce_workload.size(), 16);
    for (size_t i = 0; i < probes; ++i) {
      fra::BufferPool::SetEnabled(false);
      const double off_answer =
          exact_provider
              ->Execute(coalesce_workload[i], fra::FraAlgorithm::kExact)
              .ValueOrDie();
      fra::BufferPool::SetEnabled(true);
      const double on_answer =
          exact_provider
              ->Execute(coalesce_workload[i], fra::FraAlgorithm::kExact)
              .ValueOrDie();
      if (off_answer != on_answer) pool_bit_identical = false;
    }
  }

  std::printf("\n=== Buffer pool A/B (coalescing on) ===\n");
  std::printf("%-12s %12s %12s %12s\n", "pool", "qps", "p50(us)", "p99(us)");
  std::printf("%-12s %12.1f %12.1f %12.1f\n", "off", pool_off_run->qps,
              pool_off_run->p50_us, pool_off_run->p99_us);
  std::printf("%-12s %12.1f %12.1f %12.1f\n", "on", pool_on_run->qps,
              pool_on_run->p50_us, pool_on_run->p99_us);
  std::printf("pool p50 delta: %.1fus -> %.1fus, exact bit-identical: %s\n",
              pool_off_run->p50_us, pool_on_run->p50_us,
              pool_bit_identical ? "yes" : "no");

  json.Key("buffer_pool").BeginObject();
  json.Key("off").BeginObject();
  json.Key("qps").Number(pool_off_run->qps);
  json.Key("p50_us").Number(pool_off_run->p50_us);
  json.Key("p99_us").Number(pool_off_run->p99_us);
  json.EndObject();
  json.Key("on").BeginObject();
  json.Key("qps").Number(pool_on_run->qps);
  json.Key("p50_us").Number(pool_on_run->p50_us);
  json.Key("p99_us").Number(pool_on_run->p99_us);
  json.EndObject();
  json.Key("p50_speedup")
      .Number(pool_on_run->p50_us > 0
                  ? pool_off_run->p50_us / pool_on_run->p50_us
                  : 0.0);
  json.Key("exact_bit_identical").Bool(pool_bit_identical);
  json.EndObject();  // buffer_pool

  if (profile_hz > 0) {
    fra::ContinuousProfiler& profiler = fra::ContinuousProfiler::Get();
    profiler.Stop();
    const std::string collapsed = profiler.Collapsed();
    size_t stacks = 0;
    for (const char c : collapsed) {
      if (c == '\n') ++stacks;
    }
    fra::bench::WriteJsonFile("PROFILE_bench_throughput.folded", collapsed);
    std::printf("\nprofiler: %llu samples at %d Hz, %zu distinct stacks "
                "(PROFILE_bench_throughput.folded)\n",
                static_cast<unsigned long long>(profiler.samples()),
                profile_hz, stacks);
    std::printf("PROFILER_SAMPLES=%llu\n",
                static_cast<unsigned long long>(profiler.samples()));
    json.Key("profiler").BeginObject();
    json.Key("hz").Int(profile_hz);
    json.Key("samples").Int(static_cast<long long>(profiler.samples()));
    json.Key("distinct_stacks").Int(static_cast<long long>(stacks));
    json.EndObject();
  }
  json.EndObject();  // root

  fra::bench::WriteJsonFile("BENCH_throughput.json", json.str());

  // --- Answer cache: Zipf-overlapping ranges, three configurations ---------
  const fra::Rect cache_domain{{0, 0}, {80, 80}};
  const size_t cache_silos = 4;
  const size_t cache_objects = smoke ? 8000 : 60000;
  const size_t distinct_ranges = smoke ? 64 : 512;
  const size_t cache_queries = smoke ? 512 : 8192;

  // The range pool: rects of mixed size; every other one snapped to the
  // 2.0 cell grid so a share of the workload is boundary-free (the tile
  // layer's best case), the rest exercises boundary handling.
  fra::Rng cache_rng(20220416);
  std::vector<fra::QueryRange> pool;
  pool.reserve(distinct_ranges);
  for (size_t r = 0; r < distinct_ranges; ++r) {
    double x = cache_rng.NextDouble(0.0, 60.0);
    double y = cache_rng.NextDouble(0.0, 60.0);
    double w = cache_rng.NextDouble(6.0, 20.0);
    double h = cache_rng.NextDouble(6.0, 20.0);
    if (r % 2 == 0) {
      const auto snap = [](double v) { return 2.0 * std::floor(v / 2.0); };
      x = snap(x);
      y = snap(y);
      w = std::max(2.0, snap(w));
      h = std::max(2.0, snap(h));
    }
    pool.push_back(fra::QueryRange::MakeRect({x, y}, {x + w, y + h}));
  }
  // Zipf(s=1) popularity over the pool, drawn via the precomputed CDF.
  std::vector<double> zipf_cdf(distinct_ranges, 0.0);
  double zipf_norm = 0.0;
  for (size_t r = 0; r < distinct_ranges; ++r) {
    zipf_norm += 1.0 / static_cast<double>(r + 1);
    zipf_cdf[r] = zipf_norm;
  }
  for (double& c : zipf_cdf) c /= zipf_norm;
  std::vector<fra::FraQuery> cache_workload;
  cache_workload.reserve(cache_queries);
  for (size_t q = 0; q < cache_queries; ++q) {
    const double u = cache_rng.NextDouble(0.0, 1.0);
    const size_t r = static_cast<size_t>(
        std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
        zipf_cdf.begin());
    cache_workload.push_back(
        {pool[std::min(r, distinct_ranges - 1)], fra::AggregateKind::kCount});
  }

  using CacheOptions = fra::ServiceProvider::Options::CacheOptions;
  CacheOptions cache_off;
  cache_off.enabled = false;
  CacheOptions cache_exact;
  cache_exact.enabled = true;
  cache_exact.tile_layer = false;
  CacheOptions cache_tile;
  cache_tile.enabled = true;
  cache_tile.tile_layer = true;
  cache_tile.min_tile_coverage = 0.0;  // serve and warm from the first touch
  cache_tile.boundary_mode = CacheOptions::BoundaryMode::kFraction;

  struct NamedConfig {
    const char* name;
    const CacheOptions* options;
  };
  const NamedConfig configs[] = {{"off", &cache_off},
                                 {"exact_layer", &cache_exact},
                                 {"tile_layer", &cache_tile}};

  std::printf("\n=== Answer cache (Zipf ranges: %zu distinct, %zu queries, "
              "m=%zu, NonIID-est) ===\n",
              distinct_ranges, cache_queries, cache_silos);
  std::printf("%-12s %12s %16s %12s %10s %12s %12s\n", "cache", "qps",
              "silo RPC/query", "audited", "violations", "mean RE", "max RE");

  fra::bench::JsonWriter cache_json;
  cache_json.BeginObject();
  cache_json.Key("bench").String("cache");
  cache_json.Key("git_sha").String(fra::bench::GitSha());
  cache_json.Key("scale").String(scale_env != nullptr ? scale_env : "default");
  cache_json.Key("num_silos").Int(static_cast<long long>(cache_silos));
  cache_json.Key("num_objects").Int(static_cast<long long>(cache_objects));
  cache_json.Key("distinct_ranges").Int(
      static_cast<long long>(distinct_ranges));
  cache_json.Key("num_queries").Int(static_cast<long long>(cache_queries));
  cache_json.Key("zipf_s").Number(1.0);
  cache_json.Key("algorithm").String(
      fra::FraAlgorithmToString(fra::FraAlgorithm::kNonIidEst));
  cache_json.Key("configs").BeginArray();

  double off_rpcs = 0.0;
  double tile_rpcs = 0.0;
  for (const NamedConfig& config : configs) {
    const CacheRun run = RunCacheSweep(cache_objects, cache_silos,
                                       cache_domain, *config.options,
                                       cache_workload);
    if (std::strcmp(config.name, "off") == 0) off_rpcs = run.rpcs_per_query;
    if (std::strcmp(config.name, "tile_layer") == 0) {
      tile_rpcs = run.rpcs_per_query;
    }
    std::printf("%-12s %12.1f %16.4f %12llu %10llu %12.4f %12.4f\n",
                config.name, run.qps, run.rpcs_per_query,
                static_cast<unsigned long long>(run.audited),
                static_cast<unsigned long long>(run.violations),
                run.mean_relative_error, run.max_relative_error);
    cache_json.BeginObject();
    cache_json.Key("cache").String(config.name);
    cache_json.Key("qps").Number(run.qps);
    cache_json.Key("silo_rpcs_per_query").Number(run.rpcs_per_query);
    cache_json.Key("silo_messages").Int(static_cast<long long>(run.messages));
    cache_json.Key("exact_hits").Int(static_cast<long long>(run.exact_hits));
    cache_json.Key("tile_hits").Int(static_cast<long long>(run.tile_hits));
    cache_json.Key("tile_misses").Int(
        static_cast<long long>(run.tile_misses));
    cache_json.Key("audited").Int(static_cast<long long>(run.audited));
    cache_json.Key("violations").Int(static_cast<long long>(run.violations));
    cache_json.Key("mean_relative_error").Number(run.mean_relative_error);
    cache_json.Key("max_relative_error").Number(run.max_relative_error);
    cache_json.EndObject();
  }
  cache_json.EndArray();
  const double rpc_reduction =
      tile_rpcs > 0.0 ? off_rpcs / tile_rpcs
                      : std::numeric_limits<double>::infinity();
  cache_json.Key("rpc_reduction_tile_vs_off").Number(
      tile_rpcs > 0.0 ? rpc_reduction : -1.0);
  cache_json.EndObject();
  if (tile_rpcs > 0.0) {
    std::printf("tile-layer silo-RPC reduction vs off: %.1fx "
                "(acceptance bar: >=3x)\n", rpc_reduction);
  } else {
    std::printf("tile-layer silo-RPC reduction vs off: inf "
                "(zero silo RPCs; acceptance bar: >=3x)\n");
  }

  fra::bench::WriteJsonFile("BENCH_cache.json", cache_json.str());
  return 0;
}
