// Throughput claim (paper Sec. 1 & 8 summary): the sampling algorithms
// must sustain >250 queries/second at the default configuration while
// EXACT saturates far earlier (~50 q/s on the paper's testbed). Absolute
// numbers on a local in-process federation are higher across the board;
// the claim to check is the ORDER and the >=5x gap (m = 6 silos).
//
// Tail latencies come from the metrics registry's
// fra_query_latency_microseconds histograms (ExecuteBatch records every
// query), not a hand-rolled latency vector — the bench reports exactly
// what an operator scraping the registry would see.

#include <cstdio>

#include "bench/fig_common.h"
#include "eval/report.h"
#include "util/metrics.h"

int main() {
  fra::ExperimentConfig config =
      fra::ApplyEnvScale(fra::ExperimentConfig::Defaults());
  fra::ExperimentRunner runner(config);
  const fra::Status prepared = runner.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.ToString().c_str());
    return 1;
  }

  fra::MetricsRegistry& registry = fra::MetricsRegistry::Default();

  std::printf("\n=== Throughput at defaults (|P|=%zu, m=%zu, nQ=%zu) ===\n",
              config.total_objects, config.num_silos, config.num_queries);
  std::printf("%-16s %12s %12s %9s %12s %12s %14s\n", "algorithm", "qps",
              "time(s)", "MRE(%)", "p50(us)", "p95(us)", "meets >250 q/s?");

  double exact_qps = 0.0;
  double best_sampling_qps = 0.0;
  for (fra::FraAlgorithm algorithm : fra::bench::AllAlgorithms()) {
    auto result = runner.RunAlgorithm(algorithm);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    if (algorithm == fra::FraAlgorithm::kExact) {
      exact_qps = result->throughput_qps;
    }
    if (fra::IsSingleSilo(algorithm)) {
      best_sampling_qps = std::max(best_sampling_qps, result->throughput_qps);
    }
    const fra::Histogram& latency = registry.GetHistogram(
        "fra_query_latency_microseconds",
        {{"algorithm", fra::FraAlgorithmToString(algorithm)}});
    std::printf("%-16s %12.1f %12.4f %9.3f %12.1f %12.1f %14s\n",
                fra::FraAlgorithmToString(algorithm), result->throughput_qps,
                result->total_time_seconds, result->mre * 100.0,
                latency.Quantile(0.5), latency.Quantile(0.95),
                result->throughput_qps >= 250.0 ? "yes" : "no");
  }
  std::printf("\nsampling vs EXACT speedup: %.1fx (paper reports up to "
              "85.1x on 3M records over TCP)\n",
              best_sampling_qps / exact_qps);

  fra::PrintQueryLatencyTable(registry);
  return 0;
}
