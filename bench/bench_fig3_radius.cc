// Paper Fig. 3: impact of the query radius r on MRE, running time,
// communication cost and index memory (COUNT queries).

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (double r : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.radius_km = r;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", r);
    points.push_back({label, config});
  }
  return fra::bench::RunFigure("Fig. 3: impact of query radius r (COUNT)",
                               "r (km)", points);
}
