#ifndef FRA_BENCH_BENCH_JSON_H_
#define FRA_BENCH_BENCH_JSON_H_

// Machine-readable bench output: a minimal JSON builder (objects, arrays,
// scalars — all this repo's BENCH_*.json files need) plus the git
// revision stamp, so CI and regression tooling can diff runs without
// scraping the human-readable tables.

#include <cmath>
#include <cstdio>
#include <string>

#include "util/build_info.h"

namespace fra {
namespace bench {

/// The revision a bench binary was built from (util/build_info.h: the
/// FRA_GIT_SHA env var overrides the configure-time stamp).
inline std::string GitSha() { return BuildGitSha(); }

/// Streaming JSON builder. Call Key() before every member of an object;
/// commas and quoting are handled internally. No validation beyond that —
/// the caller is trusted to balance Begin/End.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& name) {
    MaybeComma();
    Quote(name);
    out_ += ':';
    need_comma_ = false;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    MaybeComma();
    Quote(value);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Number(double value) {
    MaybeComma();
    if (std::isfinite(value)) {
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      out_ += buffer;
    } else {
      out_ += "null";  // JSON has no NaN/Inf
    }
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Int(long long value) {
    MaybeComma();
    out_ += std::to_string(value);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Bool(bool value) {
    MaybeComma();
    out_ += value ? "true" : "false";
    need_comma_ = true;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char bracket) {
    MaybeComma();
    out_ += bracket;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& Close(char bracket) {
    out_ += bracket;
    need_comma_ = true;
    return *this;
  }
  void MaybeComma() {
    if (need_comma_) out_ += ',';
  }
  void Quote(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
};

/// Writes `json` to `path` (with a trailing newline) and logs the
/// location; bench output files land in the working directory by
/// convention (BENCH_<name>.json).
inline bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "%s\n", json.c_str());
  std::fclose(file);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace fra

#endif  // FRA_BENCH_BENCH_JSON_H_
