// Fan-out scaling over real TCP: with the provider's per-silo connection
// pool and the parallel EXACT/OPTA fan-out, one query against m silos
// that each take ~`delay` to answer should cost O(max silo latency), not
// O(sum) — the wall clock stays flat as m grows. Run with the serial
// baseline in mind: m silos × delay each would be m·delay sequentially.
//
//   ./build/bench/bench_tcp_fanout           # m in {1, 2, 4, 8}
//   FRA_BENCH_SCALE=smoke ./build/bench/bench_tcp_fanout

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "federation/service_provider.h"
#include "federation/silo.h"
#include "net/tcp_network.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

// Fixed per-request service delay in front of a real silo — the 1-silo
// latency model of the pooled-transport tests.
class DelayingEndpoint : public fra::SiloEndpoint {
 public:
  DelayingEndpoint(fra::SiloEndpoint* inner, int delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}
  fra::Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->HandleMessage(request);
  }

 private:
  fra::SiloEndpoint* inner_;
  const int delay_ms_;
};

}  // namespace

int main() {
  const char* scale = std::getenv("FRA_BENCH_SCALE");
  const bool smoke = scale != nullptr && std::strcmp(scale, "smoke") == 0;
  const int delay_ms = smoke ? 2 : 10;
  const int repetitions = smoke ? 3 : 20;
  const size_t objects_per_silo = smoke ? 2000 : 20000;

  const fra::Rect domain{{0, 0}, {100, 100}};
  fra::Silo::Options silo_options;
  silo_options.grid_spec.domain = domain;
  silo_options.grid_spec.cell_length = 2.0;

  std::printf("EXACT fan-out over TCP, %d ms service delay per silo\n",
              delay_ms);
  std::printf("%4s %14s %14s %10s\n", "m", "mean query ms", "serial ms (m·d)",
              "speedup");

  fra::bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("tcp_fanout");
  json.Key("git_sha").String(fra::bench::GitSha());
  json.Key("scale").String(smoke ? "smoke" : "default");
  json.Key("delay_ms").Int(delay_ms);
  json.Key("repetitions").Int(repetitions);
  json.Key("objects_per_silo").Int(static_cast<long long>(objects_per_silo));
  json.Key("points").BeginArray();

  for (size_t m : {1UL, 2UL, 4UL, 8UL}) {
    std::vector<std::unique_ptr<fra::Silo>> silos;
    std::vector<std::unique_ptr<DelayingEndpoint>> delayed;
    std::vector<std::unique_ptr<fra::TcpSiloServer>> servers;
    fra::TcpNetwork network;
    fra::Rng rng(7 + m);
    for (size_t s = 0; s < m; ++s) {
      fra::ObjectSet objects;
      objects.reserve(objects_per_silo);
      for (size_t i = 0; i < objects_per_silo; ++i) {
        objects.push_back({{rng.NextDouble(domain.min.x, domain.max.x),
                            rng.NextDouble(domain.min.y, domain.max.y)},
                           static_cast<double>(rng.NextInt64(0, 4))});
      }
      auto silo = fra::Silo::Create(static_cast<int>(s), std::move(objects),
                                    silo_options)
                      .ValueOrDie();
      delayed.push_back(
          std::make_unique<DelayingEndpoint>(silo.get(), delay_ms));
      auto server = fra::TcpSiloServer::Start(delayed.back().get())
                        .ValueOrDie();
      FRA_CHECK_OK(network.AddSilo(static_cast<int>(s), server->port()));
      silos.push_back(std::move(silo));
      servers.push_back(std::move(server));
    }

    auto provider = fra::ServiceProvider::Create(&network).ValueOrDie();
    const fra::FraQuery query{
        fra::QueryRange::MakeRect({10, 10}, {90, 90}),
        fra::AggregateKind::kCount};
    // Warm the pool: the first fan-out pays m connection dials.
    FRA_CHECK_OK(provider->Execute(query, fra::FraAlgorithm::kExact).status());

    fra::Timer timer;
    for (int r = 0; r < repetitions; ++r) {
      FRA_CHECK_OK(
          provider->Execute(query, fra::FraAlgorithm::kExact).status());
    }
    const double mean_ms = timer.ElapsedMillis() / repetitions;
    const double serial_ms = static_cast<double>(m) * delay_ms;
    std::printf("%4zu %14.2f %14.1f %9.1fx\n", m, mean_ms, serial_ms,
                serial_ms / mean_ms);
    json.BeginObject();
    json.Key("num_silos").Int(static_cast<long long>(m));
    json.Key("mean_query_ms").Number(mean_ms);
    json.Key("serial_ms").Number(serial_ms);
    json.Key("speedup").Number(serial_ms / mean_ms);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  fra::bench::WriteJsonFile("BENCH_tcp_fanout.json", json.str());
  return 0;
}
