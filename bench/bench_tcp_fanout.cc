// Fan-out scaling over real TCP: with the provider's per-silo connection
// pool and the parallel EXACT/OPTA fan-out, one query against m silos
// that each take ~`delay` to answer should cost O(max silo latency), not
// O(sum) — the wall clock stays flat as m grows. Run with the serial
// baseline in mind: m silos × delay each would be m·delay sequentially.
//
// Two serving substrates are measured back to back — the legacy blocking
// pool / thread-per-connection pair ("before") and the epoll reactor
// ("after") — and a high-concurrency sustain section then drives the
// reactor with thousands of concurrent in-flight queries, a load shape
// the blocking substrate cannot express at all (it would need one caller
// thread per in-flight query).
//
//   ./build/bench/bench_tcp_fanout           # m in {1, 2, 4, 8}; 10k in flight
//   FRA_BENCH_SCALE=smoke ./build/bench/bench_tcp_fanout   # 1k in flight

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "federation/service_provider.h"
#include "federation/silo.h"
#include "net/message.h"
#include "net/tcp_network.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

// Fixed per-request service delay in front of a real silo — the 1-silo
// latency model of the pooled-transport tests.
class DelayingEndpoint : public fra::SiloEndpoint {
 public:
  DelayingEndpoint(fra::SiloEndpoint* inner, int delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}
  fra::Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->HandleMessage(request);
  }

 private:
  fra::SiloEndpoint* inner_;
  const int delay_ms_;
};

fra::ObjectSet MakeObjects(const fra::Rect& domain, size_t count,
                           fra::Rng* rng) {
  fra::ObjectSet objects;
  objects.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    objects.push_back({{rng->NextDouble(domain.min.x, domain.max.x),
                        rng->NextDouble(domain.min.y, domain.max.y)},
                       static_cast<double>(rng->NextInt64(0, 4))});
  }
  return objects;
}

}  // namespace

int main() {
  const char* scale = std::getenv("FRA_BENCH_SCALE");
  const bool smoke = scale != nullptr && std::strcmp(scale, "smoke") == 0;
  const int delay_ms = smoke ? 2 : 10;
  const int repetitions = smoke ? 3 : 20;
  const size_t objects_per_silo = smoke ? 2000 : 20000;

  const fra::Rect domain{{0, 0}, {100, 100}};
  fra::Silo::Options silo_options;
  silo_options.grid_spec.domain = domain;
  silo_options.grid_spec.cell_length = 2.0;

  fra::bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("tcp_fanout");
  json.Key("git_sha").String(fra::bench::GitSha());
  json.Key("scale").String(smoke ? "smoke" : "default");
  json.Key("delay_ms").Int(delay_ms);
  json.Key("repetitions").Int(repetitions);
  json.Key("objects_per_silo").Int(static_cast<long long>(objects_per_silo));
  json.Key("points").BeginArray();

  // --- Fan-out latency, before (legacy) and after (reactor) ---------------
  for (const bool use_reactor : {false, true}) {
    const char* mode = use_reactor ? "reactor" : "legacy";
    std::printf(
        "\nEXACT fan-out over TCP (%s substrate), %d ms service delay\n",
        mode, delay_ms);
    std::printf("%4s %14s %16s %10s\n", "m", "mean query ms",
                "serial ms (m*d)", "speedup");

    for (size_t m : {1UL, 2UL, 4UL, 8UL}) {
      std::vector<std::unique_ptr<fra::Silo>> silos;
      std::vector<std::unique_ptr<DelayingEndpoint>> delayed;
      std::vector<std::unique_ptr<fra::TcpSiloServer>> servers;
      fra::TcpSiloServer::Options server_options;
      server_options.use_reactor = use_reactor;
      fra::TcpNetwork::Options net_options;
      net_options.use_reactor = use_reactor;
      fra::TcpNetwork network(net_options);
      fra::Rng rng(7 + m);
      for (size_t s = 0; s < m; ++s) {
        auto silo = fra::Silo::Create(static_cast<int>(s),
                                      MakeObjects(domain, objects_per_silo,
                                                  &rng),
                                      silo_options)
                        .ValueOrDie();
        delayed.push_back(
            std::make_unique<DelayingEndpoint>(silo.get(), delay_ms));
        auto server = fra::TcpSiloServer::Start(delayed.back().get(), 0,
                                                server_options)
                          .ValueOrDie();
        FRA_CHECK_OK(network.AddSilo(static_cast<int>(s), server->port()));
        silos.push_back(std::move(silo));
        servers.push_back(std::move(server));
      }

      auto provider = fra::ServiceProvider::Create(&network).ValueOrDie();
      const fra::FraQuery query{
          fra::QueryRange::MakeRect({10, 10}, {90, 90}),
          fra::AggregateKind::kCount};
      // Warm the pool: the first fan-out pays m connection dials.
      FRA_CHECK_OK(
          provider->Execute(query, fra::FraAlgorithm::kExact).status());

      fra::Timer timer;
      for (int r = 0; r < repetitions; ++r) {
        FRA_CHECK_OK(
            provider->Execute(query, fra::FraAlgorithm::kExact).status());
      }
      const double mean_ms = timer.ElapsedMillis() / repetitions;
      const double serial_ms = static_cast<double>(m) * delay_ms;
      std::printf("%4zu %14.2f %16.1f %9.1fx\n", m, mean_ms, serial_ms,
                  serial_ms / mean_ms);
      json.BeginObject();
      json.Key("mode").String(mode);
      json.Key("num_silos").Int(static_cast<long long>(m));
      json.Key("mean_query_ms").Number(mean_ms);
      json.Key("serial_ms").Number(serial_ms);
      json.Key("speedup").Number(serial_ms / mean_ms);
      json.EndObject();
    }
  }
  json.EndArray();

  // --- High-concurrency sustain (reactor only) ----------------------------
  // Thousands of queries in flight against a handful of silos: each
  // in-flight call costs one timer-wheel entry and a pipelined slot on a
  // pooled connection, not a blocked thread. The window pump keeps
  // `target_inflight` outstanding until `total_ops` complete.
  {
    const size_t target_inflight = smoke ? 1000 : 10000;
    const size_t total_ops = target_inflight * (smoke ? 5 : 10);
    const size_t kSilos = 4;

    std::vector<std::unique_ptr<fra::Silo>> silos;
    std::vector<std::unique_ptr<fra::TcpSiloServer>> servers;
    fra::TcpNetwork::Options net_options;
    // Reactor threads ~ core count; loops are I/O bound.
    net_options.reactor_threads =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    fra::TcpNetwork network(net_options);
    fra::Rng rng(99);
    for (size_t s = 0; s < kSilos; ++s) {
      silos.push_back(fra::Silo::Create(static_cast<int>(s),
                                        MakeObjects(domain, 2000, &rng),
                                        silo_options)
                          .ValueOrDie());
      servers.push_back(
          fra::TcpSiloServer::Start(silos.back().get()).ValueOrDie());
      FRA_CHECK_OK(network.AddSilo(static_cast<int>(s),
                                   servers.back()->port()));
    }

    fra::AggregateRequest request;
    request.range = fra::QueryRange::MakeRect({20, 20}, {80, 80});
    request.mode = fra::LocalQueryMode::kExact;
    const std::vector<uint8_t> encoded = request.Encode();

    std::mutex mu;
    std::condition_variable window_open;
    std::condition_variable drained;
    size_t inflight = 0, completed = 0, failed = 0, max_inflight = 0;

    fra::Timer timer;
    for (size_t issued = 0; issued < total_ops; ++issued) {
      {
        std::unique_lock<std::mutex> lock(mu);
        window_open.wait(lock, [&] { return inflight < target_inflight; });
        ++inflight;
        max_inflight = std::max(max_inflight, inflight);
      }
      network.CallAsync(
          static_cast<int>(issued % kSilos), encoded,
          [&](fra::Result<std::vector<uint8_t>> response) {
            std::lock_guard<std::mutex> lock(mu);
            --inflight;
            ++completed;
            if (!response.ok()) ++failed;
            window_open.notify_one();
            if (completed == total_ops) drained.notify_all();
          });
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      drained.wait(lock, [&] { return completed == total_ops; });
    }
    const double seconds = timer.ElapsedMillis() / 1000.0;
    const double qps = static_cast<double>(completed - failed) / seconds;
    std::printf(
        "\nsustain: %zu ops, window %zu (peak %zu in flight), "
        "%zu failed, %.0f qps\n",
        total_ops, target_inflight, max_inflight, failed, qps);

    json.Key("sustain").BeginObject();
    json.Key("target_inflight").Int(static_cast<long long>(target_inflight));
    json.Key("max_inflight").Int(static_cast<long long>(max_inflight));
    json.Key("total_ops").Int(static_cast<long long>(total_ops));
    json.Key("completed").Int(static_cast<long long>(completed));
    json.Key("failed").Int(static_cast<long long>(failed));
    json.Key("qps").Number(qps);
    json.EndObject();
  }

  json.EndObject();
  fra::bench::WriteJsonFile("BENCH_tcp_fanout.json", json.str());
  return 0;
}
