// Extension study: the privacy/accuracy frontier of the DP mechanism
// (the paper's stated future direction, Sec. 9.1). Sweeps the per-
// statistic privacy parameter and reports the MRE of each algorithm —
// showing which estimators degrade gracefully under silo-side noise.

#include <cstdio>
#include <string>

#include "baseline/centralized.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "federation/federation.h"

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 600000;
  data_options.seed = 41;
  data_options.non_iid = true;
  const auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();
  auto partitions =
      fra::SplitIntoSilos(dataset.company_partitions, 6, 1).ValueOrDie();
  const fra::CentralizedRTree truth(partitions);

  fra::WorkloadOptions workload;
  workload.num_queries = 100;
  workload.radius_km = 2.0;
  workload.seed = 42;
  const auto queries =
      fra::GenerateQueries(partitions, workload).ValueOrDie();
  std::vector<double> exact(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    exact[i] =
        truth.Aggregate(queries[i].range, queries[i].kind).ValueOrDie();
  }

  std::printf("\n=== Privacy/accuracy frontier (Laplace mechanism, COUNT) "
              "===\n");
  std::printf("%-10s %12s %12s %16s %16s\n", "dp eps", "EXACT", "OPTA",
              "IID-est+LSR", "NonIID-est+LSR");

  for (double dp_epsilon : {0.0, 10.0, 1.0, 0.5, 0.1}) {
    fra::FederationOptions options;
    options.silo.grid_spec.domain = dataset.domain;
    options.silo.grid_spec.cell_length = 1.5;
    options.silo.dp.epsilon = dp_epsilon;
    auto federation =
        fra::Federation::Create(partitions, options).ValueOrDie();
    fra::ServiceProvider& provider = federation->provider();

    double mres[4];
    const fra::FraAlgorithm algorithms[4] = {
        fra::FraAlgorithm::kExact, fra::FraAlgorithm::kOpta,
        fra::FraAlgorithm::kIidEstLsr, fra::FraAlgorithm::kNonIidEstLsr};
    for (int a = 0; a < 4; ++a) {
      const auto answers =
          provider.ExecuteBatch(queries, algorithms[a]).ValueOrDie();
      fra::MreAccumulator mre;
      for (size_t i = 0; i < answers.size(); ++i) {
        mre.Add(exact[i], answers[i]);
      }
      mres[a] = mre.Mre();
    }
    const std::string label =
        dp_epsilon == 0.0 ? "off" : std::to_string(dp_epsilon).substr(0, 4);
    std::printf("%-10s %11.2f%% %11.2f%% %15.2f%% %15.2f%%\n", label.c_str(),
                mres[0] * 100.0, mres[1] * 100.0, mres[2] * 100.0,
                mres[3] * 100.0);
  }
  std::printf(
      "\nEXACT degrades least (it sums m independent noise draws over the\n"
      "largest true values); NonIID-est pays per-boundary-cell noise, so\n"
      "its advantage narrows as eps shrinks. Composition accounting across\n"
      "queries is out of scope (see DESIGN.md).\n");
  return 0;
}
