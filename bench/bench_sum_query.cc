// Paper Sec. 8.2 note: "The results for SUM query have the same trend" as
// COUNT. This bench runs the default configuration under both aggregation
// functions so the trend can be compared side by side.

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (fra::AggregateKind kind :
       {fra::AggregateKind::kCount, fra::AggregateKind::kSum}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.kind = kind;
    points.push_back({fra::AggregateKindToString(kind), config});
  }
  return fra::bench::RunFigure("SUM vs COUNT at defaults (Sec. 8.2 note)",
                               "F", points);
}
