// Paper Fig. 5: impact of the grid cell length L (COUNT queries). Larger
// cells mean coarser sum_0 / per-cell estimates and higher MRE.

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (double length : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.grid_length_km = length;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", length);
    points.push_back({label, config});
  }
  return fra::bench::RunFigure("Fig. 5: impact of grid length L (COUNT)",
                               "L (km)", points);
}
