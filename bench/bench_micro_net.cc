// Micro-benchmarks for the network substrate: message codec throughput,
// grid serialisation, and transport round-trip latency (in-process vs
// real loopback TCP) — quantifying what the in-process substrate
// abstracts away.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "bench/bench_json.h"
#include "federation/silo.h"
#include "index/grid_index.h"
#include "net/message.h"
#include "net/network.h"
#include "net/tcp_network.h"
#include "util/buffer.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/trace.h"

namespace fra {
namespace {

class EchoEndpoint : public SiloEndpoint {
 public:
  Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) override {
    return request;
  }
  // Zero-copy serving path: answer straight from the borrowed view into
  // a pooled response buffer, the way a real silo does.
  Result<std::vector<uint8_t>> HandleMessageView(
      ConstByteSpan request) override {
    std::vector<uint8_t> response = BufferPool::Default().Acquire(
        request.size());
    response.assign(request.begin(), request.end());
    return response;
  }
};

void BM_EncodeAggregateRequest(benchmark::State& state) {
  AggregateRequest request;
  request.range = QueryRange::MakeCircle({70, 140}, 2.0);
  request.mode = LocalQueryMode::kLsr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.Encode());
  }
}
BENCHMARK(BM_EncodeAggregateRequest);

void BM_DecodeAggregateRequest(benchmark::State& state) {
  AggregateRequest request;
  request.range = QueryRange::MakeCircle({70, 140}, 2.0);
  const std::vector<uint8_t> encoded = request.Encode();
  for (auto _ : state) {
    BinaryReader reader(encoded);
    benchmark::DoNotOptimize(AggregateRequest::Decode(&reader));
  }
}
BENCHMARK(BM_DecodeAggregateRequest);

void BM_EncodeDecodeCellVector(benchmark::State& state) {
  std::vector<CellContribution> cells(
      static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i].cell_id = static_cast<uint32_t>(i);
    cells[i].summary.Add(rng.NextDouble(0, 4));
  }
  for (auto _ : state) {
    const std::vector<uint8_t> encoded = EncodeCellVectorResponse(cells);
    benchmark::DoNotOptimize(DecodeCellVectorResponse(encoded));
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(cells.size() *
                           (4 + AggregateSummary::kWireSize)));
}
BENCHMARK(BM_EncodeDecodeCellVector)->Arg(16)->Arg(256);

void BM_GridSerializeDeserialize(benchmark::State& state) {
  GridIndex::GridSpec spec;
  spec.domain = Rect{{0, 0}, {145, 276}};
  spec.cell_length = 1.5;  // ~18k cells, the default city grid
  Rng rng(2);
  ObjectSet objects;
  for (int i = 0; i < 100000; ++i) {
    objects.push_back({{rng.NextDouble(0, 145), rng.NextDouble(0, 276)},
                       static_cast<double>(rng.NextInt64(0, 4))});
  }
  const GridIndex grid = GridIndex::Build(objects, spec).ValueOrDie();
  for (auto _ : state) {
    BinaryWriter writer;
    grid.Serialize(&writer);
    BinaryReader reader(writer.buffer());
    GridIndex decoded;
    benchmark::DoNotOptimize(GridIndex::Deserialize(&reader, &decoded));
  }
}
BENCHMARK(BM_GridSerializeDeserialize)->Unit(benchmark::kMillisecond);

// Transport round-trips report bytes from the registry's global
// fra_comm_bytes_total counters (the CommStats shim mirrors every
// exchange there), so the benchmark measures the same byte accounting
// operators scrape.
uint64_t RegistryCommBytes() {
  MetricsRegistry& registry = MetricsRegistry::Default();
  return registry
             .GetCounter("fra_comm_bytes_total", {{"direction", "to_silos"}})
             .Value() +
         registry
             .GetCounter("fra_comm_bytes_total", {{"direction", "to_provider"}})
             .Value();
}

void BM_InProcessRoundTrip(benchmark::State& state) {
  static EchoEndpoint* endpoint = new EchoEndpoint();
  static InProcessNetwork* network = [] {
    auto* n = new InProcessNetwork();
    FRA_CHECK_OK(n->RegisterSilo(1, endpoint));
    return n;
  }();
  const std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)));
  const uint64_t bytes_before = RegistryCommBytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(network->Call(1, payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(RegistryCommBytes() - bytes_before));
}
BENCHMARK(BM_InProcessRoundTrip)->Arg(64)->Arg(4096);

void BM_TcpLoopbackRoundTrip(benchmark::State& state) {
  static EchoEndpoint* endpoint = new EchoEndpoint();
  static TcpSiloServer* server =
      TcpSiloServer::Start(endpoint).ValueOrDie().release();
  static TcpNetwork* network = [] {
    auto* n = new TcpNetwork();
    FRA_CHECK_OK(n->AddSilo(1, server->port()));
    return n;
  }();
  const std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)));
  const uint64_t bytes_before = RegistryCommBytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(network->Call(1, payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(RegistryCommBytes() - bytes_before));
}
BENCHMARK(BM_TcpLoopbackRoundTrip)->Arg(64)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  Counter& counter = MetricsRegistry::Default().GetCounter(
      "bench_counter_total", {{"bench", "micro_net"}});
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_MetricsCounterIncrement)->ThreadRange(1, 4);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  Histogram& histogram = MetricsRegistry::Default().GetHistogram(
      "bench_histogram_microseconds", {{"bench", "micro_net"}});
  double value = 0.5;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 1e6 ? value * 1.7 : 0.5;  // sweep the bucket ladder
  }
}
BENCHMARK(BM_MetricsHistogramObserve)->ThreadRange(1, 4);

// Cost of the mutex-guarded (name, labels) lookup hot paths avoid by
// caching the reference GetCounter returns.
void BM_MetricsRegistryLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(&MetricsRegistry::Default().GetCounter(
        "bench_lookup_total", {{"silo", "1"}, {"algorithm", "IID-est"}}));
  }
}
BENCHMARK(BM_MetricsRegistryLookup);

// FRA_TRACE_SPAN overhead: Arg(0) = tracer disabled (histogram observe
// only), Arg(1) = enabled (plus a SpanRecord into the ring buffer).
void BM_TraceSpanOverhead(benchmark::State& state) {
  Tracer::Get().SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    FRA_TRACE_SPAN("bench.span");
  }
  Tracer::Get().SetEnabled(false);
  Tracer::Get().Clear();
}
BENCHMARK(BM_TraceSpanOverhead)->Arg(0)->Arg(1);

// --- Serialization / allocation section (BENCH_micro_net.json) -------------
//
// The zero-copy data plane's report card: in-process EXACT aggregate
// round trips against a real silo, once with BufferPool disabled (the
// pre-pool allocator behaviour) and once enabled. Reports p50 latency,
// allocator traffic per query (pool misses = mallocs on the pooled
// path), pool hit rate, comm bytes per query, and whether the answers
// are bit-identical across the two modes. FRA_ALLOC_BUDGET (a double)
// turns the warm-path allocs/query figure into a CI gate.

struct AllocModeReport {
  double p50_micros = 0;
  double allocs_per_query = 0;
  double hit_rate = 0;
  double comm_bytes_per_query = 0;
  std::vector<uint8_t> first_response;
  double exact_answer = 0;
};

AllocModeReport RunAllocMode(Network* network,
                             const std::vector<uint8_t>& request,
                             bool pool_enabled, int warmup, int iters) {
  BufferPool::SetEnabled(pool_enabled);
  AllocModeReport report;

  auto round_trip = [&]() {
    Result<std::vector<uint8_t>> response = network->Call(1, request);
    FRA_CHECK_OK(response.status());
    return std::move(response).ValueOrDie();
  };
  for (int i = 0; i < warmup; ++i) {
    BufferPool::Default().Release(round_trip());
  }

  const BufferPool::Stats pool_before = BufferPool::Default().stats();
  const uint64_t comm_before = RegistryCommBytes();
  std::vector<double> micros(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<uint8_t> response = round_trip();
    const auto stop = std::chrono::steady_clock::now();
    micros[static_cast<size_t>(i)] =
        std::chrono::duration<double, std::micro>(stop - start).count();
    if (i == 0) report.first_response = response;
    BufferPool::Default().Release(std::move(response));
  }
  const BufferPool::Stats pool_after = BufferPool::Default().stats();
  const uint64_t comm_after = RegistryCommBytes();

  std::sort(micros.begin(), micros.end());
  report.p50_micros = micros[micros.size() / 2];
  const double hits =
      static_cast<double>(pool_after.hits - pool_before.hits);
  const double misses =
      static_cast<double>(pool_after.misses - pool_before.misses);
  report.allocs_per_query = misses / iters;
  report.hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  report.comm_bytes_per_query =
      static_cast<double>(comm_after - comm_before) / iters;

  Result<AggregateSummary> summary =
      DecodeSummaryResponse(report.first_response);
  if (summary.ok()) {
    report.exact_answer = static_cast<double>(summary.ValueOrDie().count);
  }
  return report;
}

void WriteAllocModeJson(bench::JsonWriter* json, const char* key,
                        const AllocModeReport& report) {
  json->Key(key).BeginObject();
  json->Key("p50_micros").Number(report.p50_micros);
  json->Key("allocs_per_query").Number(report.allocs_per_query);
  json->Key("pool_hit_rate").Number(report.hit_rate);
  json->Key("comm_bytes_per_query").Number(report.comm_bytes_per_query);
  json->Key("exact_count").Number(report.exact_answer);
  json->EndObject();
}

/// Returns 0, or 1 when FRA_ALLOC_BUDGET is set and the warm pooled path
/// exceeds it.
int RunAllocSection() {
  const Rect domain{{0, 0}, {40, 40}};
  Rng rng(7);
  ObjectSet objects;
  for (int i = 0; i < 20000; ++i) {
    objects.push_back({{rng.NextDouble(0, 40), rng.NextDouble(0, 40)},
                       static_cast<double>(rng.NextInt64(0, 4))});
  }
  Silo::Options silo_options;
  silo_options.grid_spec.domain = domain;
  silo_options.grid_spec.cell_length = 2.0;
  silo_options.build_lsr = false;
  silo_options.build_histogram = false;
  auto silo = Silo::Create(1, std::move(objects), silo_options).ValueOrDie();
  InProcessNetwork network;
  FRA_CHECK_OK(network.RegisterSilo(1, silo.get()));

  AggregateRequest request;
  request.range = QueryRange::MakeCircle({20, 20}, 9.0);
  request.mode = LocalQueryMode::kExact;
  const std::vector<uint8_t> encoded = request.Encode();

  constexpr int kWarmup = 500;
  constexpr int kIters = 5000;
  const AllocModeReport pool_off =
      RunAllocMode(&network, encoded, false, kWarmup, kIters);
  const AllocModeReport pool_on =
      RunAllocMode(&network, encoded, true, kWarmup, kIters);
  BufferPool::SetEnabled(true);

  const bool bit_identical = pool_off.first_response == pool_on.first_response;

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("micro_net");
  json.Key("git_sha").String(bench::GitSha());
  json.Key("queries").Int(kIters);
  WriteAllocModeJson(&json, "pool_off", pool_off);
  WriteAllocModeJson(&json, "pool_on", pool_on);
  json.Key("p50_speedup")
      .Number(pool_on.p50_micros > 0
                  ? pool_off.p50_micros / pool_on.p50_micros
                  : 0.0);
  json.Key("exact_bit_identical").Bool(bit_identical);
  json.EndObject();
  bench::WriteJsonFile("BENCH_micro_net.json", json.str());

  std::printf(
      "alloc section: p50 %.2fus (pool off) -> %.2fus (pool on), "
      "allocs/query %.3f -> %.3f, hit rate %.3f, bit-identical %s\n",
      pool_off.p50_micros, pool_on.p50_micros, pool_off.allocs_per_query,
      pool_on.allocs_per_query, pool_on.hit_rate,
      bit_identical ? "yes" : "no");

  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: EXACT response bytes differ between pool modes\n");
    return 1;
  }
  if (const char* budget_env = std::getenv("FRA_ALLOC_BUDGET")) {
    const double budget = std::atof(budget_env);
    if (pool_on.allocs_per_query > budget) {
      std::fprintf(stderr,
                   "FAIL: warm pooled path allocates %.3f buffers/query, "
                   "budget FRA_ALLOC_BUDGET=%.3f\n",
                   pool_on.allocs_per_query, budget);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace fra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return fra::RunAllocSection();
}
