// Micro-benchmarks for the network substrate: message codec throughput,
// grid serialisation, and transport round-trip latency (in-process vs
// real loopback TCP) — quantifying what the in-process substrate
// abstracts away.

#include <benchmark/benchmark.h>

#include "index/grid_index.h"
#include "net/message.h"
#include "net/network.h"
#include "net/tcp_network.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/trace.h"

namespace fra {
namespace {

class EchoEndpoint : public SiloEndpoint {
 public:
  Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) override {
    return request;
  }
};

void BM_EncodeAggregateRequest(benchmark::State& state) {
  AggregateRequest request;
  request.range = QueryRange::MakeCircle({70, 140}, 2.0);
  request.mode = LocalQueryMode::kLsr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.Encode());
  }
}
BENCHMARK(BM_EncodeAggregateRequest);

void BM_DecodeAggregateRequest(benchmark::State& state) {
  AggregateRequest request;
  request.range = QueryRange::MakeCircle({70, 140}, 2.0);
  const std::vector<uint8_t> encoded = request.Encode();
  for (auto _ : state) {
    BinaryReader reader(encoded);
    benchmark::DoNotOptimize(AggregateRequest::Decode(&reader));
  }
}
BENCHMARK(BM_DecodeAggregateRequest);

void BM_EncodeDecodeCellVector(benchmark::State& state) {
  std::vector<CellContribution> cells(
      static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i].cell_id = static_cast<uint32_t>(i);
    cells[i].summary.Add(rng.NextDouble(0, 4));
  }
  for (auto _ : state) {
    const std::vector<uint8_t> encoded = EncodeCellVectorResponse(cells);
    benchmark::DoNotOptimize(DecodeCellVectorResponse(encoded));
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(cells.size() *
                           (4 + AggregateSummary::kWireSize)));
}
BENCHMARK(BM_EncodeDecodeCellVector)->Arg(16)->Arg(256);

void BM_GridSerializeDeserialize(benchmark::State& state) {
  GridIndex::GridSpec spec;
  spec.domain = Rect{{0, 0}, {145, 276}};
  spec.cell_length = 1.5;  // ~18k cells, the default city grid
  Rng rng(2);
  ObjectSet objects;
  for (int i = 0; i < 100000; ++i) {
    objects.push_back({{rng.NextDouble(0, 145), rng.NextDouble(0, 276)},
                       static_cast<double>(rng.NextInt64(0, 4))});
  }
  const GridIndex grid = GridIndex::Build(objects, spec).ValueOrDie();
  for (auto _ : state) {
    BinaryWriter writer;
    grid.Serialize(&writer);
    BinaryReader reader(writer.buffer());
    GridIndex decoded;
    benchmark::DoNotOptimize(GridIndex::Deserialize(&reader, &decoded));
  }
}
BENCHMARK(BM_GridSerializeDeserialize)->Unit(benchmark::kMillisecond);

// Transport round-trips report bytes from the registry's global
// fra_comm_bytes_total counters (the CommStats shim mirrors every
// exchange there), so the benchmark measures the same byte accounting
// operators scrape.
uint64_t RegistryCommBytes() {
  MetricsRegistry& registry = MetricsRegistry::Default();
  return registry
             .GetCounter("fra_comm_bytes_total", {{"direction", "to_silos"}})
             .Value() +
         registry
             .GetCounter("fra_comm_bytes_total", {{"direction", "to_provider"}})
             .Value();
}

void BM_InProcessRoundTrip(benchmark::State& state) {
  static EchoEndpoint* endpoint = new EchoEndpoint();
  static InProcessNetwork* network = [] {
    auto* n = new InProcessNetwork();
    FRA_CHECK_OK(n->RegisterSilo(1, endpoint));
    return n;
  }();
  const std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)));
  const uint64_t bytes_before = RegistryCommBytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(network->Call(1, payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(RegistryCommBytes() - bytes_before));
}
BENCHMARK(BM_InProcessRoundTrip)->Arg(64)->Arg(4096);

void BM_TcpLoopbackRoundTrip(benchmark::State& state) {
  static EchoEndpoint* endpoint = new EchoEndpoint();
  static TcpSiloServer* server =
      TcpSiloServer::Start(endpoint).ValueOrDie().release();
  static TcpNetwork* network = [] {
    auto* n = new TcpNetwork();
    FRA_CHECK_OK(n->AddSilo(1, server->port()));
    return n;
  }();
  const std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)));
  const uint64_t bytes_before = RegistryCommBytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(network->Call(1, payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(RegistryCommBytes() - bytes_before));
}
BENCHMARK(BM_TcpLoopbackRoundTrip)->Arg(64)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  Counter& counter = MetricsRegistry::Default().GetCounter(
      "bench_counter_total", {{"bench", "micro_net"}});
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_MetricsCounterIncrement)->ThreadRange(1, 4);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  Histogram& histogram = MetricsRegistry::Default().GetHistogram(
      "bench_histogram_microseconds", {{"bench", "micro_net"}});
  double value = 0.5;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 1e6 ? value * 1.7 : 0.5;  // sweep the bucket ladder
  }
}
BENCHMARK(BM_MetricsHistogramObserve)->ThreadRange(1, 4);

// Cost of the mutex-guarded (name, labels) lookup hot paths avoid by
// caching the reference GetCounter returns.
void BM_MetricsRegistryLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(&MetricsRegistry::Default().GetCounter(
        "bench_lookup_total", {{"silo", "1"}, {"algorithm", "IID-est"}}));
  }
}
BENCHMARK(BM_MetricsRegistryLookup);

// FRA_TRACE_SPAN overhead: Arg(0) = tracer disabled (histogram observe
// only), Arg(1) = enabled (plus a SpanRecord into the ring buffer).
void BM_TraceSpanOverhead(benchmark::State& state) {
  Tracer::Get().SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    FRA_TRACE_SPAN("bench.span");
  }
  Tracer::Get().SetEnabled(false);
  Tracer::Get().Clear();
}
BENCHMARK(BM_TraceSpanOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fra

BENCHMARK_MAIN();
