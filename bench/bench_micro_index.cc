// Micro-benchmarks (google-benchmark) backing the paper's complexity
// analyses: R-tree build & range aggregation, grid prefix-sum queries,
// LSR-Forest per-level query cost.

#include <benchmark/benchmark.h>

#include "core/lsr_forest.h"
#include "index/equi_depth_histogram.h"
#include "index/grid_index.h"
#include "index/rtree.h"
#include "util/random.h"

namespace fra {
namespace {

const Rect kDomain{{0, 0}, {145, 276}};

ObjectSet MakeObjects(size_t n) {
  Rng rng(42);
  ObjectSet objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    objects.push_back({{rng.NextDouble(kDomain.min.x, kDomain.max.x),
                        rng.NextDouble(kDomain.min.y, kDomain.max.y)},
                       static_cast<double>(rng.NextInt64(0, 4))});
  }
  return objects;
}

std::vector<QueryRange> MakeQueries(size_t n, double radius) {
  Rng rng(7);
  std::vector<QueryRange> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queries.push_back(QueryRange::MakeCircle(
        {rng.NextDouble(kDomain.min.x, kDomain.max.x),
         rng.NextDouble(kDomain.min.y, kDomain.max.y)},
        radius));
  }
  return queries;
}

void BM_RTreeBuild(benchmark::State& state) {
  const ObjectSet objects = MakeObjects(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree = RTree::Build(objects);
    benchmark::DoNotOptimize(tree.total().count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_RTreeRangeAggregate(benchmark::State& state) {
  const RTree tree =
      RTree::Build(MakeObjects(static_cast<size_t>(state.range(0))));
  const auto queries = MakeQueries(512, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.RangeAggregate(queries[i++ % queries.size()]).count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeRangeAggregate)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_GridIntersectingAggregate(benchmark::State& state) {
  GridIndex::GridSpec spec;
  spec.domain = kDomain;
  spec.cell_length = 1.5;
  const GridIndex grid =
      GridIndex::Build(MakeObjects(static_cast<size_t>(state.range(0))), spec)
          .ValueOrDie();
  const auto queries = MakeQueries(512, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.IntersectingCellsAggregate(queries[i++ % queries.size()]).count);
  }
}
BENCHMARK(BM_GridIntersectingAggregate)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_GridNaiveAggregate(benchmark::State& state) {
  GridIndex::GridSpec spec;
  spec.domain = kDomain;
  spec.cell_length = 1.5;
  const GridIndex grid =
      GridIndex::Build(MakeObjects(static_cast<size_t>(state.range(0))), spec)
          .ValueOrDie();
  const auto queries = MakeQueries(512, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.IntersectingCellsAggregateNaive(queries[i++ % queries.size()])
            .count);
  }
}
BENCHMARK(BM_GridNaiveAggregate)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_LsrForestQueryAtLevel(benchmark::State& state) {
  static const LsrForest* forest = [] {
    return new LsrForest(LsrForest::Build(MakeObjects(1000000)));
  }();
  const int level = static_cast<int>(state.range(0));
  const auto queries = MakeQueries(512, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forest->AggregateAtLevel(queries[i++ % queries.size()], level)
            .count);
  }
}
BENCHMARK(BM_LsrForestQueryAtLevel)->DenseRange(0, 12, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_HistogramEstimate(benchmark::State& state) {
  const EquiDepthHistogram hist =
      EquiDepthHistogram::Build(MakeObjects(1000000));
  const auto queries = MakeQueries(512, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hist.Estimate(queries[i++ % queries.size()]).count);
  }
}
BENCHMARK(BM_HistogramEstimate)->Unit(benchmark::kMicrosecond);

void BM_LsrForestBuild(benchmark::State& state) {
  const ObjectSet objects = MakeObjects(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    LsrForest forest = LsrForest::Build(objects);
    benchmark::DoNotOptimize(forest.num_levels());
  }
}
BENCHMARK(BM_LsrForestBuild)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fra

BENCHMARK_MAIN();
