#ifndef FRA_BENCH_FIG_COMMON_H_
#define FRA_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/report.h"

namespace fra {
namespace bench {

/// One sweep point of a paper figure: a display label for the swept
/// parameter plus the full configuration to run.
struct SweepPoint {
  std::string label;
  ExperimentConfig config;
};

inline std::vector<FraAlgorithm> AllAlgorithms() {
  return {FraAlgorithm::kExact,     FraAlgorithm::kOpta,
          FraAlgorithm::kIidEst,    FraAlgorithm::kIidEstLsr,
          FraAlgorithm::kNonIidEst, FraAlgorithm::kNonIidEstLsr};
}

/// Runs every sweep point against every algorithm and prints the paper-
/// style table (panels a-d of the figure as columns). Returns a process
/// exit code.
inline int RunFigure(const std::string& title, const std::string& param_name,
                     const std::vector<SweepPoint>& points,
                     const std::vector<FraAlgorithm>& algorithms =
                         AllAlgorithms()) {
  ExperimentTable table(title, param_name);
  for (const SweepPoint& point : points) {
    ExperimentRunner runner(ApplyEnvScale(point.config));
    std::fprintf(stderr, "[%s] preparing %s = %s ...\n", title.c_str(),
                 param_name.c_str(), point.label.c_str());
    const Status prepared = runner.Prepare();
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   prepared.ToString().c_str());
      return 1;
    }
    for (FraAlgorithm algorithm : algorithms) {
      auto result = runner.RunAlgorithm(algorithm);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n",
                     FraAlgorithmToString(algorithm),
                     result.status().ToString().c_str());
        return 1;
      }
      table.AddRow(point.label, *result);
    }
  }
  table.Print();
  return 0;
}

}  // namespace bench
}  // namespace fra

#endif  // FRA_BENCH_FIG_COMMON_H_
