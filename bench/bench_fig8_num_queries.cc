// Paper Fig. 8: impact of the number of queries nQ arriving in one
// second. Running time grows linearly for everyone, but the single-silo
// algorithms spread the batch across silos (Alg. 4) and stay real-time.

#include "bench/fig_common.h"

int main() {
  std::vector<fra::bench::SweepPoint> points;
  for (size_t n : {50UL, 100UL, 150UL, 200UL, 250UL}) {
    fra::ExperimentConfig config = fra::ExperimentConfig::Defaults();
    config.num_queries = n;
    points.push_back({std::to_string(n), config});
  }
  return fra::bench::RunFigure("Fig. 8: impact of number of queries nQ",
                               "nQ", points);
}
