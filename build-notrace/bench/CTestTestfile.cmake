# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-notrace/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig3_radius_smoke "/root/repo/build-notrace/bench/bench_fig3_radius")
set_tests_properties(bench_fig3_radius_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig4_silos_smoke "/root/repo/build-notrace/bench/bench_fig4_silos")
set_tests_properties(bench_fig4_silos_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig5_grid_length_smoke "/root/repo/build-notrace/bench/bench_fig5_grid_length")
set_tests_properties(bench_fig5_grid_length_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig6_epsilon_smoke "/root/repo/build-notrace/bench/bench_fig6_epsilon")
set_tests_properties(bench_fig6_epsilon_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig7_delta_smoke "/root/repo/build-notrace/bench/bench_fig7_delta")
set_tests_properties(bench_fig7_delta_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig8_num_queries_smoke "/root/repo/build-notrace/bench/bench_fig8_num_queries")
set_tests_properties(bench_fig8_num_queries_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig9_data_size_smoke "/root/repo/build-notrace/bench/bench_fig9_data_size")
set_tests_properties(bench_fig9_data_size_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_throughput_smoke "/root/repo/build-notrace/bench/bench_throughput")
set_tests_properties(bench_throughput_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_sum_query_smoke "/root/repo/build-notrace/bench/bench_sum_query")
set_tests_properties(bench_sum_query_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_extensions_smoke "/root/repo/build-notrace/bench/bench_extensions")
set_tests_properties(bench_extensions_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_rect_ranges_smoke "/root/repo/build-notrace/bench/bench_rect_ranges")
set_tests_properties(bench_rect_ranges_smoke PROPERTIES  ENVIRONMENT "FRA_BENCH_SCALE=smoke" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
