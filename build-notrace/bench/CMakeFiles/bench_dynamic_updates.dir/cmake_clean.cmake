file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_updates.dir/bench_dynamic_updates.cc.o"
  "CMakeFiles/bench_dynamic_updates.dir/bench_dynamic_updates.cc.o.d"
  "bench_dynamic_updates"
  "bench_dynamic_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
