file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_epsilon.dir/bench_fig6_epsilon.cc.o"
  "CMakeFiles/bench_fig6_epsilon.dir/bench_fig6_epsilon.cc.o.d"
  "bench_fig6_epsilon"
  "bench_fig6_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
