# Empty dependencies file for bench_fig6_epsilon.
# This may be replaced when dependencies are built.
