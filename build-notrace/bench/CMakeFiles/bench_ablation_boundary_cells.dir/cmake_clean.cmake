file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_boundary_cells.dir/bench_ablation_boundary_cells.cc.o"
  "CMakeFiles/bench_ablation_boundary_cells.dir/bench_ablation_boundary_cells.cc.o.d"
  "bench_ablation_boundary_cells"
  "bench_ablation_boundary_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_boundary_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
