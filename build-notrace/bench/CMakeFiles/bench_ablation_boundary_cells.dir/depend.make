# Empty dependencies file for bench_ablation_boundary_cells.
# This may be replaced when dependencies are built.
