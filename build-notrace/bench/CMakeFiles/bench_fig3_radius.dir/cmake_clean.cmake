file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_radius.dir/bench_fig3_radius.cc.o"
  "CMakeFiles/bench_fig3_radius.dir/bench_fig3_radius.cc.o.d"
  "bench_fig3_radius"
  "bench_fig3_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
