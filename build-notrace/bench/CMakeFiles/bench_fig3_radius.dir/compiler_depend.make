# Empty compiler generated dependencies file for bench_fig3_radius.
# This may be replaced when dependencies are built.
