# Empty compiler generated dependencies file for bench_multi_silo_sampling.
# This may be replaced when dependencies are built.
