file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_silo_sampling.dir/bench_multi_silo_sampling.cc.o"
  "CMakeFiles/bench_multi_silo_sampling.dir/bench_multi_silo_sampling.cc.o.d"
  "bench_multi_silo_sampling"
  "bench_multi_silo_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_silo_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
