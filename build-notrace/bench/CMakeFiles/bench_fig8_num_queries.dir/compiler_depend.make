# Empty compiler generated dependencies file for bench_fig8_num_queries.
# This may be replaced when dependencies are built.
