file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_num_queries.dir/bench_fig8_num_queries.cc.o"
  "CMakeFiles/bench_fig8_num_queries.dir/bench_fig8_num_queries.cc.o.d"
  "bench_fig8_num_queries"
  "bench_fig8_num_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_num_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
