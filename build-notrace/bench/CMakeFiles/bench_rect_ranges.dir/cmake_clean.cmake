file(REMOVE_RECURSE
  "CMakeFiles/bench_rect_ranges.dir/bench_rect_ranges.cc.o"
  "CMakeFiles/bench_rect_ranges.dir/bench_rect_ranges.cc.o.d"
  "bench_rect_ranges"
  "bench_rect_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rect_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
