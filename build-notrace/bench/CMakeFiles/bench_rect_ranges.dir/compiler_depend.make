# Empty compiler generated dependencies file for bench_rect_ranges.
# This may be replaced when dependencies are built.
