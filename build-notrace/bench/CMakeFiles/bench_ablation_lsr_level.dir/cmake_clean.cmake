file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lsr_level.dir/bench_ablation_lsr_level.cc.o"
  "CMakeFiles/bench_ablation_lsr_level.dir/bench_ablation_lsr_level.cc.o.d"
  "bench_ablation_lsr_level"
  "bench_ablation_lsr_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lsr_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
