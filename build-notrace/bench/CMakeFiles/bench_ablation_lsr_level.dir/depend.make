# Empty dependencies file for bench_ablation_lsr_level.
# This may be replaced when dependencies are built.
