file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prefix_sum.dir/bench_ablation_prefix_sum.cc.o"
  "CMakeFiles/bench_ablation_prefix_sum.dir/bench_ablation_prefix_sum.cc.o.d"
  "bench_ablation_prefix_sum"
  "bench_ablation_prefix_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prefix_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
