# Empty compiler generated dependencies file for bench_ablation_prefix_sum.
# This may be replaced when dependencies are built.
