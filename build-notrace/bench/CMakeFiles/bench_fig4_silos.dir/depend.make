# Empty dependencies file for bench_fig4_silos.
# This may be replaced when dependencies are built.
