file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_silos.dir/bench_fig4_silos.cc.o"
  "CMakeFiles/bench_fig4_silos.dir/bench_fig4_silos.cc.o.d"
  "bench_fig4_silos"
  "bench_fig4_silos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_silos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
