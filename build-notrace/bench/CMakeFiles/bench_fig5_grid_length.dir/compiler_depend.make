# Empty compiler generated dependencies file for bench_fig5_grid_length.
# This may be replaced when dependencies are built.
