file(REMOVE_RECURSE
  "CMakeFiles/bench_sum_query.dir/bench_sum_query.cc.o"
  "CMakeFiles/bench_sum_query.dir/bench_sum_query.cc.o.d"
  "bench_sum_query"
  "bench_sum_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sum_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
