# Empty dependencies file for bench_micro_net.
# This may be replaced when dependencies are built.
