file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_net.dir/bench_micro_net.cc.o"
  "CMakeFiles/bench_micro_net.dir/bench_micro_net.cc.o.d"
  "bench_micro_net"
  "bench_micro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
