file(REMOVE_RECURSE
  "CMakeFiles/federation_cli.dir/federation_cli.cpp.o"
  "CMakeFiles/federation_cli.dir/federation_cli.cpp.o.d"
  "federation_cli"
  "federation_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
