# Empty compiler generated dependencies file for federation_cli.
# This may be replaced when dependencies are built.
