file(REMOVE_RECURSE
  "CMakeFiles/metrics_dump.dir/metrics_dump.cpp.o"
  "CMakeFiles/metrics_dump.dir/metrics_dump.cpp.o.d"
  "metrics_dump"
  "metrics_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
