# Empty dependencies file for metrics_dump.
# This may be replaced when dependencies are built.
