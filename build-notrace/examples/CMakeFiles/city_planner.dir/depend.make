# Empty dependencies file for city_planner.
# This may be replaced when dependencies are built.
