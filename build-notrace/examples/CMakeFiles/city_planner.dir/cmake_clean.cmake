file(REMOVE_RECURSE
  "CMakeFiles/city_planner.dir/city_planner.cpp.o"
  "CMakeFiles/city_planner.dir/city_planner.cpp.o.d"
  "city_planner"
  "city_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
