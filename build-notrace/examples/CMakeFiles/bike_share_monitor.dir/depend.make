# Empty dependencies file for bike_share_monitor.
# This may be replaced when dependencies are built.
