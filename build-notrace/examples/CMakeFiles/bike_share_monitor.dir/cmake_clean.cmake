file(REMOVE_RECURSE
  "CMakeFiles/bike_share_monitor.dir/bike_share_monitor.cpp.o"
  "CMakeFiles/bike_share_monitor.dir/bike_share_monitor.cpp.o.d"
  "bike_share_monitor"
  "bike_share_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bike_share_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
