# Empty dependencies file for csv_federation.
# This may be replaced when dependencies are built.
