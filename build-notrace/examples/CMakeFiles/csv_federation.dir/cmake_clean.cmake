file(REMOVE_RECURSE
  "CMakeFiles/csv_federation.dir/csv_federation.cpp.o"
  "CMakeFiles/csv_federation.dir/csv_federation.cpp.o.d"
  "csv_federation"
  "csv_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
