# Empty dependencies file for fra_baseline.
# This may be replaced when dependencies are built.
