file(REMOVE_RECURSE
  "CMakeFiles/fra_baseline.dir/brute_force.cc.o"
  "CMakeFiles/fra_baseline.dir/brute_force.cc.o.d"
  "CMakeFiles/fra_baseline.dir/centralized.cc.o"
  "CMakeFiles/fra_baseline.dir/centralized.cc.o.d"
  "libfra_baseline.a"
  "libfra_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
