
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/brute_force.cc" "src/baseline/CMakeFiles/fra_baseline.dir/brute_force.cc.o" "gcc" "src/baseline/CMakeFiles/fra_baseline.dir/brute_force.cc.o.d"
  "/root/repo/src/baseline/centralized.cc" "src/baseline/CMakeFiles/fra_baseline.dir/centralized.cc.o" "gcc" "src/baseline/CMakeFiles/fra_baseline.dir/centralized.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notrace/src/index/CMakeFiles/fra_index.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/agg/CMakeFiles/fra_agg.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/geo/CMakeFiles/fra_geo.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/util/CMakeFiles/fra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
