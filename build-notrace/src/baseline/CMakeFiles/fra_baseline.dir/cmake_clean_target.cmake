file(REMOVE_RECURSE
  "libfra_baseline.a"
)
