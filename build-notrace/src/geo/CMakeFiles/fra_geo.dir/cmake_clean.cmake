file(REMOVE_RECURSE
  "CMakeFiles/fra_geo.dir/projection.cc.o"
  "CMakeFiles/fra_geo.dir/projection.cc.o.d"
  "CMakeFiles/fra_geo.dir/range.cc.o"
  "CMakeFiles/fra_geo.dir/range.cc.o.d"
  "libfra_geo.a"
  "libfra_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
