# Empty dependencies file for fra_geo.
# This may be replaced when dependencies are built.
