file(REMOVE_RECURSE
  "libfra_geo.a"
)
