# Empty dependencies file for fra_agg.
# This may be replaced when dependencies are built.
