file(REMOVE_RECURSE
  "CMakeFiles/fra_agg.dir/aggregate.cc.o"
  "CMakeFiles/fra_agg.dir/aggregate.cc.o.d"
  "libfra_agg.a"
  "libfra_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
