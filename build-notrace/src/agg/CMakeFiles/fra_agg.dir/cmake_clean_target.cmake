file(REMOVE_RECURSE
  "libfra_agg.a"
)
