# CMake generated Testfile for 
# Source directory: /root/repo/src/agg
# Build directory: /root/repo/build-notrace/src/agg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
