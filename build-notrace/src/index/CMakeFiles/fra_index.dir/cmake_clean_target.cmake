file(REMOVE_RECURSE
  "libfra_index.a"
)
