file(REMOVE_RECURSE
  "CMakeFiles/fra_index.dir/equi_depth_histogram.cc.o"
  "CMakeFiles/fra_index.dir/equi_depth_histogram.cc.o.d"
  "CMakeFiles/fra_index.dir/grid_index.cc.o"
  "CMakeFiles/fra_index.dir/grid_index.cc.o.d"
  "CMakeFiles/fra_index.dir/rtree.cc.o"
  "CMakeFiles/fra_index.dir/rtree.cc.o.d"
  "libfra_index.a"
  "libfra_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
