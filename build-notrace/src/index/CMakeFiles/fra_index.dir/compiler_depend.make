# Empty compiler generated dependencies file for fra_index.
# This may be replaced when dependencies are built.
