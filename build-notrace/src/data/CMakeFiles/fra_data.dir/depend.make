# Empty dependencies file for fra_data.
# This may be replaced when dependencies are built.
