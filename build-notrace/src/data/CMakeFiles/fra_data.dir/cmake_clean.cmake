file(REMOVE_RECURSE
  "CMakeFiles/fra_data.dir/csv.cc.o"
  "CMakeFiles/fra_data.dir/csv.cc.o.d"
  "CMakeFiles/fra_data.dir/generator.cc.o"
  "CMakeFiles/fra_data.dir/generator.cc.o.d"
  "libfra_data.a"
  "libfra_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
