file(REMOVE_RECURSE
  "libfra_data.a"
)
