# Empty dependencies file for fra_util.
# This may be replaced when dependencies are built.
