file(REMOVE_RECURSE
  "CMakeFiles/fra_util.dir/metrics.cc.o"
  "CMakeFiles/fra_util.dir/metrics.cc.o.d"
  "CMakeFiles/fra_util.dir/random.cc.o"
  "CMakeFiles/fra_util.dir/random.cc.o.d"
  "CMakeFiles/fra_util.dir/stats.cc.o"
  "CMakeFiles/fra_util.dir/stats.cc.o.d"
  "CMakeFiles/fra_util.dir/status.cc.o"
  "CMakeFiles/fra_util.dir/status.cc.o.d"
  "CMakeFiles/fra_util.dir/thread_pool.cc.o"
  "CMakeFiles/fra_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/fra_util.dir/trace.cc.o"
  "CMakeFiles/fra_util.dir/trace.cc.o.d"
  "libfra_util.a"
  "libfra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
