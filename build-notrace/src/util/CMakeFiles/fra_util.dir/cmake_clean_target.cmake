file(REMOVE_RECURSE
  "libfra_util.a"
)
