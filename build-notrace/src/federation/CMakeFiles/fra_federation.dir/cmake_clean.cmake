file(REMOVE_RECURSE
  "CMakeFiles/fra_federation.dir/federation.cc.o"
  "CMakeFiles/fra_federation.dir/federation.cc.o.d"
  "CMakeFiles/fra_federation.dir/privacy.cc.o"
  "CMakeFiles/fra_federation.dir/privacy.cc.o.d"
  "CMakeFiles/fra_federation.dir/query.cc.o"
  "CMakeFiles/fra_federation.dir/query.cc.o.d"
  "CMakeFiles/fra_federation.dir/service_provider.cc.o"
  "CMakeFiles/fra_federation.dir/service_provider.cc.o.d"
  "CMakeFiles/fra_federation.dir/silo.cc.o"
  "CMakeFiles/fra_federation.dir/silo.cc.o.d"
  "libfra_federation.a"
  "libfra_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
