# Empty dependencies file for fra_federation.
# This may be replaced when dependencies are built.
