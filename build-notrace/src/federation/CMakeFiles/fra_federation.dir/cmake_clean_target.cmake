file(REMOVE_RECURSE
  "libfra_federation.a"
)
