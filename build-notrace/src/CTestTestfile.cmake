# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-notrace/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geo")
subdirs("agg")
subdirs("index")
subdirs("core")
subdirs("net")
subdirs("federation")
subdirs("baseline")
subdirs("data")
subdirs("eval")
