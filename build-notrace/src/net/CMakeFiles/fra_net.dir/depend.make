# Empty dependencies file for fra_net.
# This may be replaced when dependencies are built.
