file(REMOVE_RECURSE
  "CMakeFiles/fra_net.dir/message.cc.o"
  "CMakeFiles/fra_net.dir/message.cc.o.d"
  "CMakeFiles/fra_net.dir/network.cc.o"
  "CMakeFiles/fra_net.dir/network.cc.o.d"
  "CMakeFiles/fra_net.dir/tcp_network.cc.o"
  "CMakeFiles/fra_net.dir/tcp_network.cc.o.d"
  "libfra_net.a"
  "libfra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
