file(REMOVE_RECURSE
  "libfra_net.a"
)
