# Empty dependencies file for fra_core.
# This may be replaced when dependencies are built.
