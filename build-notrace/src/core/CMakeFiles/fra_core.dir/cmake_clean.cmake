file(REMOVE_RECURSE
  "CMakeFiles/fra_core.dir/lsr_forest.cc.o"
  "CMakeFiles/fra_core.dir/lsr_forest.cc.o.d"
  "libfra_core.a"
  "libfra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
