file(REMOVE_RECURSE
  "libfra_core.a"
)
