file(REMOVE_RECURSE
  "libfra_eval.a"
)
