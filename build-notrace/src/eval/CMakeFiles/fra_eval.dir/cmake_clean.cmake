file(REMOVE_RECURSE
  "CMakeFiles/fra_eval.dir/experiment.cc.o"
  "CMakeFiles/fra_eval.dir/experiment.cc.o.d"
  "CMakeFiles/fra_eval.dir/metrics.cc.o"
  "CMakeFiles/fra_eval.dir/metrics.cc.o.d"
  "CMakeFiles/fra_eval.dir/report.cc.o"
  "CMakeFiles/fra_eval.dir/report.cc.o.d"
  "CMakeFiles/fra_eval.dir/workload.cc.o"
  "CMakeFiles/fra_eval.dir/workload.cc.o.d"
  "libfra_eval.a"
  "libfra_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fra_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
