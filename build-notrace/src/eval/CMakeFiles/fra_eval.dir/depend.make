# Empty dependencies file for fra_eval.
# This may be replaced when dependencies are built.
