file(REMOVE_RECURSE
  "CMakeFiles/tcp_network_test.dir/tcp_network_test.cc.o"
  "CMakeFiles/tcp_network_test.dir/tcp_network_test.cc.o.d"
  "tcp_network_test"
  "tcp_network_test.pdb"
  "tcp_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
