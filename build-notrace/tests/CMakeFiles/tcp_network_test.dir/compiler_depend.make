# Empty compiler generated dependencies file for tcp_network_test.
# This may be replaced when dependencies are built.
