file(REMOVE_RECURSE
  "CMakeFiles/message_fuzz_test.dir/message_fuzz_test.cc.o"
  "CMakeFiles/message_fuzz_test.dir/message_fuzz_test.cc.o.d"
  "message_fuzz_test"
  "message_fuzz_test.pdb"
  "message_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
