# Empty compiler generated dependencies file for message_fuzz_test.
# This may be replaced when dependencies are built.
