
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/concurrency_test.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/concurrency_test.dir/concurrency_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notrace/src/eval/CMakeFiles/fra_eval.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/federation/CMakeFiles/fra_federation.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/core/CMakeFiles/fra_core.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/net/CMakeFiles/fra_net.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/baseline/CMakeFiles/fra_baseline.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/index/CMakeFiles/fra_index.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/data/CMakeFiles/fra_data.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/agg/CMakeFiles/fra_agg.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/geo/CMakeFiles/fra_geo.dir/DependInfo.cmake"
  "/root/repo/build-notrace/src/util/CMakeFiles/fra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
