file(REMOVE_RECURSE
  "CMakeFiles/grid_index_test.dir/grid_index_test.cc.o"
  "CMakeFiles/grid_index_test.dir/grid_index_test.cc.o.d"
  "grid_index_test"
  "grid_index_test.pdb"
  "grid_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
