file(REMOVE_RECURSE
  "CMakeFiles/lsr_forest_test.dir/lsr_forest_test.cc.o"
  "CMakeFiles/lsr_forest_test.dir/lsr_forest_test.cc.o.d"
  "lsr_forest_test"
  "lsr_forest_test.pdb"
  "lsr_forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
