# Empty compiler generated dependencies file for lsr_forest_test.
# This may be replaced when dependencies are built.
