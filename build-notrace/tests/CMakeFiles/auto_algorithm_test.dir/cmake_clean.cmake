file(REMOVE_RECURSE
  "CMakeFiles/auto_algorithm_test.dir/auto_algorithm_test.cc.o"
  "CMakeFiles/auto_algorithm_test.dir/auto_algorithm_test.cc.o.d"
  "auto_algorithm_test"
  "auto_algorithm_test.pdb"
  "auto_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
