# Empty compiler generated dependencies file for auto_algorithm_test.
# This may be replaced when dependencies are built.
