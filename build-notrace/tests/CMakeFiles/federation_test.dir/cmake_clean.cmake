file(REMOVE_RECURSE
  "CMakeFiles/federation_test.dir/federation_test.cc.o"
  "CMakeFiles/federation_test.dir/federation_test.cc.o.d"
  "federation_test"
  "federation_test.pdb"
  "federation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
