# Empty dependencies file for federation_test.
# This may be replaced when dependencies are built.
