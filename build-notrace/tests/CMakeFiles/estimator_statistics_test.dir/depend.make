# Empty dependencies file for estimator_statistics_test.
# This may be replaced when dependencies are built.
