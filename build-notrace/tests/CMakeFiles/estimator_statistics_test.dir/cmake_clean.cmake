file(REMOVE_RECURSE
  "CMakeFiles/estimator_statistics_test.dir/estimator_statistics_test.cc.o"
  "CMakeFiles/estimator_statistics_test.dir/estimator_statistics_test.cc.o.d"
  "estimator_statistics_test"
  "estimator_statistics_test.pdb"
  "estimator_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
