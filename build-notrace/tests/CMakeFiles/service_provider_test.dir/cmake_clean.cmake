file(REMOVE_RECURSE
  "CMakeFiles/service_provider_test.dir/service_provider_test.cc.o"
  "CMakeFiles/service_provider_test.dir/service_provider_test.cc.o.d"
  "service_provider_test"
  "service_provider_test.pdb"
  "service_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
