# Empty dependencies file for service_provider_test.
# This may be replaced when dependencies are built.
