file(REMOVE_RECURSE
  "CMakeFiles/dynamic_update_test.dir/dynamic_update_test.cc.o"
  "CMakeFiles/dynamic_update_test.dir/dynamic_update_test.cc.o.d"
  "dynamic_update_test"
  "dynamic_update_test.pdb"
  "dynamic_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
