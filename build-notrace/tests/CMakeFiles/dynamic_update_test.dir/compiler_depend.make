# Empty compiler generated dependencies file for dynamic_update_test.
# This may be replaced when dependencies are built.
