# Empty compiler generated dependencies file for silo_test.
# This may be replaced when dependencies are built.
