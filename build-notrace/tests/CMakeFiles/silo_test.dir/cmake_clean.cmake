file(REMOVE_RECURSE
  "CMakeFiles/silo_test.dir/silo_test.cc.o"
  "CMakeFiles/silo_test.dir/silo_test.cc.o.d"
  "silo_test"
  "silo_test.pdb"
  "silo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
