# Empty dependencies file for index_adversarial_test.
# This may be replaced when dependencies are built.
