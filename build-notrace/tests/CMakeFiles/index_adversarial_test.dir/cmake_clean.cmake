file(REMOVE_RECURSE
  "CMakeFiles/index_adversarial_test.dir/index_adversarial_test.cc.o"
  "CMakeFiles/index_adversarial_test.dir/index_adversarial_test.cc.o.d"
  "index_adversarial_test"
  "index_adversarial_test.pdb"
  "index_adversarial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
