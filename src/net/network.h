#ifndef FRA_NET_NETWORK_H_
#define FRA_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace fra {

/// Aggregate communication counters for a federation. All methods are
/// thread safe; the evaluation layer snapshots before/after a query batch
/// and reports deltas — this is the paper's "communication cost" metric,
/// measured in real encoded bytes and message count.
///
/// CommStats predates the MetricsRegistry and is kept as a per-network
/// shim over it: every exchange is mirrored into the registry's global
/// `fra_comm_messages_total` / `fra_comm_bytes_total{direction=...}`
/// counters (cumulative across all networks in the process, never
/// affected by Reset()), while the per-instance atomics keep supporting
/// the snapshot/delta reads the evaluation layer depends on.
class CommStats {
 public:
  struct Snapshot {
    uint64_t messages = 0;       // request/response pairs
    uint64_t bytes_to_silos = 0;
    uint64_t bytes_to_provider = 0;

    uint64_t TotalBytes() const { return bytes_to_silos + bytes_to_provider; }

    Snapshot operator-(const Snapshot& other) const {
      return Snapshot{messages - other.messages,
                      bytes_to_silos - other.bytes_to_silos,
                      bytes_to_provider - other.bytes_to_provider};
    }
  };

  CommStats()
      : messages_total_(&MetricsRegistry::Default().GetCounter(
            "fra_comm_messages_total")),
        bytes_to_silos_total_(&MetricsRegistry::Default().GetCounter(
            "fra_comm_bytes_total", {{"direction", "to_silos"}})),
        bytes_to_provider_total_(&MetricsRegistry::Default().GetCounter(
            "fra_comm_bytes_total", {{"direction", "to_provider"}})) {}

  void RecordExchange(size_t request_bytes, size_t response_bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_to_silos_.fetch_add(request_bytes, std::memory_order_relaxed);
    bytes_to_provider_.fetch_add(response_bytes, std::memory_order_relaxed);
    messages_total_->Increment();
    bytes_to_silos_total_->Increment(request_bytes);
    bytes_to_provider_total_->Increment(response_bytes);
  }

  Snapshot Read() const {
    return Snapshot{messages_.load(std::memory_order_relaxed),
                    bytes_to_silos_.load(std::memory_order_relaxed),
                    bytes_to_provider_.load(std::memory_order_relaxed)};
  }

  void Reset() {
    messages_.store(0);
    bytes_to_silos_.store(0);
    bytes_to_provider_.store(0);
  }

 private:
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_to_silos_{0};
  std::atomic<uint64_t> bytes_to_provider_{0};
  // Registry mirrors (shared across every CommStats in the process).
  Counter* messages_total_;
  Counter* bytes_to_silos_total_;
  Counter* bytes_to_provider_total_;
};

/// Implemented by data silos: consumes one serialised request, produces
/// one serialised response. Must be safe to call concurrently.
class SiloEndpoint {
 public:
  virtual ~SiloEndpoint() = default;
  virtual Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) = 0;
};

/// The transport the service provider speaks through: one synchronous
/// request/response exchange per Call. Implementations must be safe for
/// concurrent calls (the Alg. 4 framework issues them from a worker per
/// query) and must account every exchange in stats().
///
/// Two implementations ship with the library: InProcessNetwork (below,
/// silos in the same process — the default evaluation substrate) and
/// TcpNetwork (tcp_network.h, silos behind real sockets — the paper's
/// deployment shape).
class Network {
 public:
  virtual ~Network() = default;

  /// One request/response exchange with a silo.
  virtual Result<std::vector<uint8_t>> Call(
      int silo_id, const std::vector<uint8_t>& request) = 0;

  virtual size_t num_silos() const = 0;
  virtual std::vector<int> silo_ids() const = 0;

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

 protected:
  CommStats stats_;
};

/// The federation's transport, simulated in process.
///
/// The paper ran the provider and silos on separate machines over TCP;
/// what its evaluation measures is transferred volume and the parallelism
/// of silo-local work, both of which this substrate reproduces: every
/// call serialises through the message layer (bytes metered by
/// CommStats), silo handlers execute on the caller's thread (the query
/// framework supplies one thread per in-flight query), and an optional
/// latency model charges per-message and per-byte delays.
class InProcessNetwork : public Network {
 public:
  /// Synthetic link delay applied on every exchange (request + response).
  struct LatencyModel {
    double fixed_micros = 0.0;     // per-message round-trip overhead
    double per_kb_micros = 0.0;    // serialisation-volume cost
  };

  InProcessNetwork() : InProcessNetwork(LatencyModel{}) {}
  explicit InProcessNetwork(LatencyModel latency) : latency_(latency) {}

  /// Registers a silo endpoint under `silo_id` (not owned; must outlive
  /// the network). Fails if the id is taken.
  Status RegisterSilo(int silo_id, SiloEndpoint* endpoint);

  /// One request/response exchange with a silo. Accounts bytes both ways
  /// and applies the latency model. Unknown ids yield Unavailable.
  Result<std::vector<uint8_t>> Call(
      int silo_id, const std::vector<uint8_t>& request) override;

  size_t num_silos() const override;
  std::vector<int> silo_ids() const override;

 private:
  LatencyModel latency_;
  mutable std::mutex mu_;  // guards endpoints_ registration/lookup
  std::unordered_map<int, SiloEndpoint*> endpoints_;
};

}  // namespace fra

#endif  // FRA_NET_NETWORK_H_
