#ifndef FRA_NET_NETWORK_H_
#define FRA_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/buffer.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace fra {

class Reactor;

/// Aggregate communication counters for a federation. All methods are
/// thread safe; the evaluation layer snapshots before/after a query batch
/// and reports deltas — this is the paper's "communication cost" metric,
/// measured in real encoded bytes and message count.
///
/// CommStats predates the MetricsRegistry and is kept as a per-network
/// shim over it: every exchange is mirrored into the registry's global
/// `fra_comm_messages_total` / `fra_comm_bytes_total{direction=...}`
/// counters (cumulative across all networks in the process, never
/// affected by Reset()), while the per-instance atomics keep supporting
/// the snapshot/delta reads the evaluation layer depends on.
class CommStats {
 public:
  struct Snapshot {
    uint64_t messages = 0;       // request/response pairs
    uint64_t bytes_to_silos = 0;
    uint64_t bytes_to_provider = 0;

    uint64_t TotalBytes() const { return bytes_to_silos + bytes_to_provider; }

    Snapshot operator-(const Snapshot& other) const {
      return Snapshot{messages - other.messages,
                      bytes_to_silos - other.bytes_to_silos,
                      bytes_to_provider - other.bytes_to_provider};
    }
  };

  CommStats()
      : messages_total_(&MetricsRegistry::Default().GetCounter(
            "fra_comm_messages_total")),
        bytes_to_silos_total_(&MetricsRegistry::Default().GetCounter(
            "fra_comm_bytes_total", {{"direction", "to_silos"}})),
        bytes_to_provider_total_(&MetricsRegistry::Default().GetCounter(
            "fra_comm_bytes_total", {{"direction", "to_provider"}})) {}

  void RecordExchange(size_t request_bytes, size_t response_bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_to_silos_.fetch_add(request_bytes, std::memory_order_relaxed);
    bytes_to_provider_.fetch_add(response_bytes, std::memory_order_relaxed);
    messages_total_->Increment();
    bytes_to_silos_total_->Increment(request_bytes);
    bytes_to_provider_total_->Increment(response_bytes);
  }

  Snapshot Read() const {
    return Snapshot{messages_.load(std::memory_order_relaxed),
                    bytes_to_silos_.load(std::memory_order_relaxed),
                    bytes_to_provider_.load(std::memory_order_relaxed)};
  }

  void Reset() {
    messages_.store(0);
    bytes_to_silos_.store(0);
    bytes_to_provider_.store(0);
  }

 private:
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_to_silos_{0};
  std::atomic<uint64_t> bytes_to_provider_{0};
  // Registry mirrors (shared across every CommStats in the process).
  Counter* messages_total_;
  Counter* bytes_to_silos_total_;
  Counter* bytes_to_provider_total_;
};

/// Implemented by data silos: consumes one serialised request, produces
/// one serialised response. Must be safe to call concurrently.
class SiloEndpoint {
 public:
  virtual ~SiloEndpoint() = default;
  virtual Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) = 0;

  /// Borrowed-view entry point: the request bytes stay owned by the
  /// transport and are only valid for the duration of the call. The
  /// zero-copy transports (in-process, the reactor TCP server) dispatch
  /// through this; the default bridges to HandleMessage with one copy,
  /// so existing endpoints keep working unchanged. Implementations that
  /// decode in place (Silo) override it and make HandleMessage the
  /// delegating shim instead.
  virtual Result<std::vector<uint8_t>> HandleMessageView(
      ConstByteSpan request) {
    return HandleMessage(request.ToVector());
  }
};

/// Observes the outcome of every Network::Call — the hook the
/// federation's SiloHealthTracker hangs off so per-silo availability is
/// tracked at the provider/network boundary, identically for every
/// transport. Implementations must be thread safe (calls arrive from
/// every query worker concurrently).
class SiloCallObserver {
 public:
  virtual ~SiloCallObserver() = default;

  /// One completed exchange with `silo_id`: its final Status (OK on
  /// success; Unavailable covers timeouts, refused connections and hung
  /// silos) and the wall-clock duration of the whole Call in
  /// microseconds.
  virtual void OnSiloCall(int silo_id, const Status& status,
                          double micros) = 0;
};

/// The transport the service provider speaks through: one synchronous
/// request/response exchange per Call. Implementations must be safe for
/// concurrent calls (the Alg. 4 framework issues them from a worker per
/// query) and must account every exchange in stats().
///
/// Call itself is the transport-agnostic boundary: it times the exchange,
/// maintains the per-silo `fra_silo_requests_total` /
/// `fra_silo_timeouts_total` registry counters (labelled by transport),
/// and notifies the installed SiloCallObserver — transports implement
/// CallImpl only, so failure accounting can never diverge between the
/// in-process and TCP substrates.
///
/// Two implementations ship with the library: InProcessNetwork (below,
/// silos in the same process — the default evaluation substrate) and
/// TcpNetwork (tcp_network.h, silos behind real sockets — the paper's
/// deployment shape).
class Network {
 public:
  /// Completion of one asynchronous exchange. Reactor transports invoke
  /// it on an event-loop thread — callbacks must be quick and must never
  /// block on another Call through the same network.
  using CallCallback = std::function<void(Result<std::vector<uint8_t>>)>;

  virtual ~Network() = default;

  /// One request/response exchange with a silo: delegates to the
  /// transport's CallImpl, then records the outcome (counters + observer).
  Result<std::vector<uint8_t>> Call(int silo_id,
                                    const std::vector<uint8_t>& request);

  /// The non-blocking variant: `done` fires exactly once with the
  /// outcome, and the per-silo counters/observer are recorded in front of
  /// it — identically to Call, which is implemented over the same
  /// accounting. Transports without a native async path (in-process, the
  /// legacy pooled TCP mode) run the exchange synchronously on the
  /// calling thread before returning.
  void CallAsync(int silo_id, const std::vector<uint8_t>& request,
                 CallCallback done);

  /// Scatter-gather variant of CallAsync: the request payload is the
  /// concatenation of `chunks`, which the transport may ship as an iovec
  /// list without ever materialising the joined buffer (the reactor TCP
  /// client queues one frame-writer chunk per ref). Outcome accounting is
  /// identical to CallAsync. Transports without a scatter path fall back
  /// to concatenating once and calling their CallAsyncImpl.
  void CallAsyncChunks(int silo_id, std::vector<BufferRef> chunks,
                       CallCallback done);

  /// The event-loop substrate driving this transport's async calls, or
  /// nullptr for purely synchronous transports. The RequestCoalescer
  /// uses it to flush deadline-triggered batches from the reactor
  /// instead of a dedicated flusher thread per silo.
  virtual Reactor* reactor() { return nullptr; }

  /// Stable transport label for per-silo metrics ("inprocess", "tcp").
  virtual const char* transport_name() const = 0;

  virtual size_t num_silos() const = 0;
  virtual std::vector<int> silo_ids() const = 0;

  /// Installs (or clears, with nullptr) the observer notified after every
  /// Call. At most one observer at a time; the caller must keep it alive
  /// until it is cleared or the network is destroyed.
  void set_call_observer(SiloCallObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }
  SiloCallObserver* call_observer() const {
    return observer_.load(std::memory_order_acquire);
  }

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

 protected:
  /// The transport-specific exchange; implementations account bytes in
  /// stats() but leave per-silo outcome recording to Call.
  virtual Result<std::vector<uint8_t>> CallImpl(
      int silo_id, const std::vector<uint8_t>& request) = 0;

  /// The transport-specific async exchange; the default degrades to the
  /// synchronous CallImpl on the calling thread. Implementations must
  /// invoke `done` exactly once and leave outcome recording to CallAsync.
  virtual void CallAsyncImpl(int silo_id, const std::vector<uint8_t>& request,
                             CallCallback done);

  /// The transport-specific scatter-gather exchange; `chunks` concatenated
  /// in order form the complete request payload. The default joins them
  /// into one pooled buffer and degrades to CallAsyncImpl.
  virtual void CallAsyncChunksImpl(int silo_id, std::vector<BufferRef> chunks,
                                   CallCallback done);

  CommStats stats_;

 private:
  // Per-silo registry counters, resolved once so the per-call cost is one
  // small map lookup under a short lock plus lock-free increments.
  struct SiloInstruments {
    Counter* requests_total;
    Counter* timeouts_total;
  };
  SiloInstruments InstrumentsFor(int silo_id);
  /// The transport-agnostic accounting shared by Call and CallAsync.
  void RecordOutcome(int silo_id, const Status& status, double micros);
  /// Strips the tolerant trailing span section (net/message.h) off a
  /// successful response and feeds the records to the process Tracer
  /// tagged `silo=<id>` — the stitch point of cross-silo tracing, shared
  /// by every transport and both call shapes. Runs before the payload
  /// reaches any message decoder.
  void IngestResponseSpans(int silo_id, std::vector<uint8_t>* response);

  std::atomic<SiloCallObserver*> observer_{nullptr};
  std::mutex instruments_mu_;
  std::unordered_map<int, SiloInstruments> instruments_;
};

/// The federation's transport, simulated in process.
///
/// The paper ran the provider and silos on separate machines over TCP;
/// what its evaluation measures is transferred volume and the parallelism
/// of silo-local work, both of which this substrate reproduces: every
/// call serialises through the message layer (bytes metered by
/// CommStats), silo handlers execute on the caller's thread (the query
/// framework supplies one thread per in-flight query), and an optional
/// latency model charges per-message and per-byte delays.
class InProcessNetwork : public Network {
 public:
  /// Synthetic link delay applied on every exchange (request + response).
  struct LatencyModel {
    double fixed_micros = 0.0;     // per-message round-trip overhead
    double per_kb_micros = 0.0;    // serialisation-volume cost
  };

  InProcessNetwork() : InProcessNetwork(LatencyModel{}) {}
  explicit InProcessNetwork(LatencyModel latency) : latency_(latency) {}

  /// Registers a silo endpoint under `silo_id` (not owned; must outlive
  /// the network). Fails if the id is taken.
  Status RegisterSilo(int silo_id, SiloEndpoint* endpoint);

  const char* transport_name() const override { return "inprocess"; }
  size_t num_silos() const override;
  std::vector<int> silo_ids() const override;

 protected:
  /// One request/response exchange with a silo. Accounts bytes both ways
  /// and applies the latency model. Unknown ids yield Unavailable.
  Result<std::vector<uint8_t>> CallImpl(
      int silo_id, const std::vector<uint8_t>& request) override;

 private:
  LatencyModel latency_;
  mutable std::mutex mu_;  // guards endpoints_ registration/lookup
  std::unordered_map<int, SiloEndpoint*> endpoints_;
};

}  // namespace fra

#endif  // FRA_NET_NETWORK_H_
