#ifndef FRA_NET_REQUEST_COALESCER_H_
#define FRA_NET_REQUEST_COALESCER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "util/query_cost.h"
#include "util/result.h"

namespace fra {

class Counter;
class EventLoop;
class Gauge;
class Histogram;

/// Dynamic micro-batching of the multi-query wire path.
///
/// Under Alg. 4 the provider keeps |Q|/m queries in flight per silo, and
/// at high throughput the hot path is dominated by per-request fixed
/// costs — wire framing, send/recv syscalls, connection-pool contention —
/// not by aggregation. The coalescer amortises that fixed cost: callers
/// stage their encoded silo request into a per-silo buffer and wait for
/// completion (a future in Call, a callback in CallAsync); everything
/// staged for one silo is packed into a single kAggregateBatchRequest
/// frame and shipped in one exchange when either trigger fires:
///
///   * size    — the buffer reached max_batch_size (the staging caller
///               ships the batch, so several batches to one silo can be
///               in flight concurrently),
///   * deadline — the oldest staged request has waited max_batch_delay_us
///               (bounding the latency a lone query pays for batching),
///   * shutdown — destruction flushes whatever is still staged.
///
/// The deadline trigger runs on one of two substrates:
///
///   * reactor — when the wrapped network exposes a Reactor (TcpNetwork's
///     default mode), the deadline is a timer-wheel entry on one of its
///     event loops and batches ship through Network::CallAsync; the
///     coalescer owns no threads at all.
///   * thread  — otherwise (in-process network, legacy TCP pool) a
///     per-silo flusher thread arms the deadline, exactly as before.
///
/// The response frame's entries are scattered positionally back to the
/// waiting callers. Per-entry failures arrive as embedded error-response
/// entries, so one bad sub-query cannot poison its batch; a failure of
/// the batch exchange itself (hung silo, decode error) fails every staged
/// request with the same Status — the underlying Network deadline
/// therefore bounds how long any batched query can hang.
///
/// Observable state (docs/observability.md): fra_batch_flushes_total
/// {reason=size|deadline|shutdown}, the fra_batch_size histogram, and the
/// fra_coalescer_staged_requests gauge.
///
/// Thread safe. The wrapped network must outlive the coalescer; callers
/// must not race destruction with in-flight Call()s/CallAsync()s. The
/// blocking Call must not be invoked from one of the reactor's loop
/// threads (it would deadlock waiting for that loop); CallAsync is safe
/// anywhere.
class RequestCoalescer {
 public:
  using CallCallback = Network::CallCallback;

  struct Options {
    /// Flush as soon as this many requests are staged for one silo.
    /// 1 still exercises the batch wire path (one entry per frame).
    size_t max_batch_size = 16;
    /// Flush when the oldest staged request has waited this long, so a
    /// lone query is delayed at most this much. <= 0 flushes eagerly.
    /// On the reactor substrate the wheel's 1 ms tick rounds the delay
    /// up to the next millisecond.
    int max_batch_delay_us = 200;
  };

  RequestCoalescer(Network* network, const Options& options);

  RequestCoalescer(const RequestCoalescer&) = delete;
  RequestCoalescer& operator=(const RequestCoalescer&) = delete;

  /// Flushes every staged request (reason=shutdown); joins the per-silo
  /// flusher threads (thread substrate) or cancels the armed deadline
  /// timers (reactor substrate).
  ~RequestCoalescer();

  /// Stages `request` for `silo_id` and blocks until its response entry
  /// (or the batch's failure Status) arrives. The payload returned is
  /// exactly what an un-coalesced Network::Call would have produced.
  Result<std::vector<uint8_t>> Call(int silo_id,
                                    const std::vector<uint8_t>& request);

  /// The non-blocking variant: stages `request` and returns; `done`
  /// fires exactly once with the response entry or the batch's failure.
  /// On the reactor substrate `done` runs on an event-loop thread — it
  /// must be quick and must never block on another exchange through the
  /// same network.
  void CallAsync(int silo_id, const std::vector<uint8_t>& request,
                 CallCallback done);

  const Options& options() const { return options_; }

 private:
  struct Pending {
    /// The staged batch-frame segment, pre-encoded at staging time:
    /// `u32 entry_len ‖ [trace envelope] ‖ request bytes` in one pooled
    /// buffer. A flush concatenates nothing — the header chunk plus
    /// these per-entry chunks go to the transport as a scatter-gather
    /// list (Network::CallAsyncChunks).
    BufferRef entry;
    CallCallback done;
    /// The staging query's cost tracker (or null), captured on the
    /// staging thread: the flush charges this entry's staged time as
    /// queue-wait. Valid until `done` fires — the blocking Call holds
    /// its caller (and the caller's tracker) until then, and CallAsync
    /// callers keep their tracker alive until completion by contract.
    QueryCostTracker* cost = nullptr;
    std::chrono::steady_clock::time_point staged_at;
  };
  struct SiloQueue {
    std::mutex mu;  // guards staged/oldest_at/stopping/timer_*
    std::condition_variable wake;
    std::vector<std::unique_ptr<Pending>> staged;
    std::chrono::steady_clock::time_point oldest_at;
    bool stopping = false;
    std::thread flusher;  // thread substrate only

    // Reactor substrate: the loop owning this silo's deadline timer.
    EventLoop* loop = nullptr;
    bool timer_armed = false;
    uint64_t timer_id = 0;  // 0 while the arming task is still queued
  };

  SiloQueue* QueueFor(int silo_id);
  /// The shared staging path behind Call and CallAsync.
  void Stage(int silo_id, const std::vector<uint8_t>& request,
             CallCallback done);
  void FlusherLoop(int silo_id, SiloQueue* queue);  // thread substrate
  /// Reactor substrate: schedules the deadline timer on the queue's loop.
  void ArmDeadline(int silo_id, SiloQueue* queue);
  /// Reactor substrate, loop thread: fires the deadline flush, or
  /// re-arms when a size flush already took the batch the timer was
  /// armed for.
  void OnDeadline(int silo_id, SiloQueue* queue);
  /// Ships one batch via Network::CallAsync and scatters the response
  /// entries (or the failure) to every staged caller. The completion is
  /// self-contained — it captures no coalescer state — so an in-flight
  /// batch cannot race destruction.
  void SendBatch(int silo_id, std::vector<std::unique_ptr<Pending>> batch,
                 const char* reason);

  Network* const network_;
  const Options options_;
  const bool use_reactor_;  // network_->reactor() != nullptr at ctor time

  std::mutex mu_;  // guards queues_ map structure
  std::unordered_map<int, std::unique_ptr<SiloQueue>> queues_;

  // Registry instruments, resolved once.
  Counter* flushes_size_;
  Counter* flushes_deadline_;
  Counter* flushes_shutdown_;
  Histogram* batch_size_;
  Gauge* staged_gauge_;
};

}  // namespace fra

#endif  // FRA_NET_REQUEST_COALESCER_H_
