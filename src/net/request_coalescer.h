#ifndef FRA_NET_REQUEST_COALESCER_H_
#define FRA_NET_REQUEST_COALESCER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "util/result.h"

namespace fra {

class Counter;
class Gauge;
class Histogram;

/// Dynamic micro-batching of the multi-query wire path.
///
/// Under Alg. 4 the provider keeps |Q|/m queries in flight per silo, and
/// at high throughput the hot path is dominated by per-request fixed
/// costs — wire framing, send/recv syscalls, connection-pool contention —
/// not by aggregation. The coalescer amortises that fixed cost: callers
/// stage their encoded silo request into a per-silo buffer and block on a
/// completion future; everything staged for one silo is packed into a
/// single kAggregateBatchRequest frame and shipped over one pooled
/// connection when either trigger fires:
///
///   * size    — the buffer reached max_batch_size (the staging caller
///               sends the batch itself, so several batches to one silo
///               can be in flight concurrently),
///   * deadline — the oldest staged request has waited max_batch_delay_us
///               (a per-silo flusher thread sends, bounding the latency a
///               lone query pays for batching),
///   * shutdown — destruction flushes whatever is still staged.
///
/// The response frame's entries are scattered positionally back to the
/// waiting callers. Per-entry failures arrive as embedded error-response
/// entries, so one bad sub-query cannot poison its batch; a failure of
/// the batch exchange itself (hung silo, decode error) fails every staged
/// request with the same Status — the underlying Network::Call deadline
/// therefore bounds how long any batched query can hang.
///
/// Observable state (docs/observability.md): fra_batch_flushes_total
/// {reason=size|deadline|shutdown}, the fra_batch_size histogram, and the
/// fra_coalescer_staged_requests gauge.
///
/// Thread safe. The wrapped network must outlive the coalescer; callers
/// must not race destruction with in-flight Call()s.
class RequestCoalescer {
 public:
  struct Options {
    /// Flush as soon as this many requests are staged for one silo.
    /// 1 still exercises the batch wire path (one entry per frame).
    size_t max_batch_size = 16;
    /// Flush when the oldest staged request has waited this long, so a
    /// lone query is delayed at most this much. <= 0 flushes eagerly.
    int max_batch_delay_us = 200;
  };

  RequestCoalescer(Network* network, const Options& options);

  RequestCoalescer(const RequestCoalescer&) = delete;
  RequestCoalescer& operator=(const RequestCoalescer&) = delete;

  /// Flushes every staged request (reason=shutdown) and joins the
  /// per-silo flusher threads.
  ~RequestCoalescer();

  /// Stages `request` for `silo_id` and blocks until its response entry
  /// (or the batch's failure Status) arrives. The payload returned is
  /// exactly what an un-coalesced Network::Call would have produced.
  Result<std::vector<uint8_t>> Call(int silo_id,
                                    const std::vector<uint8_t>& request);

  const Options& options() const { return options_; }

 private:
  struct Pending {
    std::vector<uint8_t> request;
    std::promise<Result<std::vector<uint8_t>>> promise;
  };
  struct SiloQueue {
    std::mutex mu;
    std::condition_variable wake;
    std::vector<std::unique_ptr<Pending>> staged;
    std::chrono::steady_clock::time_point oldest_at;
    bool stopping = false;
    std::thread flusher;
  };

  SiloQueue* QueueFor(int silo_id);
  void FlusherLoop(int silo_id, SiloQueue* queue);
  /// Ships one batch and scatters the response entries (or the failure)
  /// to every staged promise. Runs on the triggering caller (size), the
  /// silo's flusher thread (deadline), or the destructor (shutdown).
  void SendBatch(int silo_id, std::vector<std::unique_ptr<Pending>> batch,
                 const char* reason);

  Network* const network_;
  const Options options_;

  std::mutex mu_;  // guards queues_ map structure
  std::unordered_map<int, std::unique_ptr<SiloQueue>> queues_;

  // Registry instruments, resolved once.
  Counter* flushes_size_;
  Counter* flushes_deadline_;
  Counter* flushes_shutdown_;
  Histogram* batch_size_;
  Gauge* staged_gauge_;
};

}  // namespace fra

#endif  // FRA_NET_REQUEST_COALESCER_H_
