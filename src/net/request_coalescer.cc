#include "net/request_coalescer.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "net/message.h"
#include "net/reactor.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace fra {
namespace {

// Batch-size distribution buckets: powers of two up to well past any
// sensible max_batch_size.
const std::vector<double>& BatchSizeBuckets() {
  static const std::vector<double> kBuckets = {1,  2,  4,   8,   16,
                                               32, 64, 128, 256, 512};
  return kBuckets;
}

}  // namespace

RequestCoalescer::RequestCoalescer(Network* network, const Options& options)
    : network_(network),
      options_(options),
      use_reactor_(network->reactor() != nullptr) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  flushes_size_ =
      &registry.GetCounter("fra_batch_flushes_total", {{"reason", "size"}});
  flushes_deadline_ = &registry.GetCounter("fra_batch_flushes_total",
                                           {{"reason", "deadline"}});
  flushes_shutdown_ = &registry.GetCounter("fra_batch_flushes_total",
                                           {{"reason", "shutdown"}});
  batch_size_ =
      &registry.GetHistogram("fra_batch_size", {}, BatchSizeBuckets());
  staged_gauge_ = &registry.GetGauge("fra_coalescer_staged_requests");
}

RequestCoalescer::~RequestCoalescer() {
  std::vector<std::pair<int, SiloQueue*>> queues;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues.reserve(queues_.size());
    for (auto& [id, queue] : queues_) queues.emplace_back(id, queue.get());
  }
  if (use_reactor_) {
    // Disarm every pending deadline timer on its loop (SubmitAndWait
    // also serialises after any still-queued arming task), then ship
    // what is still staged so every caller gets an answer. The shutdown
    // batch's completion captures no coalescer state, so it may safely
    // land after this destructor returns.
    for (auto& [silo_id, queue] : queues) {
      {
        std::lock_guard<std::mutex> lock(queue->mu);
        queue->stopping = true;
      }
      if (queue->loop != nullptr) {
        queue->loop->SubmitAndWait([queue] {
          std::lock_guard<std::mutex> lock(queue->mu);
          if (queue->timer_armed) {
            queue->timer_armed = false;
            if (queue->timer_id != 0) {
              queue->loop->CancelTimer(queue->timer_id);
              queue->timer_id = 0;
            }
          }
        });
      }
      std::vector<std::unique_ptr<Pending>> batch;
      {
        std::lock_guard<std::mutex> lock(queue->mu);
        batch.swap(queue->staged);
      }
      if (!batch.empty()) SendBatch(silo_id, std::move(batch), "shutdown");
    }
    return;
  }
  // Thread substrate: stop every flusher; each drains its queue
  // (reason=shutdown) on exit, so no staged caller is left waiting.
  for (auto& [silo_id, queue] : queues) {
    {
      std::lock_guard<std::mutex> lock(queue->mu);
      queue->stopping = true;
    }
    queue->wake.notify_all();
  }
  for (auto& [silo_id, queue] : queues) {
    if (queue->flusher.joinable()) queue->flusher.join();
  }
}

RequestCoalescer::SiloQueue* RequestCoalescer::QueueFor(int silo_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(silo_id);
  if (it == queues_.end()) {
    it = queues_.emplace(silo_id, std::make_unique<SiloQueue>()).first;
    SiloQueue* queue = it->second.get();
    if (use_reactor_) {
      queue->loop = network_->reactor()->NextLoop();
    } else {
      queue->flusher =
          std::thread([this, silo_id, queue] { FlusherLoop(silo_id, queue); });
    }
  }
  return it->second.get();
}

Result<std::vector<uint8_t>> RequestCoalescer::Call(
    int silo_id, const std::vector<uint8_t>& request) {
  FRA_TRACE_SPAN("net.coalesce.call");
  auto promise =
      std::make_shared<std::promise<Result<std::vector<uint8_t>>>>();
  std::future<Result<std::vector<uint8_t>>> future = promise->get_future();
  Stage(silo_id, request, [promise](Result<std::vector<uint8_t>> response) {
    promise->set_value(std::move(response));
  });
  return future.get();
}

void RequestCoalescer::CallAsync(int silo_id,
                                 const std::vector<uint8_t>& request,
                                 CallCallback done) {
  Stage(silo_id, request, std::move(done));
}

void RequestCoalescer::Stage(int silo_id, const std::vector<uint8_t>& request,
                             CallCallback done) {
  SiloQueue* queue = QueueFor(silo_id);
  auto pending = std::make_unique<Pending>();
  // A batch mixes entries staged by different queries, so the trace
  // context travels per entry, captured here on the staging caller's
  // thread: the flush may run later on an event-loop thread where the
  // thread-local trace id is gone. The silo unwraps each entry and
  // attributes its spans to the right trace (see Silo::HandleBatchRequest).
  const uint64_t trace_id = CurrentTraceId();
  // The batch-frame segment for this entry is encoded once, here, into a
  // pooled buffer: its u32 length prefix, the optional trace envelope,
  // then the request bytes. SendBatch ships the staged segments as an
  // iovec list, so no flush-time concatenation or re-encode happens.
  const size_t entry_len =
      request.size() + (trace_id != 0 ? kTraceEnvelopeBytes : 0);
  BinaryWriter writer = BinaryWriter::Pooled(sizeof(uint32_t) + entry_len);
  writer.WriteU32(static_cast<uint32_t>(entry_len));
  if (trace_id != 0) {
    writer.WriteU8(kTraceEnvelopeTag);
    writer.WriteU64(trace_id);
  }
  writer.AppendRaw(request.data(), request.size());
  pending->entry = BufferRef::Wrap(writer.Release());
  pending->done = std::move(done);
  pending->cost = QueryCostTracker::Current();
  pending->staged_at = std::chrono::steady_clock::now();

  std::vector<std::unique_ptr<Pending>> to_send;
  const char* reason = "size";
  bool arm = false;
  {
    std::lock_guard<std::mutex> lock(queue->mu);
    if (queue->staged.empty()) {
      queue->oldest_at = std::chrono::steady_clock::now();
    }
    queue->staged.push_back(std::move(pending));
    staged_gauge_->Add(1.0);
    if (queue->staged.size() >= std::max<size_t>(1, options_.max_batch_size)) {
      to_send.swap(queue->staged);
    } else if (use_reactor_) {
      if (options_.max_batch_delay_us <= 0) {
        // Eager mode: nothing to wait for, ship the lone entry now.
        to_send.swap(queue->staged);
        reason = "deadline";
      } else if (!queue->timer_armed && !queue->stopping) {
        queue->timer_armed = true;
        arm = true;
      }
    } else {
      // The flusher (re)arms its deadline off the oldest staged entry.
      // Signal while still holding the lock: once a caller's entry is
      // observable (staged gauge), the destructor may run — its shutdown
      // flush acquires this same mutex before the queue is freed, so the
      // cv must not be touched after the lock is released.
      queue->wake.notify_one();
    }
  }
  if (!to_send.empty()) {
    // Size trigger: the staging caller ships the batch itself — no
    // thread hop, and several full batches to one silo can be in flight
    // at once.
    SendBatch(silo_id, std::move(to_send), reason);
  } else if (arm) {
    ArmDeadline(silo_id, queue);
  }
}

void RequestCoalescer::ArmDeadline(int silo_id, SiloQueue* queue) {
  // ScheduleTimerAfter is loop-thread-only, so the arming itself hops
  // onto the loop. The wheel's 1 ms tick floor is fine: rounding the
  // batch window up can only grow batches, never starve a caller
  // (the size trigger still fires from the staging thread).
  const auto delay = std::chrono::milliseconds(
      std::max<int>(1, (options_.max_batch_delay_us + 999) / 1000));
  const bool submitted = queue->loop->Submit([this, silo_id, queue, delay] {
    const uint64_t id = queue->loop->ScheduleTimerAfter(
        delay, [this, silo_id, queue] { OnDeadline(silo_id, queue); });
    std::lock_guard<std::mutex> lock(queue->mu);
    if (queue->timer_armed) {
      queue->timer_id = id;
    } else {
      // Destruction disarmed while this task was queued.
      queue->loop->CancelTimer(id);
    }
  });
  if (!submitted) {
    // The loop has exited (the network stopped first). Ship inline so
    // the staged callers still complete — the exchange itself will
    // report the network's shutdown state.
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::lock_guard<std::mutex> lock(queue->mu);
      queue->timer_armed = false;
      batch.swap(queue->staged);
    }
    if (!batch.empty()) SendBatch(silo_id, std::move(batch), "deadline");
  }
}

void RequestCoalescer::OnDeadline(int silo_id, SiloQueue* queue) {
  const auto delay =
      std::chrono::microseconds(std::max(0, options_.max_batch_delay_us));
  std::vector<std::unique_ptr<Pending>> batch;
  bool rearm = false;
  TimerWheel::Clock::time_point rearm_at{};
  {
    std::lock_guard<std::mutex> lock(queue->mu);
    queue->timer_armed = false;
    queue->timer_id = 0;
    if (!queue->staged.empty()) {
      const auto deadline = queue->oldest_at + delay;
      if (std::chrono::steady_clock::now() >= deadline) {
        batch.swap(queue->staged);
      } else if (!queue->stopping) {
        // A size flush consumed the batch this timer was armed for and
        // younger entries have been staged since: give them their full
        // window.
        queue->timer_armed = true;
        rearm = true;
        rearm_at = deadline;
      }
    }
  }
  if (rearm) {
    const uint64_t id = queue->loop->ScheduleTimerAt(
        rearm_at, [this, silo_id, queue] { OnDeadline(silo_id, queue); });
    std::lock_guard<std::mutex> lock(queue->mu);
    if (queue->timer_armed) {
      queue->timer_id = id;
    } else {
      queue->loop->CancelTimer(id);
    }
  }
  if (!batch.empty()) SendBatch(silo_id, std::move(batch), "deadline");
}

void RequestCoalescer::FlusherLoop(int silo_id, SiloQueue* queue) {
  const auto delay =
      std::chrono::microseconds(std::max(0, options_.max_batch_delay_us));
  std::unique_lock<std::mutex> lock(queue->mu);
  while (!queue->stopping) {
    if (queue->staged.empty()) {
      queue->wake.wait(lock);
      continue;
    }
    const auto deadline = queue->oldest_at + delay;
    if (std::chrono::steady_clock::now() < deadline) {
      queue->wake.wait_until(lock, deadline);
      continue;  // re-evaluate: staged may have been size-flushed
    }
    std::vector<std::unique_ptr<Pending>> batch;
    batch.swap(queue->staged);
    lock.unlock();
    SendBatch(silo_id, std::move(batch), "deadline");
    lock.lock();
  }
  // Shutdown: ship what is still staged so every caller gets an answer.
  std::vector<std::unique_ptr<Pending>> batch;
  batch.swap(queue->staged);
  lock.unlock();
  if (!batch.empty()) SendBatch(silo_id, std::move(batch), "shutdown");
}

void RequestCoalescer::SendBatch(int silo_id,
                                 std::vector<std::unique_ptr<Pending>> batch,
                                 const char* reason) {
  FRA_TRACE_SPAN("net.coalesce.flush");
  staged_gauge_->Add(-static_cast<double>(batch.size()));
  batch_size_->Observe(static_cast<double>(batch.size()));
  if (std::strcmp(reason, "size") == 0) {
    flushes_size_->Increment();
  } else if (std::strcmp(reason, "deadline") == 0) {
    flushes_deadline_->Increment();
  } else {
    flushes_shutdown_->Increment();
  }

  // The batch frame is the header (type tag + entry count) followed by
  // the staged per-entry segments, shipped as a scatter-gather chunk
  // list: nothing is concatenated here, and on the reactor transport the
  // chunks reach the socket through one vectored send.
  // Queue-wait attribution: each entry's staged time is charged to its
  // query's cost tracker now, while the staging caller is still waiting
  // on the exchange (so the tracker is alive by construction).
  const auto flushed_at = std::chrono::steady_clock::now();
  for (const std::unique_ptr<Pending>& pending : batch) {
    if (pending->cost == nullptr) continue;
    pending->cost->NoteQueueWait(
        std::chrono::duration_cast<std::chrono::nanoseconds>(flushed_at -
                                                             pending->staged_at)
            .count() /
        1e3);
  }

  BinaryWriter header = BinaryWriter::Pooled(1 + sizeof(uint32_t));
  header.WriteU8(static_cast<uint8_t>(MessageType::kAggregateBatchRequest));
  header.WriteU32(static_cast<uint32_t>(batch.size()));
  std::vector<BufferRef> chunks;
  chunks.reserve(1 + batch.size());
  chunks.push_back(BufferRef::Wrap(header.Release()));
  for (std::unique_ptr<Pending>& pending : batch) {
    chunks.push_back(std::move(pending->entry));
  }

  // The scatter captures only the batch itself — never `this` — so a
  // batch still in flight when the coalescer is destroyed completes
  // safely (the network outlives the coalescer by contract). On a
  // reactor transport it runs on an event-loop thread; on synchronous
  // transports CallAsyncChunks degrades to an inline exchange, preserving
  // the old blocking behaviour of size- and flusher-triggered sends.
  auto shared =
      std::make_shared<std::vector<std::unique_ptr<Pending>>>(std::move(batch));
  network_->CallAsyncChunks(
      silo_id, std::move(chunks),
      [shared](Result<std::vector<uint8_t>> response) {
        const auto fail_all = [&shared](const Status& status) {
          for (std::unique_ptr<Pending>& pending : *shared) {
            pending->done(status);
          }
        };
        if (!response.ok()) {
          // Hung / unreachable silo: the Network deadline already bounded
          // the wait, and every staged query shares the outcome.
          fail_all(response.status());
          return;
        }
        Result<std::vector<std::vector<uint8_t>>> decoded =
            DecodeBatchResponse(*response);
        if (!decoded.ok()) {
          fail_all(decoded.status());
          return;
        }
        if (decoded->size() != shared->size()) {
          fail_all(Status::Internal(
              "batch response entry count mismatch: sent " +
              std::to_string(shared->size()) + ", received " +
              std::to_string(decoded->size())));
          return;
        }
        for (size_t i = 0; i < shared->size(); ++i) {
          (*shared)[i]->done(std::move((*decoded)[i]));
        }
        // The batch response buffer (a pooled frame payload on the
        // reactor path) has been fully scattered; recycle it.
        BufferPool::Default().Release(std::move(*response));
      });
}

}  // namespace fra
