#include "net/request_coalescer.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "net/message.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace fra {
namespace {

// Batch-size distribution buckets: powers of two up to well past any
// sensible max_batch_size.
const std::vector<double>& BatchSizeBuckets() {
  static const std::vector<double> kBuckets = {1,  2,  4,   8,   16,
                                               32, 64, 128, 256, 512};
  return kBuckets;
}

}  // namespace

RequestCoalescer::RequestCoalescer(Network* network, const Options& options)
    : network_(network), options_(options) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  flushes_size_ =
      &registry.GetCounter("fra_batch_flushes_total", {{"reason", "size"}});
  flushes_deadline_ = &registry.GetCounter("fra_batch_flushes_total",
                                           {{"reason", "deadline"}});
  flushes_shutdown_ = &registry.GetCounter("fra_batch_flushes_total",
                                           {{"reason", "shutdown"}});
  batch_size_ =
      &registry.GetHistogram("fra_batch_size", {}, BatchSizeBuckets());
  staged_gauge_ = &registry.GetGauge("fra_coalescer_staged_requests");
}

RequestCoalescer::~RequestCoalescer() {
  // Stop every flusher; each drains its queue (reason=shutdown) on exit,
  // so no staged caller is left waiting forever.
  std::vector<SiloQueue*> queues;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues.reserve(queues_.size());
    for (auto& [id, queue] : queues_) queues.push_back(queue.get());
  }
  for (SiloQueue* queue : queues) {
    {
      std::lock_guard<std::mutex> lock(queue->mu);
      queue->stopping = true;
    }
    queue->wake.notify_all();
  }
  for (SiloQueue* queue : queues) {
    if (queue->flusher.joinable()) queue->flusher.join();
  }
}

RequestCoalescer::SiloQueue* RequestCoalescer::QueueFor(int silo_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(silo_id);
  if (it == queues_.end()) {
    it = queues_.emplace(silo_id, std::make_unique<SiloQueue>()).first;
    SiloQueue* queue = it->second.get();
    queue->flusher =
        std::thread([this, silo_id, queue] { FlusherLoop(silo_id, queue); });
  }
  return it->second.get();
}

Result<std::vector<uint8_t>> RequestCoalescer::Call(
    int silo_id, const std::vector<uint8_t>& request) {
  FRA_TRACE_SPAN("net.coalesce.call");
  SiloQueue* queue = QueueFor(silo_id);
  auto pending = std::make_unique<Pending>();
  pending->request = request;
  std::future<Result<std::vector<uint8_t>>> future =
      pending->promise.get_future();

  std::vector<std::unique_ptr<Pending>> to_send;
  {
    std::lock_guard<std::mutex> lock(queue->mu);
    if (queue->staged.empty()) {
      queue->oldest_at = std::chrono::steady_clock::now();
    }
    queue->staged.push_back(std::move(pending));
    staged_gauge_->Add(1.0);
    if (queue->staged.size() >= std::max<size_t>(1, options_.max_batch_size)) {
      to_send.swap(queue->staged);
    }
  }
  if (!to_send.empty()) {
    // Size trigger: the staging caller ships the batch itself — no thread
    // hop, and several full batches to one silo can be in flight at once.
    SendBatch(silo_id, std::move(to_send), "size");
  } else {
    // The flusher (re)arms its deadline off the oldest staged entry.
    queue->wake.notify_one();
  }
  return future.get();
}

void RequestCoalescer::FlusherLoop(int silo_id, SiloQueue* queue) {
  const auto delay =
      std::chrono::microseconds(std::max(0, options_.max_batch_delay_us));
  std::unique_lock<std::mutex> lock(queue->mu);
  while (!queue->stopping) {
    if (queue->staged.empty()) {
      queue->wake.wait(lock);
      continue;
    }
    const auto deadline = queue->oldest_at + delay;
    if (std::chrono::steady_clock::now() < deadline) {
      queue->wake.wait_until(lock, deadline);
      continue;  // re-evaluate: staged may have been size-flushed
    }
    std::vector<std::unique_ptr<Pending>> batch;
    batch.swap(queue->staged);
    lock.unlock();
    SendBatch(silo_id, std::move(batch), "deadline");
    lock.lock();
  }
  // Shutdown: ship what is still staged so every caller gets an answer.
  std::vector<std::unique_ptr<Pending>> batch;
  batch.swap(queue->staged);
  lock.unlock();
  if (!batch.empty()) SendBatch(silo_id, std::move(batch), "shutdown");
}

void RequestCoalescer::SendBatch(int silo_id,
                                 std::vector<std::unique_ptr<Pending>> batch,
                                 const char* reason) {
  FRA_TRACE_SPAN("net.coalesce.flush");
  staged_gauge_->Add(-static_cast<double>(batch.size()));
  batch_size_->Observe(static_cast<double>(batch.size()));
  if (std::strcmp(reason, "size") == 0) {
    flushes_size_->Increment();
  } else if (std::strcmp(reason, "deadline") == 0) {
    flushes_deadline_->Increment();
  } else {
    flushes_shutdown_->Increment();
  }

  std::vector<std::vector<uint8_t>> entries;
  entries.reserve(batch.size());
  for (std::unique_ptr<Pending>& pending : batch) {
    entries.push_back(std::move(pending->request));
  }

  const auto fail_all = [&batch](const Status& status) {
    for (std::unique_ptr<Pending>& pending : batch) {
      pending->promise.set_value(status);
    }
  };

  Result<std::vector<uint8_t>> response =
      network_->Call(silo_id, EncodeBatchRequest(entries));
  if (!response.ok()) {
    // Hung / unreachable silo: the Network deadline already bounded the
    // wait, and every staged query shares the outcome.
    fail_all(response.status());
    return;
  }
  Result<std::vector<std::vector<uint8_t>>> decoded =
      DecodeBatchResponse(*response);
  if (!decoded.ok()) {
    fail_all(decoded.status());
    return;
  }
  if (decoded->size() != batch.size()) {
    fail_all(Status::Internal("batch response entry count mismatch: sent " +
                              std::to_string(batch.size()) + ", received " +
                              std::to_string(decoded->size())));
    return;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->promise.set_value(std::move((*decoded)[i]));
  }
}

}  // namespace fra
