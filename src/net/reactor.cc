#include "net/reactor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <algorithm>
#include <future>
#include <limits>
#include <string>
#include <utility>

#include "net/message.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace fra {
namespace {

// Loop ids are process-unique so every event loop — reactors owned by
// networks, servers, admin endpoints — exports under a distinct `loop`
// label for its whole lifetime.
std::atomic<uint64_t> g_next_loop_id{0};

double ToMicros(TimerWheel::Clock::duration d) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::micro>>(d)
      .count();
}

// Frame-layer byte accounting (fra_frame_bytes_total{direction}): every
// byte the reactor transport moves, headers included, counted at the
// syscall boundary — the wire truth the per-query cost ledger is checked
// against. One atomic add per recv/sendmsg.
Counter* FrameBytesIn() {
  static Counter* counter = &MetricsRegistry::Default().GetCounter(
      "fra_frame_bytes_total", {{"direction", "in"}});
  return counter;
}

Counter* FrameBytesOut() {
  static Counter* counter = &MetricsRegistry::Default().GetCounter(
      "fra_frame_bytes_total", {{"direction", "out"}});
  return counter;
}

}  // namespace

// --- TimerWheel ------------------------------------------------------------

TimerWheel::TimerWheel(Clock::time_point now, int tick_ms)
    : origin_(now), tick_ms_(std::max(1, tick_ms)) {}

uint64_t TimerWheel::TickFor(Clock::time_point at) const {
  if (at <= origin_) return 0;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(at - origin_)
          .count();
  // Round up: a deadline mid-tick fires on the tick after it, never early.
  return (static_cast<uint64_t>(elapsed) + tick_ms_ - 1) / tick_ms_;
}

uint64_t TimerWheel::FloorTickFor(Clock::time_point at) const {
  if (at <= origin_) return 0;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(at - origin_)
          .count();
  return static_cast<uint64_t>(elapsed) / tick_ms_;
}

uint64_t TimerWheel::ScheduleAt(Clock::time_point deadline, Callback fn) {
  const uint64_t id = next_id_++;
  Entry entry;
  entry.id = id;
  entry.expiry_tick = std::max(TickFor(deadline), current_tick_ + 1);
  entry.fn = std::move(fn);
  const size_t slot = entry.expiry_tick % kSlots;
  slots_[slot].push_back(std::move(entry));
  index_.emplace(id, std::make_pair(slot, std::prev(slots_[slot].end())));
  if (min_valid_) {
    min_expiry_ = index_.size() == 1
                      ? slots_[slot].back().expiry_tick
                      : std::min(min_expiry_, slots_[slot].back().expiry_tick);
  }
  return id;
}

bool TimerWheel::Cancel(uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const auto [slot, entry_it] = it->second;
  const uint64_t expiry = entry_it->expiry_tick;
  slots_[slot].erase(entry_it);
  index_.erase(it);
  if (index_.empty()) {
    min_expiry_ = kNoExpiry;
    min_valid_ = true;
  } else if (min_valid_ && expiry == min_expiry_) {
    min_valid_ = false;  // recompute lazily
  }
  return true;
}

void TimerWheel::RecomputeMinExpiry() {
  min_expiry_ = kNoExpiry;
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      min_expiry_ = std::min(min_expiry_, entry.expiry_tick);
    }
  }
  min_valid_ = true;
}

void TimerWheel::Advance(Clock::time_point now) {
  // Floor, where scheduling ceils: an entry fires only once `now` has
  // actually reached its deadline, never up to a tick early.
  const uint64_t target_tick = FloorTickFor(now);
  if (target_tick <= current_tick_) return;
  if (index_.empty()) {
    current_tick_ = target_tick;
    return;
  }
  // Collect every due entry first, then fire: callbacks may re-enter
  // ScheduleAt/Cancel without invalidating this sweep.
  std::vector<Entry> due;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    auto& slot = slots_[current_tick_ % kSlots];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->expiry_tick <= current_tick_) {
        due.push_back(std::move(*it));
        index_.erase(it->id);
        it = slot.erase(it);
      } else {
        ++it;  // a later wheel round
      }
    }
    if (index_.empty()) {
      current_tick_ = target_tick;
      break;
    }
  }
  if (!due.empty()) min_valid_ = false;
  if (index_.empty()) {
    min_expiry_ = kNoExpiry;
    min_valid_ = true;
  }
  for (Entry& entry : due) {
    if (drift_observer_) {
      // Lateness against the entry's scheduled tick: >= 0 by
      // construction (fire ticks floor where scheduling ceils).
      const auto deadline =
          origin_ + std::chrono::milliseconds(
                        static_cast<int64_t>(entry.expiry_tick) * tick_ms_);
      drift_observer_(std::max(0.0, ToMicros(now - deadline)));
    }
    entry.fn();
  }
}

int TimerWheel::NextTimeoutMs(Clock::time_point now) {
  if (index_.empty()) return -1;
  if (!min_valid_) RecomputeMinExpiry();
  const auto deadline = origin_ + std::chrono::milliseconds(
                                      static_cast<int64_t>(min_expiry_) *
                                      tick_ms_);
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  if (left <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(left, std::numeric_limits<int>::max()));
}

// --- EventLoop -------------------------------------------------------------

EventLoop::EventLoop()
    : id_(g_next_loop_id.fetch_add(1, std::memory_order_relaxed)),
      wheel_(TimerWheel::Clock::now()) {
  const MetricLabels labels = {{"loop", std::to_string(id_)}};
  MetricsRegistry& registry = MetricsRegistry::Default();
  lag_hist_ =
      &registry.GetHistogram("fra_reactor_loop_lag_microseconds", labels);
  wait_hist_ =
      &registry.GetHistogram("fra_reactor_epoll_wait_microseconds", labels);
  dispatch_hist_ =
      &registry.GetHistogram("fra_reactor_dispatch_microseconds", labels);
  drift_hist_ =
      &registry.GetHistogram("fra_reactor_timer_drift_microseconds", labels);
  pending_timers_gauge_ =
      &registry.GetGauge("fra_reactor_pending_timers", labels);
  wheel_.set_drift_observer(
      [this](double late_micros) { drift_hist_->Observe(late_micros); });
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  FRA_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  FRA_CHECK(wakeup_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wakeup_fd_;
  FRA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &event) == 0)
      << "epoll_ctl(wakeup): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::DrainWakeup() {
  uint64_t value = 0;
  while (::read(wakeup_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunQueuedTasks() {
  std::vector<QueuedTask> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  if (tasks.empty()) return;
  // One timestamp per drain batch: the lag of interest is scheduling
  // delay (how long the loop took to get to the task), not intra-batch
  // ordering.
  const auto drained_at = TimerWheel::Clock::now();
  for (QueuedTask& task : tasks) {
    lag_hist_->Observe(ToMicros(drained_at - task.submitted));
    task.fn();
  }
}

void EventLoop::Run() {
  loop_thread_id_.store(std::this_thread::get_id(),
                        std::memory_order_release);
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const auto wait_start = TimerWheel::Clock::now();
    int timeout_ms;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      timeout_ms = tasks_.empty() ? wheel_.NextTimeoutMs(wait_start) : 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    FRA_CHECK(n >= 0 || errno == EINTR)
        << "epoll_wait: " << std::strerror(errno);
    const auto woke = TimerWheel::Clock::now();
    wait_hist_->Observe(ToMicros(woke - wait_start));
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      // Copy: a handler may deregister (even itself) mid-dispatch.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      FdHandler handler = it->second;
      handler(events[i].events);
    }
    RunQueuedTasks();
    wheel_.Advance(TimerWheel::Clock::now());
    // Dispatch covers everything a wakeup triggered — fd handlers,
    // queued tasks, fired timers: the time this loop was NOT available
    // to react to the next event.
    dispatch_hist_->Observe(ToMicros(TimerWheel::Clock::now() - woke));
    pending_timers_gauge_->Set(static_cast<double>(wheel_.pending()));
  }
  // Final drain, atomic with the exited_ flip: every Submit that returned
  // true sees its task run here, and every later Submit sees exited_
  // under the same mutex and refuses — no stranded tasks.
  std::vector<QueuedTask> last;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    exited_.store(true, std::memory_order_release);
    last.swap(tasks_);
  }
  for (QueuedTask& task : last) task.fn();
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  (void)!::write(wakeup_fd_, &one, sizeof(one));
}

bool EventLoop::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    if (exited_.load(std::memory_order_acquire)) return false;
    tasks_.push_back(QueuedTask{std::move(task), TimerWheel::Clock::now()});
  }
  const uint64_t one = 1;
  (void)!::write(wakeup_fd_, &one, sizeof(one));
  return true;
}

bool EventLoop::SubmitAndWait(Task task) {
  if (InLoopThread()) {
    task();
    return true;
  }
  std::promise<void> done;
  std::future<void> future = done.get_future();
  if (!Submit([&task, &done] {
        task();
        done.set_value();
      })) {
    return false;
  }
  future.wait();
  return true;
}

Status EventLoop::RegisterFd(int fd, uint32_t events, FdHandler handler) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Status::IOError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EventLoop::UpdateFd(int fd, uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Status::IOError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::DeregisterFd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

uint64_t EventLoop::ScheduleTimerAfter(std::chrono::milliseconds delay,
                                       TimerWheel::Callback fn) {
  return wheel_.ScheduleAfter(delay, std::move(fn));
}

uint64_t EventLoop::ScheduleTimerAt(TimerWheel::Clock::time_point deadline,
                                    TimerWheel::Callback fn) {
  return wheel_.ScheduleAt(deadline, std::move(fn));
}

bool EventLoop::CancelTimer(uint64_t id) { return wheel_.Cancel(id); }

// --- Reactor ---------------------------------------------------------------

size_t Reactor::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, std::min(4u, hw == 0 ? 1u : hw));
}

Reactor::Reactor(size_t num_threads) {
  const size_t n = num_threads == 0 ? DefaultThreadCount() : num_threads;
  loops_.reserve(n);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([loop = loops_[i].get()] { loop->Run(); });
  }
}

Reactor::~Reactor() { Stop(); }

void Reactor::Stop() {
  if (stopped_.exchange(true)) return;
  for (auto& loop : loops_) loop->Stop();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

EventLoop* Reactor::NextLoop() {
  return loops_[next_.fetch_add(1, std::memory_order_relaxed) % loops_.size()]
      .get();
}

// --- framing state machines ------------------------------------------------

Status FrameReader::Drain(int fd, const FrameSink& on_frame) {
  for (;;) {
    if (!in_payload_) {
      while (header_filled_ < sizeof(header_)) {
        const ssize_t n = ::recv(fd, header_ + header_filled_,
                                 sizeof(header_) - header_filled_, 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
          return Status::IOError(std::string("recv: ") +
                                 std::strerror(errno));
        }
        if (n == 0) return Status::Unavailable("peer closed connection");
        FrameBytesIn()->Increment(static_cast<uint64_t>(n));
        header_filled_ += static_cast<size_t>(n);
      }
      uint32_t wire_length = 0;
      std::memcpy(&wire_length, header_, sizeof(wire_length));
      const uint32_t length = ntohl(wire_length);
      if (length > kMaxFrameBytes) {
        return Status::OutOfRange("frame exceeds limit");
      }
      // Frame payloads come from the buffer pool: a connection serving a
      // steady request size recycles the same slab frame after frame.
      payload_ = BufferPool::Default().Acquire(length);
      payload_.resize(length);
      payload_filled_ = 0;
      in_payload_ = true;
    }
    while (payload_filled_ < payload_.size()) {
      const ssize_t n = ::recv(fd, payload_.data() + payload_filled_,
                               payload_.size() - payload_filled_, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
        return Status::IOError(std::string("recv: ") + std::strerror(errno));
      }
      if (n == 0) return Status::Unavailable("peer closed connection");
      FrameBytesIn()->Increment(static_cast<uint64_t>(n));
      payload_filled_ += static_cast<size_t>(n);
    }
    // Frame complete; reset before the sink runs so a re-entrant look at
    // the reader sees a clean state.
    std::vector<uint8_t> payload = std::move(payload_);
    payload_ = {};
    payload_filled_ = 0;
    header_filled_ = 0;
    in_payload_ = false;
    if (!on_frame(std::move(payload))) return Status::OK();
  }
}

void FrameWriter::PushHeader(uint32_t payload_bytes) {
  Chunk chunk;
  const uint32_t wire_length = htonl(payload_bytes);
  std::memcpy(chunk.header, &wire_length, sizeof(wire_length));
  chunk.header_len = sizeof(wire_length);
  pending_bytes_ += chunk.header_len;
  queue_.push_back(std::move(chunk));
}

void FrameWriter::EnqueueFrame(std::vector<uint8_t> payload) {
  PushHeader(static_cast<uint32_t>(payload.size()));
  // A zero-length payload is just its header; no body chunk is queued,
  // so pending_bytes_ counts exactly the 4 header bytes for it.
  if (payload.empty()) return;
  Chunk chunk;
  pending_bytes_ += payload.size();
  chunk.owned = std::move(payload);
  queue_.push_back(std::move(chunk));
}

void FrameWriter::EnqueueFrameChunks(const std::vector<BufferRef>& chunks) {
  size_t total = 0;
  for (const BufferRef& ref : chunks) total += ref.size();
  PushHeader(static_cast<uint32_t>(total));
  for (const BufferRef& ref : chunks) {
    if (ref.empty()) continue;
    Chunk chunk;
    chunk.ref = ref;
    pending_bytes_ += ref.size();
    queue_.push_back(std::move(chunk));
  }
}

Status FrameWriter::Flush(int fd) {
  // Upper bound on segments gathered per syscall; well under IOV_MAX and
  // large enough that a full batch frame (header + n staged entries)
  // usually leaves in one vectored send.
  constexpr size_t kMaxIovPerFlush = 64;
  while (!queue_.empty()) {
    struct iovec iov[kMaxIovPerFlush];
    size_t iov_count = 0;
    size_t offset = front_offset_;  // applies to the first chunk only
    for (const Chunk& chunk : queue_) {
      if (iov_count == kMaxIovPerFlush) break;
      iov[iov_count].iov_base =
          const_cast<uint8_t*>(chunk.data() + offset);
      iov[iov_count].iov_len = chunk.size() - offset;
      ++iov_count;
      offset = 0;
    }
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    // sendmsg rather than writev: the transport relies on MSG_NOSIGNAL
    // (nothing in the process ignores SIGPIPE).
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      return Status::IOError(std::string("sendmsg: ") + std::strerror(errno));
    }
    FrameBytesOut()->Increment(static_cast<uint64_t>(n));
    pending_bytes_ -= static_cast<size_t>(n);
    size_t written = static_cast<size_t>(n);
    while (written > 0) {
      Chunk& front = queue_.front();
      const size_t remaining = front.size() - front_offset_;
      if (written < remaining) {
        front_offset_ += written;
        break;
      }
      written -= remaining;
      front_offset_ = 0;
      // Fully written: recycle owned buffers; BufferRef storage returns
      // through its refcount when the last holder (possibly a retry
      // copy) drops.
      if (!front.owned.empty()) {
        BufferPool::Default().Release(std::move(front.owned));
      }
      queue_.pop_front();
    }
  }
  return Status::OK();
}

// --- accept policy / fd helpers --------------------------------------------

AcceptAction ClassifyAcceptErrno(int err) {
  switch (err) {
    // Per-connection failures surfaced through accept(): the handshake
    // aborted before we got the socket. Nothing is wrong with the
    // listener — take the next connection.
    case EINTR:
    case ECONNABORTED:
#ifdef EPROTO
    case EPROTO:
#endif
      return AcceptAction::kRetry;
    // Resource exhaustion: accepting again immediately would spin (the
    // pending connection stays queued), so pause briefly and retry —
    // never kill the listener over a transient fd-limit spike.
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return AcceptAction::kBackoff;
    // The listening socket itself is gone (typically Stop() closed it).
    case EBADF:
    case EINVAL:
    case ENOTSOCK:
    case EOPNOTSUPP:
      return AcceptAction::kFatal;
    default:
      // Unknown errno: stay alive, but back off so a persistent failure
      // cannot spin the accept loop.
      return AcceptAction::kBackoff;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace fra
