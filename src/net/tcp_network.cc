#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include <algorithm>
#include <future>
#include <string>
#include <utility>

#include "net/message.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace fra {

/// A fixed point in time every socket wait measures against; the
/// never-expiring default means "block forever" (legacy server-side
/// reads, request_timeout_ms <= 0).
struct DeadlinePoint {
  std::chrono::steady_clock::time_point at;
  bool bounded = false;

  static DeadlinePoint After(int ms) {
    DeadlinePoint deadline;
    if (ms > 0) {
      deadline.at =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
      deadline.bounded = true;
    }
    return deadline;
  }

  static DeadlinePoint Unbounded() { return DeadlinePoint{}; }

  /// The earlier of two deadlines (an unbounded one never wins).
  static DeadlinePoint Earliest(const DeadlinePoint& a,
                                const DeadlinePoint& b) {
    if (!a.bounded) return b;
    if (!b.bounded) return a;
    return a.at < b.at ? a : b;
  }

  /// Remaining milliseconds, clamped to 0; -1 when unbounded (the poll
  /// convention for "wait forever").
  int RemainingMs() const {
    if (!bounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - std::chrono::steady_clock::now());
    return std::max<int>(0, static_cast<int>(left.count()));
  }
};

namespace {

// Server-side read backpressure: stop reading new requests off a
// connection while this many responses are pending on it, or while this
// much response data is buffered for a reader that has stopped draining
// (the slow-scraper case) — the loop stays responsive to every other
// connection either way.
constexpr size_t kMaxServerPipeline = 256;
constexpr size_t kServerWriterPauseBytes = 4u << 20;

// Accept backoff after resource exhaustion (EMFILE/ENFILE/...): long
// enough for fds to free up, short enough that the listener recovers
// promptly.
constexpr int kAcceptBackoffMs = 20;

Status DeadlineExceeded(const char* what, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = true;
  return Status::Unavailable(std::string("deadline exceeded: ") + what);
}

// Blocks until `fd` is ready for `events` or `deadline` passes. A
// positive return from poll() only promises progress (some readable
// bytes / some buffer space), so callers loop.
Status WaitReady(int fd, short events, const DeadlinePoint& deadline,
                 const char* what, bool* timed_out) {
  for (;;) {
    pollfd entry{};
    entry.fd = fd;
    entry.events = events;
    const int n = ::poll(&entry, 1, deadline.RemainingMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) return DeadlineExceeded(what, timed_out);
    // POLLERR/POLLHUP fall through: the pending recv/send/getsockopt
    // reports the concrete error.
    return Status::OK();
  }
}

Status WriteAll(int fd, const void* data, size_t size,
                const DeadlinePoint& deadline, bool* timed_out) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    FRA_RETURN_NOT_OK(
        WaitReady(fd, POLLOUT, deadline, "waiting to send", timed_out));
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, void* data, size_t size, const DeadlinePoint& deadline,
               bool* timed_out) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    FRA_RETURN_NOT_OK(
        WaitReady(fd, POLLIN, deadline, "waiting for response", timed_out));
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::Unavailable("peer closed connection");
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Frame layout: u32 length in network byte order (big-endian), then
// `length` payload bytes — see docs/wire_protocol.md. The send-side
// size guard mirrors the receive guard: an unchecked payload over 4 GiB
// would be silently truncated by the u32 cast and desync the stream.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload,
                  const DeadlinePoint& deadline, bool* timed_out) {
  FRA_RETURN_NOT_OK(ValidateFramePayloadSize(payload.size()));
  const uint32_t length = htonl(static_cast<uint32_t>(payload.size()));
  FRA_RETURN_NOT_OK(WriteAll(fd, &length, sizeof(length), deadline,
                             timed_out));
  if (!payload.empty()) {
    FRA_RETURN_NOT_OK(
        WriteAll(fd, payload.data(), payload.size(), deadline, timed_out));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFrame(int fd, const DeadlinePoint& deadline,
                                       bool* timed_out) {
  uint32_t wire_length = 0;
  FRA_RETURN_NOT_OK(
      ReadAll(fd, &wire_length, sizeof(wire_length), deadline, timed_out));
  const uint32_t length = ntohl(wire_length);
  if (length > kMaxFrameBytes) {
    return Status::OutOfRange("frame exceeds limit");
  }
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    FRA_RETURN_NOT_OK(
        ReadAll(fd, payload.data(), payload.size(), deadline, timed_out));
  }
  return payload;
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

void SetNoDelay(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

// Non-blocking connect to 127.0.0.1:port bounded by `deadline` (the
// legacy blocking pool's dial; the reactor path dials via the loop).
Result<int> DialLoopback(uint16_t port, const DeadlinePoint& deadline,
                         bool* timed_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0 && errno != EINPROGRESS) {
    const Status status =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const Status ready =
      WaitReady(fd, POLLOUT, deadline, "connecting", timed_out);
  if (!ready.ok()) {
    ::close(fd);
    return ready;
  }
  int error = 0;
  socklen_t error_length = sizeof(error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_length) < 0 ||
      error != 0) {
    const Status status = Status::Unavailable(
        std::string("connect: ") + std::strerror(error != 0 ? error : errno));
    ::close(fd);
    return status;
  }
  SetNoDelay(fd);
  return fd;
}

// Handler workers back every blocking HandleMessage in reactor mode;
// enough of them to overlap blocking silo work even on small machines.
size_t DefaultHandlerThreads() {
  return std::max<size_t>(8, std::thread::hardware_concurrency());
}

// Server-role connection telemetry. Unlabelled process-wide instruments:
// a production silo runs one server per process, and in-process test
// federations aggregate meaningfully (total queued depth / unsent bytes
// across every serving socket).
const std::vector<double>& PipelineDepthBuckets() {
  static const std::vector<double> kBuckets = {1,  2,  4,   8,   16,
                                               32, 64, 128, 256, 512};
  return kBuckets;
}

Histogram* ServerPipelineDepthHist() {
  static Histogram* hist = &MetricsRegistry::Default().GetHistogram(
      "fra_tcp_server_pipeline_depth", {}, PipelineDepthBuckets());
  return hist;
}

Gauge* ServerBackpressureGauge() {
  static Gauge* gauge =
      &MetricsRegistry::Default().GetGauge("fra_tcp_server_backpressure_bytes");
  return gauge;
}

}  // namespace

// --- TcpSiloServer ---------------------------------------------------------

/// One accepted connection's state machine. Owned by shared_ptr: the
/// epoll handler, in-flight handler-pool tasks, and their loop-thread
/// completions all hold references, and `closed` lets a completion that
/// arrives after the connection died return without touching the socket.
/// Everything here is touched only from the connection's loop thread.
struct TcpSiloServer::Conn {
  int fd = -1;
  EventLoop* loop = nullptr;
  FrameReader reader;
  FrameWriter writer;
  uint32_t interest = EPOLLIN;
  bool closed = false;
  // Peer closed its write side while responses are still pending: finish
  // writing them, then close (matches the legacy sequential loop, which
  // only noticed EOF after replying).
  bool draining = false;
  // Last pending_bytes() reported to the process-wide backpressure
  // gauge; the gauge is kept consistent by deltas because connections
  // live on different loop threads.
  size_t reported_backpressure = 0;

  void SyncBackpressure(const FrameWriter& writer) {
    const size_t unsent = writer.pending_bytes();
    if (unsent != reported_backpressure) {
      ServerBackpressureGauge()->Add(static_cast<double>(unsent) -
                                     static_cast<double>(
                                         reported_backpressure));
      reported_backpressure = unsent;
    }
  }

  /// Ordered response pipelining: one slot per request, in arrival
  /// order. Workers complete out of order; responses flush in order.
  struct Slot {
    bool done = false;
    std::vector<uint8_t> response;
  };
  std::deque<std::shared_ptr<Slot>> slots;
};

Result<std::unique_ptr<TcpSiloServer>> TcpSiloServer::Start(
    SiloEndpoint* endpoint, uint16_t port) {
  return Start(endpoint, port, Options{});
}

Result<std::unique_ptr<TcpSiloServer>> TcpSiloServer::Start(
    SiloEndpoint* endpoint, uint16_t port, const Options& options) {
  if (endpoint == nullptr) {
    return Status::InvalidArgument("null endpoint");
  }
  auto server = std::unique_ptr<TcpSiloServer>(new TcpSiloServer());
  server->endpoint_ = endpoint;
  server->options_ = options;
  FRA_RETURN_NOT_OK(server->StartListener(port));
  if (options.use_reactor) {
    FRA_RETURN_NOT_OK(server->StartReactor());
  } else {
    server->accept_thread_ = std::thread([raw = server.get()] {
      raw->AcceptLoop();
    });
  }
  return server;
}

Status TcpSiloServer::StartListener(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t address_length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &address_length) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(address.sin_port);
  if (::listen(listen_fd_, 256) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status TcpSiloServer::StartReactor() {
  FRA_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  if (options_.reactor != nullptr) {
    reactor_ = options_.reactor;
  } else {
    owned_reactor_ = std::make_unique<Reactor>(options_.reactor_threads);
    reactor_ = owned_reactor_.get();
  }
  handler_pool_ = std::make_unique<ThreadPool>(
      options_.worker_threads > 0 ? options_.worker_threads
                                  : DefaultHandlerThreads());
  accept_loop_ = reactor_->loop(0);
  Status registered = Status::OK();
  accept_loop_->SubmitAndWait([this, &registered] {
    registered = accept_loop_->RegisterFd(
        listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
  });
  return registered;
}

void TcpSiloServer::OnAcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      SetNoDelay(fd);
      EventLoop* loop = reactor_->NextLoop();
      loop->Submit([this, fd, loop] { AdoptConnection(fd, loop); });
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    const int accept_errno = errno;
    switch (ClassifyAcceptErrno(accept_errno)) {
      case AcceptAction::kRetry:
        continue;
      case AcceptAction::kBackoff:
        FRA_LOG(WARN) << "silo server accept backoff: "
                      << std::strerror(accept_errno) << "; parking listener "
                      << kAcceptBackoffMs << "ms";
        // Level-triggered epoll would spin on the still-pending
        // connection; park the listener and re-arm shortly.
        (void)accept_loop_->UpdateFd(listen_fd_, 0);
        accept_loop_->ScheduleTimerAfter(
            std::chrono::milliseconds(kAcceptBackoffMs), [this] {
              if (!stopping_.load() && listen_fd_ >= 0) {
                (void)accept_loop_->UpdateFd(listen_fd_, EPOLLIN);
              }
            });
        return;
      case AcceptAction::kFatal:
        // The listening socket itself is gone (normally Stop()).
        if (!stopping_.load()) {
          FRA_LOG(ERROR) << "silo server listener lost: "
                         << std::strerror(accept_errno)
                         << "; no longer accepting connections";
        }
        accept_loop_->DeregisterFd(listen_fd_);
        return;
    }
  }
}

void TcpSiloServer::AdoptConnection(int fd, EventLoop* loop) {
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->loop = loop;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conns_.insert(conn);
  }
  const Status registered = loop->RegisterFd(
      fd, EPOLLIN, [this, conn](uint32_t events) { OnConnEvent(conn, events); });
  if (!registered.ok()) {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn);
    ::close(fd);
  }
}

void TcpSiloServer::OnConnEvent(const std::shared_ptr<Conn>& conn,
                                uint32_t events) {
  if (conn->closed) return;
  if (events & EPOLLOUT) {
    if (!conn->writer.Flush(conn->fd).ok()) {
      CloseConn(conn);
      return;
    }
    if (conn->draining && conn->slots.empty() && !conn->writer.has_pending()) {
      CloseConn(conn);
      return;
    }
    UpdateConnInterest(conn);
  }
  if (events & EPOLLIN) {
    const Status drained =
        conn->reader.Drain(conn->fd, [&](std::vector<uint8_t> payload) {
          DispatchRequest(conn, std::move(payload));
          return conn->slots.size() < kMaxServerPipeline &&
                 conn->writer.pending_bytes() < kServerWriterPauseBytes;
        });
    if (!drained.ok()) {
      if (drained.IsUnavailable() &&
          (!conn->slots.empty() || conn->writer.has_pending())) {
        // Clean peer close with responses still owed: drain writes first.
        conn->draining = true;
      } else {
        CloseConn(conn);
        return;
      }
    }
    UpdateConnInterest(conn);
    return;
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(conn);
  }
}

void TcpSiloServer::DispatchRequest(const std::shared_ptr<Conn>& conn,
                                    std::vector<uint8_t> request) {
  auto slot = std::make_shared<Conn::Slot>();
  conn->slots.push_back(slot);
  // Depth at arrival: how many requests this connection has queued or
  // executing ahead of (and including) this one.
  ServerPipelineDepthHist()->Observe(static_cast<double>(conn->slots.size()));
  // The loop never blocks on query execution: HandleMessage runs on the
  // worker pool, and its completion hops back to the connection's loop.
  handler_pool_->Submit([this, conn, slot,
                         request = std::move(request)]() mutable {
    // A request may arrive inside a trace envelope; the carried trace id
    // becomes this worker's context so silo-side spans correlate with
    // the provider-side ones (0 when the envelope is absent). Spans the
    // handler records under that id are captured by the collector and
    // shipped back as the response's trailing span section.
    ConstByteSpan view(request);
    const uint64_t trace_id = StripTraceEnvelopeView(&view);
    ScopedTraceId trace_scope(trace_id);
    SpanCollector collector;
    // Borrowed-view dispatch: the silo decodes the frame bytes in place
    // (the view stays valid — `request` is owned by this closure).
    Result<std::vector<uint8_t>> response = endpoint_->HandleMessageView(view);
    std::vector<uint8_t> frame =
        response.ok() ? std::move(response).ValueOrDie()
                      : EncodeErrorResponse(response.status());
    // The request frame (a pool-acquired FrameReader payload) is done;
    // recycle it for the connection's next frame.
    BufferPool::Default().Release(std::move(request));
    // No trace-id gate: a deadline-flushed batch frame carries no outer
    // envelope, yet its entries may each be traced — the collector holds
    // whatever spans any of them produced (no-op when empty).
    AppendSpanSection(collector.Take(), &frame);
    conn->loop->Submit([this, conn, slot, frame = std::move(frame)]() mutable {
      if (conn->closed) return;
      slot->done = true;
      slot->response = std::move(frame);
      FlushReadyResponses(conn);
    });
  });
}

void TcpSiloServer::FlushReadyResponses(const std::shared_ptr<Conn>& conn) {
  while (!conn->slots.empty() && conn->slots.front()->done) {
    // Count before replying so a client that has decoded the response
    // already observes the increment.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    conn->writer.EnqueueFrame(std::move(conn->slots.front()->response));
    conn->slots.pop_front();
  }
  if (!conn->writer.Flush(conn->fd).ok()) {
    CloseConn(conn);
    return;
  }
  if (conn->draining && conn->slots.empty() && !conn->writer.has_pending()) {
    CloseConn(conn);
    return;
  }
  UpdateConnInterest(conn);
}

void TcpSiloServer::UpdateConnInterest(const std::shared_ptr<Conn>& conn) {
  conn->SyncBackpressure(conn->writer);
  uint32_t want = 0;
  const bool paused = conn->draining ||
                      conn->slots.size() >= kMaxServerPipeline ||
                      conn->writer.pending_bytes() >= kServerWriterPauseBytes;
  if (!paused) want |= EPOLLIN;
  if (conn->writer.has_pending()) want |= EPOLLOUT;
  if (want != conn->interest) {
    if (!conn->loop->UpdateFd(conn->fd, want).ok()) {
      CloseConn(conn);
      return;
    }
    conn->interest = want;
  }
}

void TcpSiloServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->reported_backpressure != 0) {
    ServerBackpressureGauge()->Add(
        -static_cast<double>(conn->reported_backpressure));
    conn->reported_backpressure = 0;
  }
  conn->loop->DeregisterFd(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn);
}

TcpSiloServer::~TcpSiloServer() { Stop(); }

void TcpSiloServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (options_.use_reactor) {
    if (accept_loop_ != nullptr) {
      accept_loop_->SubmitAndWait([this] {
        if (listen_fd_ >= 0) {
          accept_loop_->DeregisterFd(listen_fd_);
          CloseFd(&listen_fd_);
        }
      });
    }
    // Drain in-flight handlers; their completions land on the loops and
    // flush whatever responses the sockets will still take.
    handler_pool_.reset();
    std::vector<std::shared_ptr<Conn>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns.assign(conns_.begin(), conns_.end());
    }
    // SubmitAndWait doubles as a barrier: completions queued above run
    // before the close (per-loop FIFO), so graceful responses go out.
    for (const std::shared_ptr<Conn>& conn : conns) {
      conn->loop->SubmitAndWait([this, conn] { CloseConn(conn); });
    }
    if (owned_reactor_) owned_reactor_->Stop();
    return;
  }
  // Legacy mode: shut the listening socket down; accept() wakes with an
  // error classified kFatal. The fd itself is closed only after the
  // accept thread joins — it reads listen_fd_ unsynchronized, so the
  // join must order that read before the close's write.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(&listen_fd_);
  std::unordered_map<int, std::thread> workers;
  std::vector<std::thread> retired;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    retired.swap(retired_);
    // Wake workers blocked in recv() on live connections; each closes
    // its own fd on exit.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& [fd, worker] : workers) {
    if (worker.joinable()) worker.join();
  }
  for (std::thread& worker : retired) {
    if (worker.joinable()) worker.join();
  }
}

size_t TcpSiloServer::tracked_connection_threads() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return workers_.size() + retired_.size();
}

size_t TcpSiloServer::open_connections() const {
  if (options_.use_reactor) {
    std::lock_guard<std::mutex> lock(conns_mu_);
    return conns_.size();
  }
  std::lock_guard<std::mutex> lock(workers_mu_);
  return active_fds_.size();
}

void TcpSiloServer::ReapRetired() {
  std::vector<std::thread> retired;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    retired.swap(retired_);
  }
  for (std::thread& worker : retired) {
    if (worker.joinable()) worker.join();
  }
}

void TcpSiloServer::AcceptLoop() {
  while (!stopping_.load()) {
    // Join connection threads that have finished since the last accept:
    // under churn the tracked set stays bounded by the number of LIVE
    // connections instead of growing one dead thread per connection ever
    // accepted.
    ReapRetired();
    const int connection_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (connection_fd < 0) {
      if (stopping_.load()) return;
      const int accept_errno = errno;
      switch (ClassifyAcceptErrno(accept_errno)) {
        case AcceptAction::kRetry:
          continue;
        case AcceptAction::kBackoff:
          FRA_LOG(WARN) << "silo server accept backoff: "
                        << std::strerror(accept_errno) << "; sleeping "
                        << kAcceptBackoffMs << "ms";
          std::this_thread::sleep_for(
              std::chrono::milliseconds(kAcceptBackoffMs));
          continue;
        case AcceptAction::kFatal:
          FRA_LOG(ERROR) << "silo server listener lost: "
                         << std::strerror(accept_errno)
                         << "; accept loop exiting";
          return;  // the listening socket itself is gone
      }
      continue;
    }
    SetNoDelay(connection_fd);
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load()) {
      ::close(connection_fd);
      return;
    }
    active_fds_.insert(connection_fd);
    workers_.emplace(connection_fd, std::thread([this, connection_fd] {
                       ServeConnection(connection_fd);
                     }));
  }
}

void TcpSiloServer::ServeConnection(int connection_fd) {
  int fd = connection_fd;
  const DeadlinePoint no_deadline = DeadlinePoint::Unbounded();
  while (!stopping_.load()) {
    Result<std::vector<uint8_t>> request =
        ReadFrame(fd, no_deadline, nullptr);
    if (!request.ok()) break;  // closed or broken: drop the connection
    std::vector<uint8_t> payload = std::move(request).ValueOrDie();
    ConstByteSpan view(payload);
    const uint64_t trace_id = StripTraceEnvelopeView(&view);
    ScopedTraceId trace_scope(trace_id);
    SpanCollector collector;
    Result<std::vector<uint8_t>> response = endpoint_->HandleMessageView(view);
    BufferPool::Default().Release(std::move(payload));
    std::vector<uint8_t> frame =
        response.ok() ? std::move(response).ValueOrDie()
                      : EncodeErrorResponse(response.status());
    AppendSpanSection(collector.Take(), &frame);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteFrame(fd, frame, no_deadline, nullptr).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    active_fds_.erase(fd);
    // Hand this thread's own handle to the retired list for the accept
    // loop to join — a thread cannot join itself. The map entry must go
    // before close(): the OS may reuse the fd for the next accept.
    const auto it = workers_.find(fd);
    if (it != workers_.end()) {
      retired_.push_back(std::move(it->second));
      workers_.erase(it);
    }
  }
  CloseFd(&fd);
}

// --- TcpNetwork: reactor-mode state ----------------------------------------

/// One in-flight call. Created on the caller's thread, then owned by the
/// silo's loop: queued, bound to a connection, finished exactly once.
struct TcpNetwork::Op {
  /// Trace-wrapped request bytes as a scatter-gather chunk list (the
  /// concatenation is the frame payload). Refs are shared with the frame
  /// writer on enqueue and kept here so a transport-error retry can
  /// re-enqueue the same bytes without copying them back.
  std::vector<BufferRef> chunks;
  size_t wire_bytes = 0;  // sum of chunk sizes, for exchange accounting
  CallCallback done;
  uint64_t timer_id = 0;  // request deadline on the loop's wheel
  bool finished = false;
  int attempts = 0;  // transport-error retries consumed
  bool is_batch = false;
  ClientConn* bound = nullptr;  // connection carrying it, once assigned
};

/// One non-blocking connection of a silo. Loop-thread only.
struct TcpNetwork::ClientConn {
  int fd = -1;
  enum State { kConnecting, kReady } state = kConnecting;
  FrameReader reader;
  FrameWriter writer;
  uint32_t interest = 0;
  uint64_t connect_timer = 0;
  bool closed = false;
  /// Requests on the wire, oldest first: response i answers entry i.
  std::deque<std::shared_ptr<Op>> inflight;
};

/// One registered silo: its event loop, the not-yet-assigned op queue,
/// its connections, and the registry instruments the legacy pool also
/// maintains (same metric families either mode).
struct TcpNetwork::SiloState {
  SiloState(int id, uint16_t silo_port) : silo_id(id), port(silo_port) {
    const std::string silo = std::to_string(silo_id);
    MetricsRegistry& registry = MetricsRegistry::Default();
    open_gauge =
        &registry.GetGauge("fra_tcp_pool_open_connections", {{"silo", silo}});
    busy_gauge =
        &registry.GetGauge("fra_tcp_pool_busy_connections", {{"silo", silo}});
    inflight_batches_gauge =
        &registry.GetGauge("fra_tcp_inflight_batches", {{"silo", silo}});
    batch_frames_total =
        &registry.GetCounter("fra_tcp_batch_frames_total", {{"silo", silo}});
    static const std::vector<double> kDepthBuckets = {1,  2,  4,   8,   16,
                                                      32, 64, 128, 256, 512};
    pipeline_depth_hist = &registry.GetHistogram(
        "fra_tcp_pipeline_depth", {{"silo", silo}}, kDepthBuckets);
    backpressure_gauge =
        &registry.GetGauge("fra_tcp_backpressure_bytes", {{"silo", silo}});
  }

  const int silo_id;
  const uint16_t port;
  EventLoop* loop = nullptr;
  bool shutdown = false;
  std::deque<std::shared_ptr<Op>> queue;
  std::vector<std::shared_ptr<ClientConn>> conns;

  Gauge* open_gauge;
  Gauge* busy_gauge;
  Gauge* inflight_batches_gauge;
  Counter* batch_frames_total;
  Histogram* pipeline_depth_hist;  // per-assignment connection depth
  Gauge* backpressure_gauge;       // unsent request bytes, all connections
};

TcpNetwork::TcpNetwork(const Options& options) : options_(options) {
  if (options_.use_reactor) {
    if (options_.reactor != nullptr) {
      reactor_ = options_.reactor;
    } else {
      owned_reactor_ = std::make_unique<Reactor>(options_.reactor_threads);
      reactor_ = owned_reactor_.get();
    }
  }
}

TcpNetwork::~TcpNetwork() {
  std::vector<SiloState*> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : silos_) states.push_back(state.get());
  }
  for (SiloState* state : states) {
    state->loop->SubmitAndWait([this, state] {
      state->shutdown = true;
      const std::vector<std::shared_ptr<ClientConn>> conns = state->conns;
      for (const std::shared_ptr<ClientConn>& conn : conns) {
        const std::deque<std::shared_ptr<Op>> inflight =
            std::move(conn->inflight);
        conn->inflight.clear();
        RemoveConn(state, conn);
        for (const std::shared_ptr<Op>& op : inflight) {
          FinishOp(state, op,
                   Status::Unavailable("tcp network is shutting down"));
        }
      }
      while (!state->queue.empty()) {
        const std::shared_ptr<Op> op = state->queue.front();
        state->queue.pop_front();
        FinishOp(state, op,
                 Status::Unavailable("tcp network is shutting down"));
      }
      UpdateGauges(state);
    });
  }
  if (owned_reactor_) owned_reactor_->Stop();

  // Legacy pools.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, pool] : pools_) {
    std::lock_guard<std::mutex> pool_lock(pool->mu);
    pool->closed = true;  // checked-out fds close at Release
    for (int fd : pool->idle) ::close(fd);
    pool->open -= pool->idle.size();
    pool->idle.clear();
    pool->UpdateGauges();
  }
}

Status TcpNetwork::AddSilo(int silo_id, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.use_reactor) {
    auto state = std::make_unique<SiloState>(silo_id, port);
    state->loop = reactor_->NextLoop();
    const auto [it, inserted] = silos_.emplace(silo_id, std::move(state));
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("silo id " + std::to_string(silo_id) +
                                   " already registered");
    }
    return Status::OK();
  }
  const auto [it, inserted] =
      pools_.emplace(silo_id, std::make_unique<SiloPool>(silo_id, port));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("silo id " + std::to_string(silo_id) +
                                 " already registered");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> TcpNetwork::CallImpl(
    int silo_id, const std::vector<uint8_t>& request) {
  if (!options_.use_reactor) return LegacyCall(silo_id, request);
  FRA_TRACE_SPAN("net.tcp.call");
  auto promise =
      std::make_shared<std::promise<Result<std::vector<uint8_t>>>>();
  std::future<Result<std::vector<uint8_t>>> future = promise->get_future();
  CallOnReactor(silo_id, request,
                [promise](Result<std::vector<uint8_t>> outcome) {
                  promise->set_value(std::move(outcome));
                });
  return future.get();
}

void TcpNetwork::CallAsyncImpl(int silo_id,
                               const std::vector<uint8_t>& request,
                               CallCallback done) {
  if (!options_.use_reactor) {
    done(LegacyCall(silo_id, request));
    return;
  }
  CallOnReactor(silo_id, request, std::move(done));
}

void TcpNetwork::CallOnReactor(int silo_id,
                               const std::vector<uint8_t>& request,
                               CallCallback done) {
  // Under an active trace, ship the trace id ahead of the payload so the
  // silo process records its spans under the same id. The caller's
  // thread holds the trace context, so the wrap happens here, not on the
  // loop.
  const uint64_t trace_id = CurrentTraceId();
  const bool is_batch =
      !request.empty() && static_cast<MessageType>(request[0]) ==
                              MessageType::kAggregateBatchRequest;
  std::vector<uint8_t> wire;
  if (trace_id != 0) {
    wire = WrapWithTraceId(trace_id, request);
  } else {
    wire = BufferPool::Default().Acquire(request.size());
    wire.insert(wire.end(), request.begin(), request.end());
  }
  std::vector<BufferRef> chunks;
  chunks.push_back(BufferRef::Wrap(std::move(wire)));
  CallChunksOnReactor(silo_id, std::move(chunks), is_batch, std::move(done));
}

void TcpNetwork::CallChunksOnReactor(int silo_id,
                                     std::vector<BufferRef> chunks,
                                     bool is_batch, CallCallback done) {
  SiloState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = silos_.find(silo_id);
    if (it != silos_.end()) state = it->second.get();
  }
  if (state == nullptr) {
    done(Status::Unavailable("no silo registered under id " +
                             std::to_string(silo_id)));
    return;
  }
  auto op = std::make_shared<Op>();
  op->chunks = std::move(chunks);
  for (const BufferRef& chunk : op->chunks) op->wire_bytes += chunk.size();
  const Status frame_size = ValidateFramePayloadSize(op->wire_bytes);
  if (!frame_size.ok()) {
    done(frame_size);
    return;
  }
  op->is_batch = is_batch;
  op->done = std::move(done);
  if (!state->loop->Submit([this, state, op] { EnqueueOp(state, op); })) {
    op->done(Status::Unavailable("tcp network is shutting down"));
  }
}

void TcpNetwork::CallAsyncChunksImpl(int silo_id,
                                     std::vector<BufferRef> chunks,
                                     CallCallback done) {
  if (!options_.use_reactor) {
    // Legacy blocking mode has no scatter path: join once and degrade.
    size_t total = 0;
    for (const BufferRef& chunk : chunks) total += chunk.size();
    std::vector<uint8_t> request = BufferPool::Default().Acquire(total);
    for (const BufferRef& chunk : chunks) {
      request.insert(request.end(), chunk.data(), chunk.data() + chunk.size());
    }
    chunks.clear();
    done(LegacyCall(silo_id, request));
    BufferPool::Default().Release(std::move(request));
    return;
  }
  // Peek the message type off the leading chunk BEFORE prepending any
  // envelope — the batch gauge keys off the application frame type.
  bool is_batch = false;
  for (const BufferRef& chunk : chunks) {
    if (chunk.empty()) continue;
    is_batch = static_cast<MessageType>(chunk.data()[0]) ==
               MessageType::kAggregateBatchRequest;
    break;
  }
  const uint64_t trace_id = CurrentTraceId();
  if (trace_id != 0) {
    std::vector<uint8_t> envelope =
        BufferPool::Default().Acquire(kTraceEnvelopeBytes);
    envelope.push_back(kTraceEnvelopeTag);
    for (int shift = 0; shift < 64; shift += 8) {
      envelope.push_back(static_cast<uint8_t>(trace_id >> shift));
    }
    chunks.insert(chunks.begin(), BufferRef::Wrap(std::move(envelope)));
  }
  CallChunksOnReactor(silo_id, std::move(chunks), is_batch, std::move(done));
}

void TcpNetwork::EnqueueOp(SiloState* state, const std::shared_ptr<Op>& op) {
  if (state->shutdown) {
    op->finished = true;
    op->done(Status::Unavailable("tcp network is shutting down"));
    return;
  }
  if (op->is_batch) {
    state->batch_frames_total->Increment();
    state->inflight_batches_gauge->Add(1.0);
  }
  if (options_.request_timeout_ms > 0) {
    // The whole call under one wheel entry: queueing, connecting,
    // sending, waiting. Expiry is terminal — a retry could not finish in
    // time — and poisons the carrying connection, whose late response
    // would desync positional matching.
    op->timer_id = state->loop->ScheduleTimerAfter(
        std::chrono::milliseconds(options_.request_timeout_ms),
        [this, state, op] {
          op->timer_id = 0;
          if (op->finished) return;
          FRA_LOG(WARN) << "request to silo " << state->silo_id
                        << " exceeded its " << options_.request_timeout_ms
                        << "ms deadline; poisoning the carrying connection";
          ClientConn* bound = op->bound;
          FinishOp(state, op,
                   Status::Unavailable(
                       "deadline exceeded: waiting for response from silo " +
                       std::to_string(state->silo_id)));
          if (bound != nullptr) {
            for (const std::shared_ptr<ClientConn>& conn : state->conns) {
              if (conn.get() == bound) {
                HandleConnFailure(
                    state, conn,
                    Status::Unavailable("connection abandoned after deadline"));
                break;
              }
            }
          }
        });
  }
  state->queue.push_back(op);
  DispatchQueue(state);
}

void TcpNetwork::FinishOp(SiloState* state, const std::shared_ptr<Op>& op,
                          Result<std::vector<uint8_t>> outcome) {
  if (op->finished) return;
  op->finished = true;
  op->bound = nullptr;
  if (op->timer_id != 0) {
    state->loop->CancelTimer(op->timer_id);
    op->timer_id = 0;
  }
  if (op->is_batch) state->inflight_batches_gauge->Add(-1.0);
  if (outcome.ok()) {
    stats_.RecordExchange(op->wire_bytes, outcome.ValueOrDie().size());
  }
  op->done(std::move(outcome));
}

void TcpNetwork::DispatchQueue(SiloState* state) {
  if (state->shutdown) return;
  const auto pop_next = [state]() -> std::shared_ptr<Op> {
    while (!state->queue.empty()) {
      std::shared_ptr<Op> op = state->queue.front();
      state->queue.pop_front();
      if (!op->finished) return op;
    }
    return nullptr;
  };
  // 1. Idle ready connections take work first (the pool-parallelism the
  //    legacy mode provided).
  for (const std::shared_ptr<ClientConn>& conn : state->conns) {
    if (state->queue.empty()) break;
    if (!conn->closed && conn->state == ClientConn::kReady &&
        conn->inflight.empty()) {
      const std::shared_ptr<Op> op = pop_next();
      if (op == nullptr) break;
      AssignOp(state, conn, op);
    }
  }
  // 2. Below the connection cap with more queued work than connections
  //    being established: dial.
  size_t connecting = 0;
  for (const std::shared_ptr<ClientConn>& conn : state->conns) {
    if (conn->state == ClientConn::kConnecting) ++connecting;
  }
  while (!state->queue.empty() &&
         state->conns.size() < options_.max_connections_per_silo &&
         connecting < state->queue.size()) {
    DialConn(state);
    if (state->shutdown || state->queue.empty()) break;
    ++connecting;
  }
  // 3. At the cap: pipeline onto the least-loaded ready connection —
  //    in-flight capacity beyond connection count is what makes 10k
  //    concurrent calls cost wheel entries instead of sockets.
  while (!state->queue.empty() &&
         state->conns.size() >= options_.max_connections_per_silo) {
    std::shared_ptr<ClientConn> best;
    for (const std::shared_ptr<ClientConn>& conn : state->conns) {
      if (conn->closed || conn->state != ClientConn::kReady) continue;
      if (conn->inflight.size() >= options_.max_pipeline_per_connection) {
        continue;
      }
      if (best == nullptr || conn->inflight.size() < best->inflight.size()) {
        best = conn;
      }
    }
    if (best == nullptr) break;  // all connecting or saturated: wait
    const std::shared_ptr<Op> op = pop_next();
    if (op == nullptr) break;
    AssignOp(state, best, op);
  }
  UpdateGauges(state);
}

void TcpNetwork::AssignOp(SiloState* state,
                          const std::shared_ptr<ClientConn>& conn,
                          const std::shared_ptr<Op>& op) {
  op->bound = conn.get();
  conn->inflight.push_back(op);
  // Depth at assignment time: how deep this request was pipelined behind
  // earlier in-flight ones on its connection.
  state->pipeline_depth_hist->Observe(
      static_cast<double>(conn->inflight.size()));
  // The writer shares the chunk refs; op->chunks keeps them for a retry.
  conn->writer.EnqueueFrameChunks(op->chunks);
  if (!conn->writer.Flush(conn->fd).ok()) {
    HandleConnFailure(state, conn,
                      Status::IOError("send failed on pooled connection"));
    return;
  }
  const uint32_t want =
      EPOLLIN | (conn->writer.has_pending() ? EPOLLOUT : 0u);
  if (want != conn->interest) {
    if (state->loop->UpdateFd(conn->fd, want).ok()) conn->interest = want;
  }
}

void TcpNetwork::DialConn(SiloState* state) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    const Status status =
        Status::IOError(std::string("socket: ") + std::strerror(errno));
    while (!state->queue.empty()) {
      const std::shared_ptr<Op> op = state->queue.front();
      state->queue.pop_front();
      FinishOp(state, op, status);
    }
    return;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(state->port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0 && errno != EINPROGRESS) {
    const Status status =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    // Dial failures fail every queued op as-is: a fresh attempt would
    // dial the same dead endpoint (legacy semantics).
    while (!state->queue.empty()) {
      const std::shared_ptr<Op> op = state->queue.front();
      state->queue.pop_front();
      FinishOp(state, op, status);
    }
    return;
  }
  auto conn = std::make_shared<ClientConn>();
  conn->fd = fd;
  conn->state = ClientConn::kConnecting;
  state->conns.push_back(conn);
  const Status registered = state->loop->RegisterFd(
      fd, EPOLLOUT,
      [this, state, conn](uint32_t events) { OnConnEvent(state, conn, events); });
  if (!registered.ok()) {
    HandleConnFailure(state, conn, registered);
    return;
  }
  conn->interest = EPOLLOUT;
  if (options_.connect_timeout_ms > 0) {
    conn->connect_timer = state->loop->ScheduleTimerAfter(
        std::chrono::milliseconds(options_.connect_timeout_ms),
        [this, state, conn] {
          conn->connect_timer = 0;
          if (conn->closed || conn->state != ClientConn::kConnecting) return;
          HandleConnFailure(
              state, conn,
              Status::Unavailable("deadline exceeded: connecting to silo " +
                                  std::to_string(state->silo_id)));
        });
  }
}

void TcpNetwork::OnConnEvent(SiloState* state,
                             const std::shared_ptr<ClientConn>& conn,
                             uint32_t events) {
  if (conn->closed) return;
  if (conn->state == ClientConn::kConnecting) {
    int error = 0;
    socklen_t error_length = sizeof(error);
    if (::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &error, &error_length) <
            0 ||
        error != 0) {
      HandleConnFailure(
          state, conn,
          Status::Unavailable(std::string("connect: ") +
                              std::strerror(error != 0 ? error : errno)));
      return;
    }
    conn->state = ClientConn::kReady;
    SetNoDelay(conn->fd);
    if (conn->connect_timer != 0) {
      state->loop->CancelTimer(conn->connect_timer);
      conn->connect_timer = 0;
    }
    if (state->loop->UpdateFd(conn->fd, EPOLLIN).ok()) {
      conn->interest = EPOLLIN;
    }
    DispatchQueue(state);
    return;
  }
  if (events & EPOLLIN) {
    bool protocol_violation = false;
    const Status drained =
        conn->reader.Drain(conn->fd, [&](std::vector<uint8_t> payload) {
          if (conn->inflight.empty()) {
            protocol_violation = true;
            return false;
          }
          const std::shared_ptr<Op> op = conn->inflight.front();
          conn->inflight.pop_front();
          op->bound = nullptr;
          FinishOp(state, op, std::move(payload));
          return true;
        });
    if (protocol_violation) {
      HandleConnFailure(state, conn,
                        Status::IOError("unexpected response frame"));
      return;
    }
    if (!drained.ok()) {
      HandleConnFailure(state, conn, drained);
      return;
    }
    DispatchQueue(state);  // completed responses freed pipeline capacity
    if (conn->closed) return;
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    HandleConnFailure(state, conn, Status::Unavailable("connection reset"));
    return;
  }
  if (events & EPOLLOUT) {
    if (!conn->writer.Flush(conn->fd).ok()) {
      HandleConnFailure(state, conn,
                        Status::IOError("send failed on pooled connection"));
      return;
    }
    const uint32_t want =
        EPOLLIN | (conn->writer.has_pending() ? EPOLLOUT : 0u);
    if (want != conn->interest) {
      if (state->loop->UpdateFd(conn->fd, want).ok()) conn->interest = want;
    }
  }
}

void TcpNetwork::HandleConnFailure(SiloState* state,
                                   const std::shared_ptr<ClientConn>& conn,
                                   const Status& status) {
  if (conn->closed) return;
  const bool was_connecting = conn->state == ClientConn::kConnecting;
  const std::deque<std::shared_ptr<Op>> inflight = std::move(conn->inflight);
  conn->inflight.clear();
  RemoveConn(state, conn);

  // A transport error on one connection usually means the silo process
  // restarted, which invalidates every pooled connection to it at once —
  // close the idle ones so retries dial fresh instead of landing on
  // another stale socket.
  std::vector<std::shared_ptr<Op>> requeue;
  for (const std::shared_ptr<Op>& op : inflight) {
    if (op->finished) continue;
    op->bound = nullptr;
    if (op->attempts == 0) {
      op->attempts = 1;
      requeue.push_back(op);
    } else {
      FinishOp(state, op,
               Status::Unavailable("silo " + std::to_string(state->silo_id) +
                                   " unreachable after reconnect: " +
                                   status.ToString()));
    }
  }
  if (!requeue.empty()) {
    const std::vector<std::shared_ptr<ClientConn>> conns = state->conns;
    for (const std::shared_ptr<ClientConn>& other : conns) {
      if (!other->closed && other->state == ClientConn::kReady &&
          other->inflight.empty()) {
        RemoveConn(state, other);
      }
    }
    for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
      state->queue.push_front(*it);
    }
  }
  if (was_connecting) {
    // Dial failure: every op waiting for a connection shares the
    // outcome — a fresh attempt would dial the same dead endpoint.
    while (!state->queue.empty()) {
      const std::shared_ptr<Op> op = state->queue.front();
      state->queue.pop_front();
      FinishOp(state, op, status);
    }
  }
  DispatchQueue(state);
}

void TcpNetwork::RemoveConn(SiloState* state,
                            const std::shared_ptr<ClientConn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->connect_timer != 0) {
    state->loop->CancelTimer(conn->connect_timer);
    conn->connect_timer = 0;
  }
  state->loop->DeregisterFd(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  state->conns.erase(
      std::remove(state->conns.begin(), state->conns.end(), conn),
      state->conns.end());
}

void TcpNetwork::UpdateGauges(SiloState* state) {
  size_t busy = 0;
  size_t unsent = 0;
  for (const std::shared_ptr<ClientConn>& conn : state->conns) {
    if (!conn->inflight.empty()) ++busy;
    unsent += conn->writer.pending_bytes();
  }
  state->open_gauge->Set(static_cast<double>(state->conns.size()));
  state->busy_gauge->Set(static_cast<double>(busy));
  state->backpressure_gauge->Set(static_cast<double>(unsent));
}

// --- TcpNetwork: legacy blocking pool --------------------------------------

TcpNetwork::SiloPool::SiloPool(int silo_id, uint16_t pool_port)
    : port(pool_port) {
  const std::string silo = std::to_string(silo_id);
  MetricsRegistry& registry = MetricsRegistry::Default();
  open_gauge =
      &registry.GetGauge("fra_tcp_pool_open_connections", {{"silo", silo}});
  busy_gauge =
      &registry.GetGauge("fra_tcp_pool_busy_connections", {{"silo", silo}});
  inflight_batches_gauge =
      &registry.GetGauge("fra_tcp_inflight_batches", {{"silo", silo}});
  batch_frames_total =
      &registry.GetCounter("fra_tcp_batch_frames_total", {{"silo", silo}});
}

void TcpNetwork::SiloPool::UpdateGauges() {
  open_gauge->Set(static_cast<double>(open));
  busy_gauge->Set(static_cast<double>(open - idle.size()));
}

Result<int> TcpNetwork::Acquire(SiloPool* pool,
                                const DeadlinePoint& deadline,
                                bool* timed_out) {
  std::unique_lock<std::mutex> lock(pool->mu);
  for (;;) {
    if (!pool->idle.empty()) {
      const int fd = pool->idle.back();
      pool->idle.pop_back();
      pool->UpdateGauges();
      return fd;
    }
    if (pool->open < options_.max_connections_per_silo) {
      ++pool->open;  // reserve the slot while dialling unlocked
      pool->UpdateGauges();
      lock.unlock();
      const DeadlinePoint connect_deadline = DeadlinePoint::Earliest(
          DeadlinePoint::After(options_.connect_timeout_ms), deadline);
      Result<int> dialled =
          DialLoopback(pool->port, connect_deadline, timed_out);
      if (!dialled.ok()) {
        lock.lock();
        --pool->open;
        pool->UpdateGauges();
        pool->released.notify_one();
      }
      return dialled;
    }
    // Pool exhausted: wait for a Release (deadline-bounded).
    if (!deadline.bounded) {
      pool->released.wait(lock);
    } else if (pool->released.wait_for(
                   lock, std::chrono::milliseconds(deadline.RemainingMs())) ==
                   std::cv_status::timeout &&
               pool->idle.empty() &&
               pool->open >= options_.max_connections_per_silo) {
      return DeadlineExceeded("waiting for a pooled connection", timed_out);
    }
  }
}

// A transport error on one connection usually means the silo process
// restarted, which invalidates every pooled connection to it at once —
// close them so the retry dials fresh instead of popping another stale fd.
void TcpNetwork::FlushIdle(SiloPool* pool) {
  std::lock_guard<std::mutex> lock(pool->mu);
  for (int fd : pool->idle) ::close(fd);
  pool->open -= pool->idle.size();
  pool->idle.clear();
  pool->UpdateGauges();
  pool->released.notify_all();
}

void TcpNetwork::Release(SiloPool* pool, int fd, bool reusable) {
  std::lock_guard<std::mutex> lock(pool->mu);
  if (reusable && !pool->closed) {
    pool->idle.push_back(fd);
  } else {
    ::close(fd);
    --pool->open;
  }
  pool->UpdateGauges();
  pool->released.notify_one();
}

Result<std::vector<uint8_t>> TcpNetwork::LegacyCall(
    int silo_id, const std::vector<uint8_t>& request) {
  FRA_TRACE_SPAN("net.tcp.call");
  // Under an active trace, ship the trace id ahead of the payload so the
  // silo process records its spans under the same trace id.
  const uint64_t trace_id = CurrentTraceId();
  const std::vector<uint8_t> wrapped =
      trace_id != 0 ? WrapWithTraceId(trace_id, request)
                    : std::vector<uint8_t>();
  const std::vector<uint8_t>& wire = trace_id != 0 ? wrapped : request;
  FRA_RETURN_NOT_OK(ValidateFramePayloadSize(wire.size()));
  SiloPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pools_.find(silo_id);
    if (it == pools_.end()) {
      return Status::Unavailable("no silo registered under id " +
                                 std::to_string(silo_id));
    }
    pool = it->second.get();
  }

  // Coalesced-frame accounting: peek the ORIGINAL payload's type (the
  // trace envelope would hide it) and hold the in-flight gauge across
  // every return path of the exchange below.
  struct BatchInflight {
    Gauge* gauge = nullptr;
    ~BatchInflight() {
      if (gauge != nullptr) gauge->Add(-1.0);
    }
  } batch_inflight;
  if (!request.empty() && static_cast<MessageType>(request[0]) ==
                              MessageType::kAggregateBatchRequest) {
    pool->batch_frames_total->Increment();
    pool->inflight_batches_gauge->Add(1.0);
    batch_inflight.gauge = pool->inflight_batches_gauge;
  }

  const DeadlinePoint deadline =
      DeadlinePoint::After(options_.request_timeout_ms);
  // Try a pooled connection once; on a transport error reconnect and
  // retry once (the silo process may have restarted between calls). A
  // deadline expiry is terminal: retrying cannot finish in time.
  Status last_failure = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool timed_out = false;
    Result<int> acquired = Acquire(pool, deadline, &timed_out);
    if (!acquired.ok()) {
      // Dial failures (connection refused, timeout) are returned as-is:
      // a fresh attempt would dial the same dead endpoint.
      return acquired.status();
    }
    const int fd = std::move(acquired).ValueOrDie();

    const Status written = WriteFrame(fd, wire, deadline, &timed_out);
    if (!written.ok()) {
      Release(pool, fd, /*reusable=*/false);
      if (timed_out) return written;
      FRA_LOG(INFO) << "send to silo " << silo_id
                    << " failed on a pooled connection ("
                    << written.ToString() << "); reconnecting to retry once";
      last_failure = written;
      FlushIdle(pool);
      continue;  // reconnect and retry
    }
    Result<std::vector<uint8_t>> response =
        ReadFrame(fd, deadline, &timed_out);
    if (!response.ok()) {
      // A timed-out connection is never pooled again: the silo may still
      // send the stale response, which would poison the next exchange.
      Release(pool, fd, /*reusable=*/false);
      if (timed_out) return response.status();
      last_failure = response.status();
      FlushIdle(pool);
      continue;
    }
    Release(pool, fd, /*reusable=*/true);
    stats_.RecordExchange(wire.size(), response->size());
    return response;
  }
  return Status::Unavailable("silo " + std::to_string(silo_id) +
                             " unreachable after reconnect: " +
                             last_failure.ToString());
}

size_t TcpNetwork::num_silos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.use_reactor ? silos_.size() : pools_.size();
}

std::vector<int> TcpNetwork::silo_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids;
  if (options_.use_reactor) {
    ids.reserve(silos_.size());
    for (const auto& [id, state] : silos_) ids.push_back(id);
  } else {
    ids.reserve(pools_.size());
    for (const auto& [id, pool] : pools_) ids.push_back(id);
  }
  return ids;
}

}  // namespace fra
