#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <string>

#include "net/message.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace fra {
namespace {

// Frames above this are rejected before allocation (a corrupted length
// prefix must not cause a huge allocation). Grid payloads for city-scale
// grids are a few MB; 256 MB is far beyond any legitimate message.
constexpr uint32_t kMaxFrameBytes = 256u << 20;

Status WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::Unavailable("peer closed connection");
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  FRA_RETURN_NOT_OK(WriteAll(fd, &length, sizeof(length)));
  if (length > 0) {
    FRA_RETURN_NOT_OK(WriteAll(fd, payload.data(), payload.size()));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFrame(int fd) {
  uint32_t length = 0;
  FRA_RETURN_NOT_OK(ReadAll(fd, &length, sizeof(length)));
  if (length > kMaxFrameBytes) {
    return Status::OutOfRange("frame exceeds limit");
  }
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    FRA_RETURN_NOT_OK(ReadAll(fd, payload.data(), payload.size()));
  }
  return payload;
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

// --- TcpSiloServer ---------------------------------------------------------

Result<std::unique_ptr<TcpSiloServer>> TcpSiloServer::Start(
    SiloEndpoint* endpoint, uint16_t port) {
  if (endpoint == nullptr) {
    return Status::InvalidArgument("null endpoint");
  }
  auto server = std::unique_ptr<TcpSiloServer>(new TcpSiloServer());
  server->endpoint_ = endpoint;

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t address_length = sizeof(address);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<sockaddr*>(&address),
                    &address_length) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  server->port_ = ntohs(address.sin_port);
  if (::listen(server->listen_fd_, 64) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

TcpSiloServer::~TcpSiloServer() { Stop(); }

void TcpSiloServer::Stop() {
  if (stopping_.exchange(true)) return;
  // Shut the listening socket down; accept() wakes with an error.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(&listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Wake workers blocked in recv() on live connections; each closes
    // its own fd on exit.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void TcpSiloServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int connection_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (connection_fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listening socket broken; stop serving
    }
    const int enable = 1;
    ::setsockopt(connection_fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                 sizeof(enable));
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load()) {
      ::close(connection_fd);
      return;
    }
    active_fds_.insert(connection_fd);
    workers_.emplace_back([this, connection_fd] {
      ServeConnection(connection_fd);
    });
  }
}

void TcpSiloServer::ServeConnection(int connection_fd) {
  int fd = connection_fd;
  while (!stopping_.load()) {
    Result<std::vector<uint8_t>> request = ReadFrame(fd);
    if (!request.ok()) break;  // closed or broken: drop the connection
    // A request may arrive inside a trace envelope; the carried trace id
    // becomes this thread's context so silo-side spans correlate with the
    // provider-side ones (0 when the envelope is absent).
    std::vector<uint8_t> payload = std::move(request).ValueOrDie();
    const uint64_t trace_id = StripTraceEnvelope(&payload);
    ScopedTraceId trace_scope(trace_id);
    Result<std::vector<uint8_t>> response =
        endpoint_->HandleMessage(payload);
    const std::vector<uint8_t> frame =
        response.ok() ? std::move(response).ValueOrDie()
                      : EncodeErrorResponse(response.status());
    // Count before replying so a client that has decoded the response
    // already observes the increment.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteFrame(fd, frame).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    active_fds_.erase(fd);
  }
  CloseFd(&fd);
}

// --- TcpNetwork ------------------------------------------------------------

TcpNetwork::~TcpNetwork() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, connection] : connections_) {
    std::lock_guard<std::mutex> connection_lock(connection->mu);
    CloseFd(&connection->fd);
  }
}

Status TcpNetwork::AddSilo(int silo_id, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto connection = std::make_unique<Connection>();
  connection->port = port;
  const auto [it, inserted] =
      connections_.emplace(silo_id, std::move(connection));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("silo id " + std::to_string(silo_id) +
                                 " already registered");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> TcpNetwork::Call(
    int silo_id, const std::vector<uint8_t>& request) {
  FRA_TRACE_SPAN("net.tcp.call");
  // Under an active trace, ship the trace id ahead of the payload so the
  // silo process records its spans under the same id.
  const uint64_t trace_id = CurrentTraceId();
  const std::vector<uint8_t> wrapped =
      trace_id != 0 ? WrapWithTraceId(trace_id, request)
                    : std::vector<uint8_t>();
  const std::vector<uint8_t>& wire = trace_id != 0 ? wrapped : request;
  Connection* connection = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = connections_.find(silo_id);
    if (it == connections_.end()) {
      return Status::Unavailable("no silo registered under id " +
                                 std::to_string(silo_id));
    }
    connection = it->second.get();
  }

  std::lock_guard<std::mutex> connection_lock(connection->mu);
  // Try the existing connection once; on failure reconnect and retry once
  // (the silo process may have restarted between calls).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (connection->fd < 0) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        return Status::IOError(std::string("socket: ") +
                               std::strerror(errno));
      }
      sockaddr_in address{};
      address.sin_family = AF_INET;
      address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      address.sin_port = htons(connection->port);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                    sizeof(address)) < 0) {
        const Status status = Status::Unavailable(
            std::string("connect: ") + std::strerror(errno));
        ::close(fd);
        return status;
      }
      const int enable = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
      connection->fd = fd;
    }

    const Status written = WriteFrame(connection->fd, wire);
    if (!written.ok()) {
      CloseFd(&connection->fd);
      continue;  // reconnect and retry
    }
    Result<std::vector<uint8_t>> response = ReadFrame(connection->fd);
    if (!response.ok()) {
      CloseFd(&connection->fd);
      continue;
    }
    stats_.RecordExchange(wire.size(), response->size());
    MetricsRegistry::Default()
        .GetCounter("fra_silo_requests_total",
                    {{"silo", std::to_string(silo_id)},
                     {"transport", "tcp"}})
        .Increment();
    return response;
  }
  return Status::Unavailable("silo " + std::to_string(silo_id) +
                             " unreachable after reconnect");
}

size_t TcpNetwork::num_silos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size();
}

std::vector<int> TcpNetwork::silo_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, connection] : connections_) ids.push_back(id);
  return ids;
}

}  // namespace fra
