#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include <algorithm>
#include <string>

#include "net/message.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace fra {

/// A fixed point in time every socket wait measures against; the
/// never-expiring default means "block forever" (server-side reads,
/// request_timeout_ms <= 0).
struct DeadlinePoint {
  std::chrono::steady_clock::time_point at;
  bool bounded = false;

  static DeadlinePoint After(int ms) {
    DeadlinePoint deadline;
    if (ms > 0) {
      deadline.at =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
      deadline.bounded = true;
    }
    return deadline;
  }

  static DeadlinePoint Unbounded() { return DeadlinePoint{}; }

  /// The earlier of two deadlines (an unbounded one never wins).
  static DeadlinePoint Earliest(const DeadlinePoint& a,
                                const DeadlinePoint& b) {
    if (!a.bounded) return b;
    if (!b.bounded) return a;
    return a.at < b.at ? a : b;
  }

  /// Remaining milliseconds, clamped to 0; -1 when unbounded (the poll
  /// convention for "wait forever").
  int RemainingMs() const {
    if (!bounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - std::chrono::steady_clock::now());
    return std::max<int>(0, static_cast<int>(left.count()));
  }
};

namespace {

// Frames above this are rejected before allocation (a corrupted length
// prefix must not cause a huge allocation). Grid payloads for city-scale
// grids are a few MB; 256 MB is far beyond any legitimate message.
constexpr uint32_t kMaxFrameBytes = 256u << 20;

Status DeadlineExceeded(const char* what, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = true;
  return Status::Unavailable(std::string("deadline exceeded: ") + what);
}

// Blocks until `fd` is ready for `events` or `deadline` passes. A
// positive return from poll() only promises progress (some readable
// bytes / some buffer space), so callers loop.
Status WaitReady(int fd, short events, const DeadlinePoint& deadline,
                 const char* what, bool* timed_out) {
  for (;;) {
    pollfd entry{};
    entry.fd = fd;
    entry.events = events;
    const int n = ::poll(&entry, 1, deadline.RemainingMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) return DeadlineExceeded(what, timed_out);
    // POLLERR/POLLHUP fall through: the pending recv/send/getsockopt
    // reports the concrete error.
    return Status::OK();
  }
}

Status WriteAll(int fd, const void* data, size_t size,
                const DeadlinePoint& deadline, bool* timed_out) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    FRA_RETURN_NOT_OK(
        WaitReady(fd, POLLOUT, deadline, "waiting to send", timed_out));
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, void* data, size_t size, const DeadlinePoint& deadline,
               bool* timed_out) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    FRA_RETURN_NOT_OK(
        WaitReady(fd, POLLIN, deadline, "waiting for response", timed_out));
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::Unavailable("peer closed connection");
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Frame layout: u32 length in network byte order (big-endian), then
// `length` payload bytes — see docs/wire_protocol.md.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload,
                  const DeadlinePoint& deadline, bool* timed_out) {
  const uint32_t length = htonl(static_cast<uint32_t>(payload.size()));
  FRA_RETURN_NOT_OK(WriteAll(fd, &length, sizeof(length), deadline,
                             timed_out));
  if (!payload.empty()) {
    FRA_RETURN_NOT_OK(
        WriteAll(fd, payload.data(), payload.size(), deadline, timed_out));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFrame(int fd, const DeadlinePoint& deadline,
                                       bool* timed_out) {
  uint32_t wire_length = 0;
  FRA_RETURN_NOT_OK(
      ReadAll(fd, &wire_length, sizeof(wire_length), deadline, timed_out));
  const uint32_t length = ntohl(wire_length);
  if (length > kMaxFrameBytes) {
    return Status::OutOfRange("frame exceeds limit");
  }
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    FRA_RETURN_NOT_OK(
        ReadAll(fd, payload.data(), payload.size(), deadline, timed_out));
  }
  return payload;
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// Non-blocking connect to 127.0.0.1:port bounded by `deadline`.
Result<int> DialLoopback(uint16_t port, const DeadlinePoint& deadline,
                         bool* timed_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const Status status =
        Status::IOError(std::string("fcntl: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) <
      0 && errno != EINPROGRESS) {
    const Status status =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const Status ready =
      WaitReady(fd, POLLOUT, deadline, "connecting", timed_out);
  if (!ready.ok()) {
    ::close(fd);
    return ready;
  }
  int error = 0;
  socklen_t error_length = sizeof(error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_length) < 0 ||
      error != 0) {
    const Status status = Status::Unavailable(
        std::string("connect: ") + std::strerror(error != 0 ? error : errno));
    ::close(fd);
    return status;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

}  // namespace

// --- TcpSiloServer ---------------------------------------------------------

Result<std::unique_ptr<TcpSiloServer>> TcpSiloServer::Start(
    SiloEndpoint* endpoint, uint16_t port) {
  if (endpoint == nullptr) {
    return Status::InvalidArgument("null endpoint");
  }
  auto server = std::unique_ptr<TcpSiloServer>(new TcpSiloServer());
  server->endpoint_ = endpoint;

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t address_length = sizeof(address);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<sockaddr*>(&address),
                    &address_length) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  server->port_ = ntohs(address.sin_port);
  if (::listen(server->listen_fd_, 64) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

TcpSiloServer::~TcpSiloServer() { Stop(); }

void TcpSiloServer::Stop() {
  if (stopping_.exchange(true)) return;
  // Shut the listening socket down; accept() wakes with an error.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(&listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Wake workers blocked in recv() on live connections; each closes
    // its own fd on exit.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void TcpSiloServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int connection_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (connection_fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listening socket broken; stop serving
    }
    const int enable = 1;
    ::setsockopt(connection_fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                 sizeof(enable));
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load()) {
      ::close(connection_fd);
      return;
    }
    active_fds_.insert(connection_fd);
    workers_.emplace_back([this, connection_fd] {
      ServeConnection(connection_fd);
    });
  }
}

void TcpSiloServer::ServeConnection(int connection_fd) {
  int fd = connection_fd;
  const DeadlinePoint no_deadline = DeadlinePoint::Unbounded();
  while (!stopping_.load()) {
    Result<std::vector<uint8_t>> request =
        ReadFrame(fd, no_deadline, nullptr);
    if (!request.ok()) break;  // closed or broken: drop the connection
    // A request may arrive inside a trace envelope; the carried trace id
    // becomes this thread's context so silo-side spans correlate with the
    // provider-side ones (0 when the envelope is absent).
    std::vector<uint8_t> payload = std::move(request).ValueOrDie();
    const uint64_t trace_id = StripTraceEnvelope(&payload);
    ScopedTraceId trace_scope(trace_id);
    Result<std::vector<uint8_t>> response =
        endpoint_->HandleMessage(payload);
    const std::vector<uint8_t> frame =
        response.ok() ? std::move(response).ValueOrDie()
                      : EncodeErrorResponse(response.status());
    // Count before replying so a client that has decoded the response
    // already observes the increment.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteFrame(fd, frame, no_deadline, nullptr).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    active_fds_.erase(fd);
  }
  CloseFd(&fd);
}

// --- TcpNetwork ------------------------------------------------------------

TcpNetwork::SiloPool::SiloPool(int silo_id, uint16_t pool_port)
    : port(pool_port) {
  const std::string silo = std::to_string(silo_id);
  MetricsRegistry& registry = MetricsRegistry::Default();
  open_gauge =
      &registry.GetGauge("fra_tcp_pool_open_connections", {{"silo", silo}});
  busy_gauge =
      &registry.GetGauge("fra_tcp_pool_busy_connections", {{"silo", silo}});
  inflight_batches_gauge =
      &registry.GetGauge("fra_tcp_inflight_batches", {{"silo", silo}});
  batch_frames_total =
      &registry.GetCounter("fra_tcp_batch_frames_total", {{"silo", silo}});
}

void TcpNetwork::SiloPool::UpdateGauges() {
  open_gauge->Set(static_cast<double>(open));
  busy_gauge->Set(static_cast<double>(open - idle.size()));
}

TcpNetwork::~TcpNetwork() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, pool] : pools_) {
    std::lock_guard<std::mutex> pool_lock(pool->mu);
    pool->closed = true;  // checked-out fds close at Release
    for (int fd : pool->idle) ::close(fd);
    pool->open -= pool->idle.size();
    pool->idle.clear();
    pool->UpdateGauges();
  }
}

Status TcpNetwork::AddSilo(int silo_id, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      pools_.emplace(silo_id, std::make_unique<SiloPool>(silo_id, port));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("silo id " + std::to_string(silo_id) +
                                 " already registered");
  }
  return Status::OK();
}

Result<int> TcpNetwork::Acquire(SiloPool* pool,
                                const DeadlinePoint& deadline,
                                bool* timed_out) {
  std::unique_lock<std::mutex> lock(pool->mu);
  for (;;) {
    if (!pool->idle.empty()) {
      const int fd = pool->idle.back();
      pool->idle.pop_back();
      pool->UpdateGauges();
      return fd;
    }
    if (pool->open < options_.max_connections_per_silo) {
      ++pool->open;  // reserve the slot while dialling unlocked
      pool->UpdateGauges();
      lock.unlock();
      const DeadlinePoint connect_deadline = DeadlinePoint::Earliest(
          DeadlinePoint::After(options_.connect_timeout_ms), deadline);
      Result<int> dialled =
          DialLoopback(pool->port, connect_deadline, timed_out);
      if (!dialled.ok()) {
        lock.lock();
        --pool->open;
        pool->UpdateGauges();
        pool->released.notify_one();
      }
      return dialled;
    }
    // Pool exhausted: wait for a Release (deadline-bounded).
    if (!deadline.bounded) {
      pool->released.wait(lock);
    } else if (pool->released.wait_for(
                   lock, std::chrono::milliseconds(deadline.RemainingMs())) ==
                   std::cv_status::timeout &&
               pool->idle.empty() &&
               pool->open >= options_.max_connections_per_silo) {
      return DeadlineExceeded("waiting for a pooled connection", timed_out);
    }
  }
}

// A transport error on one connection usually means the silo process
// restarted, which invalidates every pooled connection to it at once —
// close them so the retry dials fresh instead of popping another stale fd.
void TcpNetwork::FlushIdle(SiloPool* pool) {
  std::lock_guard<std::mutex> lock(pool->mu);
  for (int fd : pool->idle) ::close(fd);
  pool->open -= pool->idle.size();
  pool->idle.clear();
  pool->UpdateGauges();
  pool->released.notify_all();
}

void TcpNetwork::Release(SiloPool* pool, int fd, bool reusable) {
  std::lock_guard<std::mutex> lock(pool->mu);
  if (reusable && !pool->closed) {
    pool->idle.push_back(fd);
  } else {
    ::close(fd);
    --pool->open;
  }
  pool->UpdateGauges();
  pool->released.notify_one();
}

Result<std::vector<uint8_t>> TcpNetwork::CallImpl(
    int silo_id, const std::vector<uint8_t>& request) {
  FRA_TRACE_SPAN("net.tcp.call");
  // Under an active trace, ship the trace id ahead of the payload so the
  // silo process records its spans under the same id.
  const uint64_t trace_id = CurrentTraceId();
  const std::vector<uint8_t> wrapped =
      trace_id != 0 ? WrapWithTraceId(trace_id, request)
                    : std::vector<uint8_t>();
  const std::vector<uint8_t>& wire = trace_id != 0 ? wrapped : request;
  SiloPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pools_.find(silo_id);
    if (it == pools_.end()) {
      return Status::Unavailable("no silo registered under id " +
                                 std::to_string(silo_id));
    }
    pool = it->second.get();
  }

  // Coalesced-frame accounting: peek the ORIGINAL payload's type (the
  // trace envelope would hide it) and hold the in-flight gauge across
  // every return path of the exchange below.
  struct BatchInflight {
    Gauge* gauge = nullptr;
    ~BatchInflight() {
      if (gauge != nullptr) gauge->Add(-1.0);
    }
  } batch_inflight;
  if (!request.empty() && static_cast<MessageType>(request[0]) ==
                              MessageType::kAggregateBatchRequest) {
    pool->batch_frames_total->Increment();
    pool->inflight_batches_gauge->Add(1.0);
    batch_inflight.gauge = pool->inflight_batches_gauge;
  }

  const DeadlinePoint deadline =
      DeadlinePoint::After(options_.request_timeout_ms);
  // Try a pooled connection once; on a transport error reconnect and
  // retry once (the silo process may have restarted between calls). A
  // deadline expiry is terminal: retrying cannot finish in time.
  Status last_failure = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool timed_out = false;
    Result<int> acquired = Acquire(pool, deadline, &timed_out);
    if (!acquired.ok()) {
      // Dial failures (connection refused, timeout) are returned as-is:
      // a fresh attempt would dial the same dead endpoint.
      return acquired.status();
    }
    const int fd = std::move(acquired).ValueOrDie();

    const Status written = WriteFrame(fd, wire, deadline, &timed_out);
    if (!written.ok()) {
      Release(pool, fd, /*reusable=*/false);
      if (timed_out) return written;
      last_failure = written;
      FlushIdle(pool);
      continue;  // reconnect and retry
    }
    Result<std::vector<uint8_t>> response =
        ReadFrame(fd, deadline, &timed_out);
    if (!response.ok()) {
      // A timed-out connection is never pooled again: the silo may still
      // send the stale response, which would poison the next exchange.
      Release(pool, fd, /*reusable=*/false);
      if (timed_out) return response.status();
      last_failure = response.status();
      FlushIdle(pool);
      continue;
    }
    Release(pool, fd, /*reusable=*/true);
    stats_.RecordExchange(wire.size(), response->size());
    return response;
  }
  return Status::Unavailable("silo " + std::to_string(silo_id) +
                             " unreachable after reconnect: " +
                             last_failure.ToString());
}

size_t TcpNetwork::num_silos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pools_.size();
}

std::vector<int> TcpNetwork::silo_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids;
  ids.reserve(pools_.size());
  for (const auto& [id, pool] : pools_) ids.push_back(id);
  return ids;
}

}  // namespace fra
