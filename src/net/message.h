#ifndef FRA_NET_MESSAGE_H_
#define FRA_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "geo/range.h"
#include "util/buffer.h"
#include "util/result.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/trace.h"

namespace fra {

/// Hard upper bound on a single wire frame's payload, enforced on BOTH
/// sides of a connection. Receive side: a length prefix above this is
/// treated as a protocol violation and the connection dropped. Send
/// side: ValidateFramePayloadSize rejects the payload before any bytes
/// hit the socket — the length prefix is a u32, so an unchecked payload
/// over 4 GiB would be silently truncated by the cast and desync the
/// stream for every later frame on the connection.
constexpr uint32_t kMaxFrameBytes = 256u << 20;  // 256 MiB

/// OK when `payload_size` fits in one frame; OutOfRange otherwise.
Status ValidateFramePayloadSize(size_t payload_size);

/// Wire-level message kinds exchanged between the service provider and
/// data silos. Every provider<->silo interaction is one request/response
/// pair of these, serialised through BinaryWriter so that the measured
/// communication cost is real encoded bytes.
enum class MessageType : uint8_t {
  // Provider -> silo.
  kBuildGridRequest = 1,    // Alg. 1: ship your grid index
  kAggregateRequest = 2,    // local range aggregation (exact / LSR / OPTA)
  kCellVectorRequest = 3,   // NonIID-est: per-boundary-cell contributions
  kGridDeltaRequest = 4,    // delta sync: cells changed since last sync
  kAggregateBatchRequest = 5,  // coalesced: n embedded requests, one frame
  // Silo -> provider.
  kGridPayloadResponse = 17,
  kSummaryResponse = 18,
  kCellVectorResponse = 19,
  kErrorResponse = 20,
  kGridDeltaResponse = 21,
  kAggregateBatchResponse = 22,  // n embedded responses, positional
};

/// How a silo should answer an aggregate request locally.
enum class LocalQueryMode : uint8_t {
  kExact = 0,      // aggregate R-tree T_0 (EXACT baseline & plain estimators)
  kLsr = 1,        // LSR-Forest, Alg. 6
  kHistogram = 2,  // equi-depth histogram (OPTA baseline)
};

/// Trace envelope: when the provider executes a query under an active
/// trace (see util/trace.h), every request it sends is prefixed with
/// `u8 0xFA ‖ u64 trace_id` so the silo side records its spans under the
/// same trace id. 0xFA is reserved — it is not a MessageType — and the
/// envelope is optional: transports strip it before handing the payload
/// to the silo, and a payload that does not start with 0xFA simply has no
/// trace context (trace id 0). Responses are never wrapped; the provider
/// correlates them by the request/response pairing of the exchange.
constexpr uint8_t kTraceEnvelopeTag = 0xFA;
constexpr size_t kTraceEnvelopeBytes = 1 + sizeof(uint64_t);

/// Prefixes `payload` with the trace envelope.
std::vector<uint8_t> WrapWithTraceId(uint64_t trace_id,
                                     const std::vector<uint8_t>& payload);

/// If `payload` starts with a complete trace envelope, removes it and
/// returns the carried trace id; otherwise leaves the payload untouched
/// and returns 0. Never fails: a truncated envelope (< 9 bytes) is left
/// in place for the message decoder to reject.
uint64_t StripTraceEnvelope(std::vector<uint8_t>* payload);

/// Borrowed-view variant: advances `*payload` past the envelope instead
/// of erasing bytes, so transports can strip the envelope without the
/// memmove of the bytes behind it. The underlying buffer must outlive
/// the view.
uint64_t StripTraceEnvelopeView(ConstByteSpan* payload);

/// Span section: the reverse half of trace propagation. A silo that
/// recorded spans while serving a traced request ships them back as a
/// TOLERANT TRAILING SECTION on the response payload (single and batch
/// frames alike):
///
///   response_payload ‖ records_blob ‖ u32 blob_bytes ‖ u64 magic
///
/// where records_blob is `u32 count` followed by `count` records of
/// `u64 trace_id ‖ string name ‖ u64 start_nanos ‖ u64 duration_nanos`
/// (BinaryWriter little-endian encoding; SpanRecord::tag never crosses
/// the wire — the provider tags at ingest, since only it knows which
/// silo it called). The section is self-describing from the END of the
/// payload, so transports strip it before any message decoder runs and
/// old-format frames (no section) decode unchanged: a payload that does
/// not end with the magic — or whose claimed blob fails to parse
/// exactly — is simply a response without spans.
constexpr uint64_t kSpanSectionMagic = 0x4652415350414E31ULL;  // "FRASPAN1"
/// Footer bytes following the records blob (u32 blob_bytes + u64 magic).
constexpr size_t kSpanSectionFooterBytes = sizeof(uint32_t) + sizeof(uint64_t);

/// Appends the span section carrying `records` to `*payload` (no-op when
/// `records` is empty).
void AppendSpanSection(const std::vector<SpanRecord>& records,
                       std::vector<uint8_t>* payload);

/// If `*payload` ends with a well-formed span section, strips it and
/// returns the carried records; otherwise leaves the payload untouched
/// and returns an empty vector. Never fails — a malformed or absent
/// section just means "no spans".
std::vector<SpanRecord> ExtractSpanSection(std::vector<uint8_t>* payload);

/// Serialises a query range (1 tag byte + coordinates).
void SerializeRange(const QueryRange& range, BinaryWriter* writer);
Status DeserializeRange(BinaryReader* reader, QueryRange* out);

/// Request for a local range aggregation answer.
struct AggregateRequest {
  QueryRange range;
  LocalQueryMode mode = LocalQueryMode::kExact;
  // LSR parameters (ignored unless mode == kLsr).
  double epsilon = 0.1;
  double delta = 0.01;
  double sum0 = 0.0;

  std::vector<uint8_t> Encode() const;
  static Result<AggregateRequest> Decode(BinaryReader* reader);
};

/// Request for the NonIID-est per-cell contribution vector: the silo
/// reports, for every grid cell intersecting the *boundary* of the range,
/// the aggregate of its own objects inside cell ∩ range.
struct CellVectorRequest {
  QueryRange range;
  LocalQueryMode mode = LocalQueryMode::kExact;  // kExact or kLsr
  double epsilon = 0.1;
  double delta = 0.01;
  double sum0 = 0.0;
  /// false (default): boundary cells only (the Sec. 4.2.2 communication
  /// optimisation). true: every intersecting cell, i.e. the unoptimised
  /// Alg. 3 vector — kept for the ablation bench.
  bool full_vector = false;

  std::vector<uint8_t> Encode() const;
  static Result<CellVectorRequest> Decode(BinaryReader* reader);
};

/// One boundary cell's contribution in a CellVectorResponse.
struct CellContribution {
  uint32_t cell_id = 0;
  AggregateSummary summary;
};

/// Reads the type tag without consuming the rest of the payload.
Result<MessageType> PeekMessageType(const std::vector<uint8_t>& payload);
Result<MessageType> PeekMessageType(ConstByteSpan payload);

/// Encoders for the response kinds.
std::vector<uint8_t> EncodeSummaryResponse(const AggregateSummary& summary);
std::vector<uint8_t> EncodeCellVectorResponse(
    const std::vector<CellContribution>& cells);
std::vector<uint8_t> EncodeGridPayloadResponse(
    const std::vector<uint8_t>& grid_bytes);
std::vector<uint8_t> EncodeErrorResponse(const Status& status);

/// Decoders; a kErrorResponse payload decodes into its carried Status.
Result<AggregateSummary> DecodeSummaryResponse(
    const std::vector<uint8_t>& payload);
Result<std::vector<CellContribution>> DecodeCellVectorResponse(
    const std::vector<uint8_t>& payload);
Result<std::vector<uint8_t>> DecodeGridPayloadResponse(
    const std::vector<uint8_t>& payload);

/// Encodes a plain grid-build request (type tag only).
std::vector<uint8_t> EncodeBuildGridRequest();

/// Batch frames (request coalescing): `n` independently encoded messages
/// packed into one wire exchange. Entries are opaque length-prefixed
/// payloads — each request entry is a complete encoded request and each
/// response entry a complete encoded response, so per-entry failures
/// travel as embedded kErrorResponse entries and one bad sub-query cannot
/// poison its batch. Entry order is positional: response entry i answers
/// request entry i. Batches must not nest.
std::vector<uint8_t> EncodeBatchRequest(
    const std::vector<std::vector<uint8_t>>& entries);
Result<std::vector<std::vector<uint8_t>>> DecodeBatchRequest(
    const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeBatchResponse(
    const std::vector<std::vector<uint8_t>>& entries);
Result<std::vector<std::vector<uint8_t>>> DecodeBatchResponse(
    const std::vector<uint8_t>& payload);

/// Borrowed-view batch decoders: each returned span aliases `payload`'s
/// entry table in place (no per-entry copy) and is valid only while the
/// backing payload lives. The silo's batched dispatch and the
/// coalescer's response scatter both parse entries this way.
Result<std::vector<ConstByteSpan>> DecodeBatchRequestViews(
    ConstByteSpan payload);
Result<std::vector<ConstByteSpan>> DecodeBatchResponseViews(
    ConstByteSpan payload);

/// Delta sync (streaming ingest): the provider polls a silo for the grid
/// cells that changed since the last poll; the silo answers with their
/// full current summaries (idempotent replacement on the provider side).
///
/// The response carries a trailing `u64 data_version` — the silo's
/// monotonic ingest counter — so the provider can stamp its caches with
/// the update it just observed (docs/caching.md). The field is
/// backward/forward compatible: a decoder reads it only when the bytes
/// are present (`*data_version` = 0 otherwise), and pre-versioned
/// decoders ignore the trailing bytes.
std::vector<uint8_t> EncodeGridDeltaRequest();
std::vector<uint8_t> EncodeGridDeltaResponse(
    const std::vector<CellContribution>& cells, uint64_t data_version = 0);
Result<std::vector<CellContribution>> DecodeGridDeltaResponse(
    const std::vector<uint8_t>& payload, uint64_t* data_version = nullptr);

}  // namespace fra

#endif  // FRA_NET_MESSAGE_H_
