#include "net/network.h"

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "net/message.h"
#include "util/timer.h"
#include "util/trace.h"

namespace fra {

Network::SiloInstruments Network::InstrumentsFor(int silo_id) {
  std::lock_guard<std::mutex> lock(instruments_mu_);
  const auto it = instruments_.find(silo_id);
  if (it != instruments_.end()) return it->second;
  const MetricLabels labels = {{"silo", std::to_string(silo_id)},
                               {"transport", transport_name()}};
  MetricsRegistry& registry = MetricsRegistry::Default();
  const SiloInstruments instruments{
      &registry.GetCounter("fra_silo_requests_total", labels),
      &registry.GetCounter("fra_silo_timeouts_total", labels)};
  return instruments_.emplace(silo_id, instruments).first->second;
}

// The transport-agnostic accounting point (every Call and CallAsync of
// both substrates lands here): successful round trips count toward
// fra_silo_requests_total, and any Unavailable outcome — deadline
// expiry, refused connection, hung or unregistered silo — toward
// fra_silo_timeouts_total.
void Network::RecordOutcome(int silo_id, const Status& status,
                            double micros) {
  const SiloInstruments instruments = InstrumentsFor(silo_id);
  if (status.ok()) {
    instruments.requests_total->Increment();
  } else if (status.IsUnavailable()) {
    instruments.timeouts_total->Increment();
  }
  if (SiloCallObserver* observer = call_observer()) {
    observer->OnSiloCall(silo_id, status, micros);
  }
}

// Responses are stripped of their span section BEFORE any decoder sees
// the payload, so the wire extension is invisible to the message layer;
// ingestion is a no-op while the provider-side Tracer is disabled.
void Network::IngestResponseSpans(int silo_id,
                                  std::vector<uint8_t>* response) {
  std::vector<SpanRecord> records = ExtractSpanSection(response);
  if (!records.empty()) {
    Tracer::Get().Ingest(std::move(records),
                         "silo=" + std::to_string(silo_id));
  }
}

Result<std::vector<uint8_t>> Network::Call(
    int silo_id, const std::vector<uint8_t>& request) {
  Timer timer;
  Result<std::vector<uint8_t>> response = CallImpl(silo_id, request);
  if (response.ok()) IngestResponseSpans(silo_id, &*response);
  RecordOutcome(silo_id, response.status(), timer.ElapsedMicros());
  return response;
}

void Network::CallAsync(int silo_id, const std::vector<uint8_t>& request,
                        CallCallback done) {
  const auto start = std::chrono::steady_clock::now();
  CallAsyncImpl(
      silo_id, request,
      [this, silo_id, start,
       done = std::move(done)](Result<std::vector<uint8_t>> response) {
        const double micros =
            std::chrono::duration_cast<std::chrono::duration<double,
                                                             std::micro>>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (response.ok()) IngestResponseSpans(silo_id, &*response);
        RecordOutcome(silo_id, response.status(), micros);
        done(std::move(response));
      });
}

void Network::CallAsyncImpl(int silo_id, const std::vector<uint8_t>& request,
                            CallCallback done) {
  done(CallImpl(silo_id, request));
}

void Network::CallAsyncChunks(int silo_id, std::vector<BufferRef> chunks,
                              CallCallback done) {
  const auto start = std::chrono::steady_clock::now();
  CallAsyncChunksImpl(
      silo_id, std::move(chunks),
      [this, silo_id, start,
       done = std::move(done)](Result<std::vector<uint8_t>> response) {
        const double micros =
            std::chrono::duration_cast<std::chrono::duration<double,
                                                             std::micro>>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (response.ok()) IngestResponseSpans(silo_id, &*response);
        RecordOutcome(silo_id, response.status(), micros);
        done(std::move(response));
      });
}

void Network::CallAsyncChunksImpl(int silo_id, std::vector<BufferRef> chunks,
                                  CallCallback done) {
  size_t total = 0;
  for (const BufferRef& chunk : chunks) total += chunk.size();
  std::vector<uint8_t> request = BufferPool::Default().Acquire(total);
  for (const BufferRef& chunk : chunks) {
    request.insert(request.end(), chunk.data(), chunk.data() + chunk.size());
  }
  chunks.clear();  // return the per-chunk buffers to the pool now
  CallAsyncImpl(silo_id, request, std::move(done));
  // CallAsyncImpl must not retain the reference past return (its callers
  // pass stack vectors), so the joined buffer can go back to the pool.
  BufferPool::Default().Release(std::move(request));
}

Status InProcessNetwork::RegisterSilo(int silo_id, SiloEndpoint* endpoint) {
  if (endpoint == nullptr) {
    return Status::InvalidArgument("null silo endpoint");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = endpoints_.emplace(silo_id, endpoint);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("silo id " + std::to_string(silo_id) +
                                 " already registered");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> InProcessNetwork::CallImpl(
    int silo_id, const std::vector<uint8_t>& request) {
  FRA_TRACE_SPAN("net.inprocess.call");
  SiloEndpoint* endpoint = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = endpoints_.find(silo_id);
    if (it == endpoints_.end()) {
      return Status::Unavailable("no silo registered under id " +
                                 std::to_string(silo_id));
    }
    endpoint = it->second;
  }

  // The silo handler runs on the caller's thread, so the active trace id
  // reaches it through the thread-local context without an envelope; only
  // the byte accounting charges the envelope size TCP would ship, keeping
  // the two transports' measured communication cost identical. (The
  // response-side span section is NOT charged: its size varies with the
  // compiled-in span set, which would make measured communication depend
  // on the tracing build flag.)
  const size_t request_bytes =
      request.size() + (CurrentTraceId() != 0 ? kTraceEnvelopeBytes : 0);
  // A traced exchange collects the handler's spans exactly as a TCP silo
  // would, then ingests them directly — same stitched trace, same
  // silo=<id> tags, no wire bytes.
  std::optional<SpanCollector> collector;
  if (CurrentTraceId() != 0) collector.emplace();
  // Borrowed-view dispatch: the silo decodes the caller's encoded bytes
  // in place — the zero-copy half of the in-process transport.
  Result<std::vector<uint8_t>> handled =
      endpoint->HandleMessageView(ConstByteSpan(request));
  if (collector.has_value()) {
    std::vector<SpanRecord> records = collector->Take();
    collector.reset();
    if (!records.empty()) {
      Tracer::Get().Ingest(std::move(records),
                           "silo=" + std::to_string(silo_id));
    }
  }
  FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> response, std::move(handled));
  stats_.RecordExchange(request_bytes, response.size());

  if (latency_.fixed_micros > 0.0 || latency_.per_kb_micros > 0.0) {
    const double kb =
        static_cast<double>(request.size() + response.size()) / 1024.0;
    const double micros = latency_.fixed_micros + latency_.per_kb_micros * kb;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(micros));
  }
  return response;
}

size_t InProcessNetwork::num_silos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.size();
}

std::vector<int> InProcessNetwork::silo_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids;
  ids.reserve(endpoints_.size());
  for (const auto& [id, endpoint] : endpoints_) ids.push_back(id);
  return ids;
}

}  // namespace fra
