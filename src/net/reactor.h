#ifndef FRA_NET_REACTOR_H_
#define FRA_NET_REACTOR_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/buffer.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace fra {

/// Hashed timer wheel: O(1) schedule/cancel, deadlines fire on Advance.
///
/// This is the deadline substrate of the event loop: every pending
/// request/connect deadline is one entry, so 10k in-flight queries cost
/// 10k wheel entries instead of 10k blocked poll() calls. Entries land in
/// `slot = expiry_tick % kSlots`; an entry whose deadline lies beyond one
/// wheel span simply stays in its slot until the wheel has wrapped around
/// to its absolute tick (the classic "rounds" scheme, expressed as an
/// absolute-tick comparison). Single-threaded: the owning event loop is
/// the only caller.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using Callback = std::function<void()>;

  /// `tick_ms` is the firing granularity (deadlines are rounded *up* to
  /// the next tick, so a timer never fires early).
  explicit TimerWheel(Clock::time_point now, int tick_ms = 1);

  /// Schedules `fn` to run at `deadline` (clamped to at least one tick
  /// from now). Returns a nonzero id usable with Cancel.
  uint64_t ScheduleAt(Clock::time_point deadline, Callback fn);
  uint64_t ScheduleAfter(std::chrono::milliseconds delay, Callback fn) {
    return ScheduleAt(Clock::now() + delay, std::move(fn));
  }

  /// Cancels a pending timer. False when the id already fired, was
  /// cancelled, or never existed.
  bool Cancel(uint64_t id);

  /// Fires every timer whose deadline is <= `now`. Callbacks run after
  /// the wheel state is updated, so they may freely schedule or cancel.
  void Advance(Clock::time_point now);

  /// Milliseconds until the earliest pending deadline (clamped to >= 0),
  /// or -1 when no timers are pending — the epoll_wait timeout.
  int NextTimeoutMs(Clock::time_point now);

  size_t pending() const { return index_.size(); }

  /// Observer invoked once per fired timer with how late it ran, in
  /// microseconds past its scheduled deadline (>= 0; the wheel never
  /// fires early). The owning event loop installs this to feed the
  /// fra_reactor_timer_drift_microseconds histogram.
  using DriftObserver = std::function<void(double late_micros)>;
  void set_drift_observer(DriftObserver fn) { drift_observer_ = std::move(fn); }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t expiry_tick = 0;
    Callback fn;
  };
  static constexpr size_t kSlots = 512;
  static constexpr uint64_t kNoExpiry = ~0ull;

  uint64_t TickFor(Clock::time_point at) const;       // ceil: scheduling
  uint64_t FloorTickFor(Clock::time_point at) const;  // floor: firing
  void RecomputeMinExpiry();

  const Clock::time_point origin_;
  const int tick_ms_;
  uint64_t current_tick_ = 0;
  uint64_t next_id_ = 1;
  // Cached earliest expiry tick across every slot; kNoExpiry when the
  // cache must be rebuilt by scanning (after firing, or after cancelling
  // the minimum) — the rebuild is O(pending), amortised over fire batches.
  uint64_t min_expiry_ = kNoExpiry;
  bool min_valid_ = true;  // empty wheel: valid, nothing pending
  DriftObserver drift_observer_;
  std::array<std::list<Entry>, kSlots> slots_;
  std::unordered_map<uint64_t, std::pair<size_t, std::list<Entry>::iterator>>
      index_;
};

/// One single-threaded epoll loop: fd readiness callbacks, a timer wheel
/// for deadlines, and an eventfd-backed task queue for cross-thread
/// submission. Everything except Submit/SubmitAndWait/Stop must run on
/// the loop thread (submit a task to get there).
class EventLoop {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the loop on the calling thread until Stop(). Pending tasks are
  /// drained once more after the loop exits, so a task submitted before
  /// Stop() is never silently lost.
  void Run();

  /// Thread safe; the loop wakes promptly. Idempotent.
  void Stop();

  /// Enqueues `task` for the loop thread (thread safe). Returns false —
  /// and drops the task — once the loop has exited; shutdown sequences
  /// must quiesce submitters before stopping the loop.
  bool Submit(Task task);

  /// Submit + wait for completion. Runs inline when already on the loop
  /// thread. Returns false (without running) when the loop has exited.
  bool SubmitAndWait(Task task);

  /// Loop thread only. `events` is an EPOLLIN/EPOLLOUT/... mask; the
  /// handler receives the ready mask of each wakeup.
  Status RegisterFd(int fd, uint32_t events, FdHandler handler);
  Status UpdateFd(int fd, uint32_t events);
  void DeregisterFd(int fd);

  /// Loop thread only: deadlines on the timer wheel.
  uint64_t ScheduleTimerAfter(std::chrono::milliseconds delay,
                              TimerWheel::Callback fn);
  uint64_t ScheduleTimerAt(TimerWheel::Clock::time_point deadline,
                           TimerWheel::Callback fn);
  bool CancelTimer(uint64_t id);

  bool InLoopThread() const {
    return loop_thread_id_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// Process-unique id of this loop; the `loop` label on every
  /// fra_reactor_* instrument.
  uint64_t id() const { return id_; }

 private:
  /// A cross-thread task plus its submission time, so the drain can
  /// measure event-loop lag (submit -> run) — the headline health signal
  /// of a reactor thread: a stalled handler shows up here first.
  struct QueuedTask {
    Task fn;
    TimerWheel::Clock::time_point submitted;
  };

  void RunQueuedTasks();
  void DrainWakeup();

  const uint64_t id_;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> exited_{false};
  std::atomic<std::thread::id> loop_thread_id_{};
  TimerWheel wheel_;
  std::unordered_map<int, FdHandler> handlers_;  // loop thread only
  std::mutex tasks_mu_;
  std::vector<QueuedTask> tasks_;
  // Per-loop telemetry, resolved once at construction (loop label fixed
  // for the loop's lifetime); all updates are lock-free.
  Histogram* lag_hist_;
  Histogram* wait_hist_;
  Histogram* dispatch_hist_;
  Histogram* drift_hist_;
  Gauge* pending_timers_gauge_;
};

/// N event loops, one thread each — the "reactor per core" of the
/// network stack. Connections are spread across loops (NextLoop) and
/// each is then owned by exactly one loop, so per-connection state needs
/// no locks.
class Reactor {
 public:
  /// 0 threads means DefaultThreadCount().
  explicit Reactor(size_t num_threads = 0);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Stops every loop and joins the threads. Idempotent.
  void Stop();

  /// Round-robin loop assignment for a new connection or silo.
  EventLoop* NextLoop();
  EventLoop* loop(size_t i) { return loops_[i].get(); }
  size_t num_loops() const { return loops_.size(); }

  /// min(4, hardware_concurrency), at least 1 — loops are I/O bound, so
  /// a handful saturates loopback well before core count matters.
  static size_t DefaultThreadCount();

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> next_{0};
  std::atomic<bool> stopped_{false};
};

/// Streaming decoder for the wire framing (`u32 big-endian length ‖
/// payload`, docs/wire_protocol.md): feed it a readable non-blocking fd
/// and it invokes `on_frame` once per completed frame. Returns OK on
/// would-block (call again on the next EPOLLIN), Unavailable on a clean
/// peer close, OutOfRange on an oversized length prefix, IOError
/// otherwise. `on_frame` returning false stops the drain early with OK
/// (read backpressure); buffered partial state is kept across calls.
class FrameReader {
 public:
  using FrameSink = std::function<bool(std::vector<uint8_t> payload)>;

  Status Drain(int fd, const FrameSink& on_frame);

 private:
  uint8_t header_[4];
  size_t header_filled_ = 0;
  bool in_payload_ = false;
  std::vector<uint8_t> payload_;
  size_t payload_filled_ = 0;
};

/// Buffered frame writer for a non-blocking fd: frames queue as chunks
/// (an inline 4-byte length header plus one or more payload segments)
/// and Flush gathers the queue into an iovec array sent with one
/// vectored syscall per round instead of one send() per chunk — the
/// "partial write" half of the connection state machine. The caller owns
/// EPOLLOUT interest: arm it while has_pending() after a Flush.
///
/// Owned payload buffers are recycled to BufferPool::Default() once
/// fully written; BufferRef chunks release through their refcount.
class FrameWriter {
 public:
  /// Queues one frame. The payload must already satisfy
  /// ValidateFramePayloadSize (message.h).
  void EnqueueFrame(std::vector<uint8_t> payload);

  /// Scatter-gather enqueue: the frame's payload is the concatenation of
  /// `chunks`, shipped from their own buffers (no join). The total size
  /// must already satisfy ValidateFramePayloadSize.
  void EnqueueFrameChunks(const std::vector<BufferRef>& chunks);

  /// Writes until drained or EAGAIN (both return OK); IOError on a
  /// broken socket.
  Status Flush(int fd);

  bool has_pending() const { return !queue_.empty(); }
  size_t pending_bytes() const { return pending_bytes_; }

 private:
  // One contiguous wire segment: either an inline frame header or a
  // payload buffer (owned vector or shared BufferRef, never both).
  struct Chunk {
    uint8_t header[4];
    uint8_t header_len = 0;
    std::vector<uint8_t> owned;
    BufferRef ref;

    const uint8_t* data() const {
      if (header_len > 0) return header;
      return ref.empty() ? owned.data() : ref.data();
    }
    size_t size() const {
      if (header_len > 0) return header_len;
      return ref.empty() ? owned.size() : ref.size();
    }
  };

  void PushHeader(uint32_t payload_bytes);

  std::deque<Chunk> queue_;
  size_t front_offset_ = 0;
  size_t pending_bytes_ = 0;
};

/// What an accept() failure means for the accept loop. Factored out so
/// the policy is unit-testable and shared by the reactor and legacy
/// accept paths (the old loop killed the listener on ANY errno other
/// than EINTR — one aborted handshake or a transient fd-limit spike
/// silently stopped the server).
enum class AcceptAction {
  kRetry,    // transient per-connection failure: try the next accept
  kBackoff,  // resource exhaustion (EMFILE/ENFILE/...): pause briefly,
             // keep the listener alive
  kFatal,    // the listening socket itself is gone
};
AcceptAction ClassifyAcceptErrno(int err);

/// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);

}  // namespace fra

#endif  // FRA_NET_REACTOR_H_
