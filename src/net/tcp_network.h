#ifndef FRA_NET_TCP_NETWORK_H_
#define FRA_NET_TCP_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "util/result.h"

namespace fra {

/// Serves one SiloEndpoint over TCP — the silo side of the paper's
/// deployment, where every data provider runs on its own machine.
///
/// The wire protocol is trivial framing: a 4-byte little-endian length
/// followed by the message payload (the same encoded messages the
/// in-process network carries). One request/response pair per frame
/// exchange; each accepted connection is served by its own thread, so a
/// provider may keep several concurrent connections.
class TcpSiloServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
  /// accept loop, and serves `endpoint` (not owned; must outlive the
  /// server) until Stop()/destruction.
  static Result<std::unique_ptr<TcpSiloServer>> Start(SiloEndpoint* endpoint,
                                                      uint16_t port = 0);

  TcpSiloServer(const TcpSiloServer&) = delete;
  TcpSiloServer& operator=(const TcpSiloServer&) = delete;

  /// Stops accepting, closes all connections, joins all threads.
  ~TcpSiloServer();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Requests served so far (across all connections).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  TcpSiloServer() = default;

  void AcceptLoop();
  void ServeConnection(int connection_fd);

  SiloEndpoint* endpoint_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::mutex workers_mu_;  // guards workers_ and active_fds_
  std::vector<std::thread> workers_;
  // Connection fds currently being served; Stop() shuts them down so
  // workers blocked in recv() wake up and exit.
  std::unordered_set<int> active_fds_;
};

/// The provider-side transport over real sockets: one persistent
/// connection per silo, (re)established lazily, with one in-flight
/// request per connection (concurrent Calls to the *same* silo serialise
/// on its connection; Calls to different silos proceed in parallel —
/// matching the single-core silo model of the in-process substrate).
class TcpNetwork : public Network {
 public:
  TcpNetwork() = default;
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Registers a silo reachable at 127.0.0.1:`port` (e.g. a
  /// TcpSiloServer's port). No connection is made until the first Call.
  Status AddSilo(int silo_id, uint16_t port);

  Result<std::vector<uint8_t>> Call(
      int silo_id, const std::vector<uint8_t>& request) override;

  size_t num_silos() const override;
  std::vector<int> silo_ids() const override;

 private:
  struct Connection {
    std::mutex mu;       // one in-flight exchange at a time
    uint16_t port = 0;
    int fd = -1;         // -1 = not connected
  };

  mutable std::mutex mu_;  // guards the map structure
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
};

}  // namespace fra

#endif  // FRA_NET_TCP_NETWORK_H_
