#ifndef FRA_NET_TCP_NETWORK_H_
#define FRA_NET_TCP_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "util/result.h"

namespace fra {

class Counter;
class Gauge;

/// Serves one SiloEndpoint over TCP — the silo side of the paper's
/// deployment, where every data provider runs on its own machine.
///
/// The wire protocol is trivial framing: a 4-byte big-endian (network
/// byte order) length followed by the message payload (the same encoded
/// messages the in-process network carries). One request/response pair
/// per frame exchange; each accepted connection is served by its own
/// thread, so a provider may keep several concurrent connections — the
/// provider-side connection pool (TcpNetwork below) relies on this to
/// keep several exchanges with one silo in flight.
class TcpSiloServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
  /// accept loop, and serves `endpoint` (not owned; must outlive the
  /// server) until Stop()/destruction.
  static Result<std::unique_ptr<TcpSiloServer>> Start(SiloEndpoint* endpoint,
                                                      uint16_t port = 0);

  TcpSiloServer(const TcpSiloServer&) = delete;
  TcpSiloServer& operator=(const TcpSiloServer&) = delete;

  /// Stops accepting, closes all connections, joins all threads.
  ~TcpSiloServer();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Requests served so far (across all connections).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  TcpSiloServer() = default;

  void AcceptLoop();
  void ServeConnection(int connection_fd);

  SiloEndpoint* endpoint_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::mutex workers_mu_;  // guards workers_ and active_fds_
  std::vector<std::thread> workers_;
  // Connection fds currently being served; Stop() shuts them down so
  // workers blocked in recv() wake up and exit.
  std::unordered_set<int> active_fds_;
};

/// The provider-side transport over real sockets: a small pool of
/// persistent connections per silo, (re)established lazily, so
/// concurrent Calls to the *same* silo proceed in parallel up to
/// Options::max_connections_per_silo (the silo server spawns one thread
/// per accepted connection). Every Call observes a deadline: connect,
/// send, and receive are poll-bounded, and a hung or unreachable silo
/// yields Status::Unavailable within Options::request_timeout_ms instead
/// of blocking a worker forever — feeding the provider's
/// retry_on_silo_failure rotation.
class TcpNetwork : public Network {
 public:
  struct Options {
    /// Upper bound on concurrently open connections per silo. A Call
    /// that finds the pool exhausted waits (deadline-bounded) for a
    /// connection to be released.
    size_t max_connections_per_silo = 8;
    /// Time allowed for establishing one TCP connection, in
    /// milliseconds; <= 0 disables the bound. Also clipped by the
    /// request deadline when one is set.
    int connect_timeout_ms = 5000;
    /// Deadline for one whole Call — pool acquire, connect if needed,
    /// request write, response read — in milliseconds; <= 0 disables
    /// the bound (a hung silo then blocks the calling worker forever).
    int request_timeout_ms = 30000;
  };

  TcpNetwork() : TcpNetwork(Options()) {}
  explicit TcpNetwork(const Options& options) : options_(options) {}
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Registers a silo reachable at 127.0.0.1:`port` (e.g. a
  /// TcpSiloServer's port). No connection is made until the first Call.
  Status AddSilo(int silo_id, uint16_t port);

  const char* transport_name() const override { return "tcp"; }
  size_t num_silos() const override;
  std::vector<int> silo_ids() const override;

  const Options& options() const { return options_; }

 protected:
  Result<std::vector<uint8_t>> CallImpl(
      int silo_id, const std::vector<uint8_t>& request) override;

 private:
  /// Connection pool of one silo. `open` counts every live socket
  /// (idle + checked out); gauges mirror it into the metrics registry.
  struct SiloPool {
    SiloPool(int silo_id, uint16_t port);

    const uint16_t port;
    std::mutex mu;  // guards idle/open
    std::condition_variable released;
    std::vector<int> idle;  // connected fds ready for checkout
    size_t open = 0;
    bool closed = false;  // network destroyed: release() closes fds

    // Registry instruments, resolved once per silo. Request/timeout
    // counters live at the Network::Call boundary (transport-agnostic);
    // the pool owns its occupancy gauges plus the coalesced-frame
    // accounting (how many kAggregateBatchRequest exchanges are on the
    // wire to this silo right now, and how many it has carried total).
    Gauge* open_gauge;
    Gauge* busy_gauge;
    Gauge* inflight_batches_gauge;
    Counter* batch_frames_total;

    void UpdateGauges();  // callers hold mu
  };

  /// Checks a connection out of `pool`, dialling a new one when the pool
  /// has spare capacity. Blocks (deadline-bounded) when `open` has
  /// reached max_connections_per_silo. Sets *timed_out when the failure
  /// was the deadline.
  Result<int> Acquire(SiloPool* pool, const struct DeadlinePoint& deadline,
                      bool* timed_out);
  /// Returns a connection to the pool (`reusable`) or closes it.
  void Release(SiloPool* pool, int fd, bool reusable);
  /// Closes every idle connection of `pool` (stale after a silo restart).
  void FlushIdle(SiloPool* pool);

  const Options options_;
  mutable std::mutex mu_;  // guards the map structure
  std::unordered_map<int, std::unique_ptr<SiloPool>> pools_;
};

}  // namespace fra

#endif  // FRA_NET_TCP_NETWORK_H_
