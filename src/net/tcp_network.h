#ifndef FRA_NET_TCP_NETWORK_H_
#define FRA_NET_TCP_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "net/reactor.h"
#include "util/result.h"

namespace fra {

class Counter;
class Gauge;
class ThreadPool;

/// Serves one SiloEndpoint over TCP — the silo side of the paper's
/// deployment, where every data provider runs on its own machine.
///
/// The wire protocol is trivial framing: a 4-byte big-endian (network
/// byte order) length followed by the message payload (the same encoded
/// messages the in-process network carries). Requests on one connection
/// may be pipelined; responses come back in request order.
///
/// Two serving modes (docs/architecture.md):
///
///   * reactor (default) — all connections are served by N single-
///     threaded epoll event loops; handlers run on a fixed worker pool so
///     the loops never block on query execution. Thread usage is constant
///     regardless of connection count.
///   * legacy thread-per-connection (Options::use_reactor = false) — one
///     blocking thread per accepted connection, kept as the before/after
///     baseline for BENCH_tcp_fanout.json. Finished connection threads
///     are reaped by the accept loop, so connection churn no longer grows
///     the thread vector without bound.
class TcpSiloServer {
 public:
  struct Options {
    /// false selects the legacy thread-per-connection mode.
    bool use_reactor = true;
    /// Event-loop threads; 0 means Reactor::DefaultThreadCount().
    /// Ignored when `reactor` is set or use_reactor is false.
    size_t reactor_threads = 0;
    /// Handler worker threads (reactor mode); 0 picks a default sized
    /// for overlapping blocking silo work.
    size_t worker_threads = 0;
    /// Serve from this externally owned reactor instead of an internal
    /// one. Must outlive the server (Stop() deregisters everything from
    /// its loops, so call Stop before stopping a shared reactor).
    Reactor* reactor = nullptr;
  };

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts serving
  /// `endpoint` (not owned; must outlive the server) until
  /// Stop()/destruction.
  static Result<std::unique_ptr<TcpSiloServer>> Start(SiloEndpoint* endpoint,
                                                      uint16_t port = 0);
  static Result<std::unique_ptr<TcpSiloServer>> Start(SiloEndpoint* endpoint,
                                                      uint16_t port,
                                                      const Options& options);

  TcpSiloServer(const TcpSiloServer&) = delete;
  TcpSiloServer& operator=(const TcpSiloServer&) = delete;

  /// Stops accepting, closes all connections, joins all threads.
  ~TcpSiloServer();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Requests served so far (across all connections).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Per-connection serving threads currently tracked (live plus
  /// finished-but-unjoined). Always 0 in reactor mode — the point of the
  /// reactor: thread usage does not scale with connections.
  size_t tracked_connection_threads() const;

  /// Accepted connections currently open.
  size_t open_connections() const;

  void Stop();

 private:
  struct Conn;  // reactor-mode connection state machine (tcp_network.cc)

  TcpSiloServer() = default;

  Status StartListener(uint16_t port);

  // Reactor path. All On*/Close methods run on the connection's loop.
  Status StartReactor();
  void OnAcceptReady();
  void AdoptConnection(int fd, EventLoop* loop);
  void OnConnEvent(const std::shared_ptr<Conn>& conn, uint32_t events);
  void DispatchRequest(const std::shared_ptr<Conn>& conn,
                       std::vector<uint8_t> request);
  void FlushReadyResponses(const std::shared_ptr<Conn>& conn);
  void UpdateConnInterest(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);

  // Legacy thread-per-connection path.
  void AcceptLoop();
  void ServeConnection(int connection_fd);
  void ReapRetired();  // joins finished connection threads

  SiloEndpoint* endpoint_ = nullptr;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  // Reactor mode.
  std::unique_ptr<Reactor> owned_reactor_;
  Reactor* reactor_ = nullptr;  // owned_reactor_.get() or external
  EventLoop* accept_loop_ = nullptr;
  std::unique_ptr<ThreadPool> handler_pool_;
  mutable std::mutex conns_mu_;
  std::unordered_set<std::shared_ptr<Conn>> conns_;

  // Legacy mode.
  std::thread accept_thread_;
  mutable std::mutex workers_mu_;  // guards the three members below
  std::unordered_map<int, std::thread> workers_;  // connection fd -> thread
  std::vector<std::thread> retired_;  // finished; joined by the accept loop
  std::unordered_set<int> active_fds_;
};

/// The provider-side transport over real sockets.
///
/// Reactor mode (default): every silo's connections live on one event
/// loop of a shared reactor; Call/CallAsync submit an operation to that
/// loop, which dials non-blocking connections (up to
/// max_connections_per_silo), pipelines requests onto them, and matches
/// responses positionally. Request and connect deadlines are timer-wheel
/// entries on the loop — 10k in-flight calls cost 10k wheel entries, not
/// 10k blocked threads — and a hung or unreachable silo yields
/// Status::Unavailable within Options::request_timeout_ms. A transport
/// error retries the affected operations once on a fresh connection (the
/// silo process may have restarted between calls); deadline expiry is
/// terminal.
///
/// Legacy mode (Options::use_reactor = false) keeps the PR 3 blocking
/// pool: a Call checks a connection out, performs the poll-bounded
/// exchange on the calling thread, and returns it.
class TcpNetwork : public Network {
 public:
  struct Options {
    /// Upper bound on concurrently open connections per silo. In reactor
    /// mode further calls pipeline onto the least-loaded connection; in
    /// legacy mode they wait (deadline-bounded) for a release.
    size_t max_connections_per_silo = 8;
    /// Time allowed for establishing one TCP connection, in
    /// milliseconds; <= 0 disables the bound. Also clipped by the
    /// request deadline when one is set (legacy mode).
    int connect_timeout_ms = 5000;
    /// Deadline for one whole Call — queueing, connect if needed,
    /// request write, response read — in milliseconds; <= 0 disables
    /// the bound (a hung silo then blocks the calling worker forever).
    int request_timeout_ms = 30000;
    /// false selects the legacy blocking pool.
    bool use_reactor = true;
    /// Event-loop threads; 0 means Reactor::DefaultThreadCount().
    /// Ignored when `reactor` is set or use_reactor is false.
    size_t reactor_threads = 0;
    /// Drive calls from this externally owned reactor instead of an
    /// internal one. Must outlive the network.
    Reactor* reactor = nullptr;
    /// Reactor mode: requests pipelined per connection before dispatch
    /// stalls (total in-flight capacity per silo is this times
    /// max_connections_per_silo).
    size_t max_pipeline_per_connection = 4096;
  };

  TcpNetwork() : TcpNetwork(Options()) {}
  explicit TcpNetwork(const Options& options);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Registers a silo reachable at 127.0.0.1:`port` (e.g. a
  /// TcpSiloServer's port). No connection is made until the first Call.
  Status AddSilo(int silo_id, uint16_t port);

  const char* transport_name() const override { return "tcp"; }
  size_t num_silos() const override;
  std::vector<int> silo_ids() const override;

  /// The reactor driving async calls; nullptr in legacy mode.
  Reactor* reactor() override {
    return options_.use_reactor ? reactor_ : nullptr;
  }

  const Options& options() const { return options_; }

 protected:
  Result<std::vector<uint8_t>> CallImpl(
      int silo_id, const std::vector<uint8_t>& request) override;
  void CallAsyncImpl(int silo_id, const std::vector<uint8_t>& request,
                     CallCallback done) override;
  /// Scatter-gather path: in reactor mode the chunks feed the frame
  /// writer's iovec queue as-is (one vectored send, no join); legacy mode
  /// concatenates once and degrades to the blocking exchange.
  void CallAsyncChunksImpl(int silo_id, std::vector<BufferRef> chunks,
                           CallCallback done) override;

 private:
  // Reactor-mode state machines (tcp_network.cc).
  struct Op;          // one in-flight call
  struct ClientConn;  // one non-blocking connection
  struct SiloState;   // one silo: its loop, queue, connections, gauges

  // Reactor path; everything below Enqueue runs on the silo's loop.
  void CallOnReactor(int silo_id, const std::vector<uint8_t>& request,
                     CallCallback done);
  void CallChunksOnReactor(int silo_id, std::vector<BufferRef> chunks,
                           bool is_batch, CallCallback done);
  void EnqueueOp(SiloState* state, const std::shared_ptr<Op>& op);
  void DispatchQueue(SiloState* state);
  void AssignOp(SiloState* state, const std::shared_ptr<ClientConn>& conn,
                const std::shared_ptr<Op>& op);
  void DialConn(SiloState* state);
  void OnConnEvent(SiloState* state, const std::shared_ptr<ClientConn>& conn,
                   uint32_t events);
  void HandleConnFailure(SiloState* state,
                         const std::shared_ptr<ClientConn>& conn,
                         const Status& status);
  void RemoveConn(SiloState* state, const std::shared_ptr<ClientConn>& conn);
  void FinishOp(SiloState* state, const std::shared_ptr<Op>& op,
                Result<std::vector<uint8_t>> outcome);
  void UpdateGauges(SiloState* state);

  /// Legacy blocking pool of one silo. `open` counts every live socket
  /// (idle + checked out); gauges mirror it into the metrics registry.
  struct SiloPool {
    SiloPool(int silo_id, uint16_t port);

    const uint16_t port;
    std::mutex mu;  // guards idle/open
    std::condition_variable released;
    std::vector<int> idle;  // connected fds ready for checkout
    size_t open = 0;
    bool closed = false;  // network destroyed: release() closes fds

    // Registry instruments, resolved once per silo. Request/timeout
    // counters live at the Network::Call boundary (transport-agnostic);
    // the pool owns its occupancy gauges plus the coalesced-frame
    // accounting (how many kAggregateBatchRequest exchanges are on the
    // wire to this silo right now, and how many it has carried total).
    Gauge* open_gauge;
    Gauge* busy_gauge;
    Gauge* inflight_batches_gauge;
    Counter* batch_frames_total;

    void UpdateGauges();  // callers hold mu
  };

  Result<std::vector<uint8_t>> LegacyCall(int silo_id,
                                          const std::vector<uint8_t>& request);
  /// Checks a connection out of `pool`, dialling a new one when the pool
  /// has spare capacity. Blocks (deadline-bounded) when `open` has
  /// reached max_connections_per_silo. Sets *timed_out when the failure
  /// was the deadline.
  Result<int> Acquire(SiloPool* pool, const struct DeadlinePoint& deadline,
                      bool* timed_out);
  /// Returns a connection to the pool (`reusable`) or closes it.
  void Release(SiloPool* pool, int fd, bool reusable);
  /// Closes every idle connection of `pool` (stale after a silo restart).
  void FlushIdle(SiloPool* pool);

  const Options options_;
  std::unique_ptr<Reactor> owned_reactor_;
  Reactor* reactor_ = nullptr;  // owned_reactor_.get() or external

  mutable std::mutex mu_;  // guards the two maps' structure
  std::unordered_map<int, std::unique_ptr<SiloState>> silos_;  // reactor
  std::unordered_map<int, std::unique_ptr<SiloPool>> pools_;   // legacy
};

}  // namespace fra

#endif  // FRA_NET_TCP_NETWORK_H_
