#include "net/message.h"

#include <cmath>
#include <cstddef>
#include <cstring>

namespace fra {
namespace {

constexpr uint8_t kRangeTagCircle = 0;
constexpr uint8_t kRangeTagRect = 1;

// Wire-level validation of LSR accuracy parameters: corrupted values must
// be rejected here, not crash deep inside the level-selection math.
Status ValidateAccuracyParams(double epsilon, double delta, double sum0) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be finite and positive");
  }
  if (!std::isfinite(delta) || delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (!std::isfinite(sum0)) {
    return Status::InvalidArgument("sum0 must be finite");
  }
  return Status::OK();
}

Status ExpectType(BinaryReader* reader, MessageType expected) {
  uint8_t tag = 0;
  FRA_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected message type tag " +
                                   std::to_string(tag));
  }
  return Status::OK();
}

// If the payload is an error response, surface its carried Status;
// otherwise verify the tag matches `expected` and position the reader
// after it.
Status ConsumeResponseHeader(BinaryReader* reader, MessageType expected) {
  uint8_t tag = 0;
  FRA_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag == static_cast<uint8_t>(MessageType::kErrorResponse)) {
    uint8_t code = 0;
    std::string message;
    FRA_RETURN_NOT_OK(reader->ReadU8(&code));
    FRA_RETURN_NOT_OK(reader->ReadString(&message));
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected response type tag " +
                                   std::to_string(tag));
  }
  return Status::OK();
}

}  // namespace

Status ValidateFramePayloadSize(size_t payload_size) {
  if (payload_size > kMaxFrameBytes) {
    return Status::OutOfRange(
        "frame payload of " + std::to_string(payload_size) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame limit");
  }
  return Status::OK();
}

std::vector<uint8_t> WrapWithTraceId(uint64_t trace_id,
                                     const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> wrapped =
      BufferPool::Default().Acquire(kTraceEnvelopeBytes + payload.size());
  wrapped.push_back(kTraceEnvelopeTag);
  for (int shift = 0; shift < 64; shift += 8) {
    wrapped.push_back(static_cast<uint8_t>(trace_id >> shift));
  }
  wrapped.insert(wrapped.end(), payload.begin(), payload.end());
  return wrapped;
}

uint64_t StripTraceEnvelope(std::vector<uint8_t>* payload) {
  if (payload->size() < kTraceEnvelopeBytes ||
      (*payload)[0] != kTraceEnvelopeTag) {
    return 0;
  }
  uint64_t trace_id = 0;
  for (int i = 0; i < 8; ++i) {
    trace_id |= static_cast<uint64_t>((*payload)[1 + i]) << (8 * i);
  }
  payload->erase(payload->begin(),
                 payload->begin() + static_cast<std::ptrdiff_t>(
                                        kTraceEnvelopeBytes));
  return trace_id;
}

uint64_t StripTraceEnvelopeView(ConstByteSpan* payload) {
  if (payload->size() < kTraceEnvelopeBytes ||
      payload->data()[0] != kTraceEnvelopeTag) {
    return 0;
  }
  uint64_t trace_id = 0;
  for (int i = 0; i < 8; ++i) {
    trace_id |= static_cast<uint64_t>(payload->data()[1 + i]) << (8 * i);
  }
  *payload = payload->Subspan(kTraceEnvelopeBytes,
                              payload->size() - kTraceEnvelopeBytes);
  return trace_id;
}

void AppendSpanSection(const std::vector<SpanRecord>& records,
                       std::vector<uint8_t>* payload) {
  if (records.empty()) return;
  size_t blob_bytes = sizeof(uint32_t);
  for (const SpanRecord& record : records) {
    blob_bytes += 3 * sizeof(uint64_t) + sizeof(uint32_t) + record.name.size();
  }
  BinaryWriter writer =
      BinaryWriter::Pooled(blob_bytes + kSpanSectionFooterBytes);
  writer.WriteU32(static_cast<uint32_t>(records.size()));
  for (const SpanRecord& record : records) {
    writer.WriteU64(record.trace_id);
    writer.WriteString(record.name);
    writer.WriteU64(record.start_nanos);
    writer.WriteU64(record.duration_nanos);
  }
  writer.WriteU32(static_cast<uint32_t>(blob_bytes));
  writer.WriteU64(kSpanSectionMagic);
  payload->insert(payload->end(), writer.buffer().begin(),
                  writer.buffer().end());
  BufferPool::Default().Release(writer.Release());
}

std::vector<SpanRecord> ExtractSpanSection(std::vector<uint8_t>* payload) {
  if (payload->size() < kSpanSectionFooterBytes) return {};
  BinaryReader footer(
      payload->data() + (payload->size() - kSpanSectionFooterBytes),
      kSpanSectionFooterBytes);
  uint32_t blob_bytes = 0;
  uint64_t magic = 0;
  if (!footer.ReadU32(&blob_bytes).ok() || !footer.ReadU64(&magic).ok() ||
      magic != kSpanSectionMagic) {
    return {};
  }
  if (static_cast<size_t>(blob_bytes) + kSpanSectionFooterBytes >
      payload->size()) {
    return {};
  }
  const size_t blob_start =
      payload->size() - kSpanSectionFooterBytes - blob_bytes;
  BinaryReader reader(payload->data() + blob_start, blob_bytes);
  uint32_t count = 0;
  if (!reader.ReadU32(&count).ok()) return {};
  // Every record costs at least its three u64s plus the name's length
  // prefix; a count past that bound cannot be a real section.
  constexpr size_t kMinRecordBytes = 3 * sizeof(uint64_t) + sizeof(uint32_t);
  if (static_cast<size_t>(count) > reader.Remaining() / kMinRecordBytes) {
    return {};
  }
  std::vector<SpanRecord> records;
  records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SpanRecord record;
    if (!reader.ReadU64(&record.trace_id).ok() ||
        !reader.ReadString(&record.name).ok() ||
        !reader.ReadU64(&record.start_nanos).ok() ||
        !reader.ReadU64(&record.duration_nanos).ok()) {
      return {};
    }
    records.push_back(std::move(record));
  }
  // The blob must parse EXACTLY — leftover bytes mean this was payload
  // data that merely looked like a section; leave everything in place.
  if (!reader.AtEnd()) return {};
  payload->resize(blob_start);
  return records;
}

void SerializeRange(const QueryRange& range, BinaryWriter* writer) {
  if (range.is_circle()) {
    writer->WriteU8(kRangeTagCircle);
    writer->WriteDouble(range.circle().center.x);
    writer->WriteDouble(range.circle().center.y);
    writer->WriteDouble(range.circle().radius);
  } else {
    writer->WriteU8(kRangeTagRect);
    writer->WriteDouble(range.rect().min.x);
    writer->WriteDouble(range.rect().min.y);
    writer->WriteDouble(range.rect().max.x);
    writer->WriteDouble(range.rect().max.y);
  }
}

Status DeserializeRange(BinaryReader* reader, QueryRange* out) {
  uint8_t tag = 0;
  FRA_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag == kRangeTagCircle) {
    Circle circle;
    FRA_RETURN_NOT_OK(reader->ReadDouble(&circle.center.x));
    FRA_RETURN_NOT_OK(reader->ReadDouble(&circle.center.y));
    FRA_RETURN_NOT_OK(reader->ReadDouble(&circle.radius));
    if (!std::isfinite(circle.center.x) || !std::isfinite(circle.center.y) ||
        !std::isfinite(circle.radius) || circle.radius < 0.0) {
      return Status::InvalidArgument("malformed circular range");
    }
    *out = QueryRange(circle);
    return Status::OK();
  }
  if (tag == kRangeTagRect) {
    Rect rect;
    FRA_RETURN_NOT_OK(reader->ReadDouble(&rect.min.x));
    FRA_RETURN_NOT_OK(reader->ReadDouble(&rect.min.y));
    FRA_RETURN_NOT_OK(reader->ReadDouble(&rect.max.x));
    FRA_RETURN_NOT_OK(reader->ReadDouble(&rect.max.y));
    if (!std::isfinite(rect.min.x) || !std::isfinite(rect.min.y) ||
        !std::isfinite(rect.max.x) || !std::isfinite(rect.max.y) ||
        !rect.IsValid()) {
      return Status::InvalidArgument("malformed rectangular range");
    }
    *out = QueryRange(rect);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown range tag");
}

std::vector<uint8_t> AggregateRequest::Encode() const {
  BinaryWriter writer = BinaryWriter::Pooled(64);
  writer.WriteU8(static_cast<uint8_t>(MessageType::kAggregateRequest));
  SerializeRange(range, &writer);
  writer.WriteU8(static_cast<uint8_t>(mode));
  writer.WriteDouble(epsilon);
  writer.WriteDouble(delta);
  writer.WriteDouble(sum0);
  return writer.Release();
}

Result<AggregateRequest> AggregateRequest::Decode(BinaryReader* reader) {
  FRA_RETURN_NOT_OK(ExpectType(reader, MessageType::kAggregateRequest));
  AggregateRequest request;
  FRA_RETURN_NOT_OK(DeserializeRange(reader, &request.range));
  uint8_t mode = 0;
  FRA_RETURN_NOT_OK(reader->ReadU8(&mode));
  if (mode > static_cast<uint8_t>(LocalQueryMode::kHistogram)) {
    return Status::InvalidArgument("unknown local query mode");
  }
  request.mode = static_cast<LocalQueryMode>(mode);
  FRA_RETURN_NOT_OK(reader->ReadDouble(&request.epsilon));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&request.delta));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&request.sum0));
  FRA_RETURN_NOT_OK(
      ValidateAccuracyParams(request.epsilon, request.delta, request.sum0));
  return request;
}

std::vector<uint8_t> CellVectorRequest::Encode() const {
  BinaryWriter writer = BinaryWriter::Pooled(64);
  writer.WriteU8(static_cast<uint8_t>(MessageType::kCellVectorRequest));
  SerializeRange(range, &writer);
  writer.WriteU8(static_cast<uint8_t>(mode));
  writer.WriteDouble(epsilon);
  writer.WriteDouble(delta);
  writer.WriteDouble(sum0);
  writer.WriteU8(full_vector ? 1 : 0);
  return writer.Release();
}

Result<CellVectorRequest> CellVectorRequest::Decode(BinaryReader* reader) {
  FRA_RETURN_NOT_OK(ExpectType(reader, MessageType::kCellVectorRequest));
  CellVectorRequest request;
  FRA_RETURN_NOT_OK(DeserializeRange(reader, &request.range));
  uint8_t mode = 0;
  FRA_RETURN_NOT_OK(reader->ReadU8(&mode));
  if (mode > static_cast<uint8_t>(LocalQueryMode::kLsr)) {
    return Status::InvalidArgument("cell vector mode must be exact or LSR");
  }
  request.mode = static_cast<LocalQueryMode>(mode);
  FRA_RETURN_NOT_OK(reader->ReadDouble(&request.epsilon));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&request.delta));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&request.sum0));
  FRA_RETURN_NOT_OK(
      ValidateAccuracyParams(request.epsilon, request.delta, request.sum0));
  uint8_t full_vector = 0;
  FRA_RETURN_NOT_OK(reader->ReadU8(&full_vector));
  request.full_vector = full_vector != 0;
  return request;
}

Result<MessageType> PeekMessageType(const std::vector<uint8_t>& payload) {
  if (payload.empty()) return Status::InvalidArgument("empty message");
  return static_cast<MessageType>(payload[0]);
}

Result<MessageType> PeekMessageType(ConstByteSpan payload) {
  if (payload.empty()) return Status::InvalidArgument("empty message");
  return static_cast<MessageType>(payload.data()[0]);
}

std::vector<uint8_t> EncodeSummaryResponse(const AggregateSummary& summary) {
  BinaryWriter writer = BinaryWriter::Pooled(64);
  writer.WriteU8(static_cast<uint8_t>(MessageType::kSummaryResponse));
  summary.Serialize(&writer);
  return writer.Release();
}

namespace {

std::vector<uint8_t> EncodeCellList(MessageType type,
                                    const std::vector<CellContribution>& cells) {
  BinaryWriter writer = BinaryWriter::Pooled(
      1 + sizeof(uint32_t) +
      cells.size() * (sizeof(uint32_t) + AggregateSummary::kWireSize));
  writer.WriteU8(static_cast<uint8_t>(type));
  writer.WriteU32(static_cast<uint32_t>(cells.size()));
  for (const CellContribution& cell : cells) {
    writer.WriteU32(cell.cell_id);
    cell.summary.Serialize(&writer);
  }
  return writer.Release();
}

// With `trailing_version` non-null, a u64 following the cell entries is
// read when present (older encoders simply end the payload there, which
// decodes as version 0).
Result<std::vector<CellContribution>> DecodeCellList(
    MessageType type, const std::vector<uint8_t>& payload,
    uint64_t* trailing_version = nullptr) {
  BinaryReader reader(payload);
  FRA_RETURN_NOT_OK(ConsumeResponseHeader(&reader, type));
  uint32_t n = 0;
  FRA_RETURN_NOT_OK(reader.ReadU32(&n));
  // Validate the claimed count against the actual payload before
  // allocating (a corrupted length prefix must not trigger a huge
  // allocation).
  constexpr size_t kCellWireSize = sizeof(uint32_t) + AggregateSummary::kWireSize;
  if (static_cast<size_t>(n) > reader.Remaining() / kCellWireSize) {
    return Status::OutOfRange("cell list length exceeds payload");
  }
  std::vector<CellContribution> cells(n);
  for (uint32_t i = 0; i < n; ++i) {
    FRA_RETURN_NOT_OK(reader.ReadU32(&cells[i].cell_id));
    FRA_RETURN_NOT_OK(
        AggregateSummary::Deserialize(&reader, &cells[i].summary));
  }
  if (trailing_version != nullptr) {
    *trailing_version = 0;
    if (reader.Remaining() >= sizeof(uint64_t)) {
      FRA_RETURN_NOT_OK(reader.ReadU64(trailing_version));
    }
  }
  return cells;
}

}  // namespace

std::vector<uint8_t> EncodeCellVectorResponse(
    const std::vector<CellContribution>& cells) {
  return EncodeCellList(MessageType::kCellVectorResponse, cells);
}

std::vector<uint8_t> EncodeGridPayloadResponse(
    const std::vector<uint8_t>& grid_bytes) {
  BinaryWriter writer =
      BinaryWriter::Pooled(1 + sizeof(uint32_t) + grid_bytes.size());
  writer.WriteU8(static_cast<uint8_t>(MessageType::kGridPayloadResponse));
  writer.WriteU32(static_cast<uint32_t>(grid_bytes.size()));
  writer.AppendRaw(grid_bytes.data(), grid_bytes.size());
  return writer.Release();
}

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  BinaryWriter writer =
      BinaryWriter::Pooled(2 + sizeof(uint32_t) + status.message().size());
  writer.WriteU8(static_cast<uint8_t>(MessageType::kErrorResponse));
  writer.WriteU8(static_cast<uint8_t>(status.code()));
  writer.WriteString(status.message());
  return writer.Release();
}

Result<AggregateSummary> DecodeSummaryResponse(
    const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  FRA_RETURN_NOT_OK(
      ConsumeResponseHeader(&reader, MessageType::kSummaryResponse));
  AggregateSummary summary;
  FRA_RETURN_NOT_OK(AggregateSummary::Deserialize(&reader, &summary));
  return summary;
}

Result<std::vector<CellContribution>> DecodeCellVectorResponse(
    const std::vector<uint8_t>& payload) {
  return DecodeCellList(MessageType::kCellVectorResponse, payload);
}

std::vector<uint8_t> EncodeGridDeltaRequest() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(MessageType::kGridDeltaRequest));
  return writer.Release();
}

std::vector<uint8_t> EncodeGridDeltaResponse(
    const std::vector<CellContribution>& cells, uint64_t data_version) {
  // Append the version in place instead of re-encoding through a second
  // writer (the cell list is the bulk of the payload).
  std::vector<uint8_t> payload =
      EncodeCellList(MessageType::kGridDeltaResponse, cells);
  const size_t offset = payload.size();
  payload.resize(offset + sizeof(uint64_t));
  std::memcpy(payload.data() + offset, &data_version, sizeof(uint64_t));
  return payload;
}

Result<std::vector<CellContribution>> DecodeGridDeltaResponse(
    const std::vector<uint8_t>& payload, uint64_t* data_version) {
  uint64_t version = 0;
  FRA_ASSIGN_OR_RETURN(
      std::vector<CellContribution> cells,
      DecodeCellList(MessageType::kGridDeltaResponse, payload, &version));
  if (data_version != nullptr) *data_version = version;
  return cells;
}

Result<std::vector<uint8_t>> DecodeGridPayloadResponse(
    const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  FRA_RETURN_NOT_OK(
      ConsumeResponseHeader(&reader, MessageType::kGridPayloadResponse));
  uint32_t n = 0;
  FRA_RETURN_NOT_OK(reader.ReadU32(&n));
  if (n > reader.Remaining()) {
    return Status::OutOfRange("truncated grid payload");
  }
  std::vector<uint8_t> bytes(payload.end() - reader.Remaining(),
                             payload.end());
  bytes.resize(n);
  return bytes;
}

std::vector<uint8_t> EncodeBuildGridRequest() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(MessageType::kBuildGridRequest));
  return writer.Release();
}

namespace {

std::vector<uint8_t> EncodeBatchFrame(
    MessageType type, const std::vector<std::vector<uint8_t>>& entries) {
  size_t total = 1 + sizeof(uint32_t);
  for (const std::vector<uint8_t>& entry : entries) {
    total += sizeof(uint32_t) + entry.size();
  }
  BinaryWriter writer = BinaryWriter::Pooled(total);
  writer.WriteU8(static_cast<uint8_t>(type));
  writer.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const std::vector<uint8_t>& entry : entries) {
    writer.WriteU32(static_cast<uint32_t>(entry.size()));
    writer.AppendRaw(entry.data(), entry.size());
  }
  return writer.Release();
}

Result<std::vector<std::vector<uint8_t>>> DecodeBatchEntries(
    BinaryReader* reader) {
  uint32_t n = 0;
  FRA_RETURN_NOT_OK(reader->ReadU32(&n));
  // Each entry costs at least its 4-byte length prefix; a corrupted count
  // must be rejected before any allocation proportional to it.
  if (static_cast<size_t>(n) > reader->Remaining() / sizeof(uint32_t)) {
    return Status::OutOfRange("batch entry table exceeds payload");
  }
  std::vector<std::vector<uint8_t>> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t length = 0;
    FRA_RETURN_NOT_OK(reader->ReadU32(&length));
    if (length > reader->Remaining()) {
      return Status::OutOfRange("truncated batch entry");
    }
    std::vector<uint8_t> entry;
    FRA_RETURN_NOT_OK(reader->ReadBytes(length, &entry));
    entries.push_back(std::move(entry));
  }
  return entries;
}

// View counterpart of DecodeBatchEntries: the spans alias the reader's
// input, so nothing is copied per entry.
Result<std::vector<ConstByteSpan>> DecodeBatchEntryViews(
    BinaryReader* reader) {
  uint32_t n = 0;
  FRA_RETURN_NOT_OK(reader->ReadU32(&n));
  if (static_cast<size_t>(n) > reader->Remaining() / sizeof(uint32_t)) {
    return Status::OutOfRange("batch entry table exceeds payload");
  }
  std::vector<ConstByteSpan> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t length = 0;
    FRA_RETURN_NOT_OK(reader->ReadU32(&length));
    ConstByteSpan entry;
    FRA_RETURN_NOT_OK(reader->ReadBytesView(length, &entry));
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace

std::vector<uint8_t> EncodeBatchRequest(
    const std::vector<std::vector<uint8_t>>& entries) {
  return EncodeBatchFrame(MessageType::kAggregateBatchRequest, entries);
}

Result<std::vector<std::vector<uint8_t>>> DecodeBatchRequest(
    const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  FRA_RETURN_NOT_OK(
      ExpectType(&reader, MessageType::kAggregateBatchRequest));
  return DecodeBatchEntries(&reader);
}

std::vector<uint8_t> EncodeBatchResponse(
    const std::vector<std::vector<uint8_t>>& entries) {
  return EncodeBatchFrame(MessageType::kAggregateBatchResponse, entries);
}

Result<std::vector<std::vector<uint8_t>>> DecodeBatchResponse(
    const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  // A silo that failed before assembling the batch answers with a plain
  // error response; surface its carried Status like every other decoder.
  FRA_RETURN_NOT_OK(
      ConsumeResponseHeader(&reader, MessageType::kAggregateBatchResponse));
  return DecodeBatchEntries(&reader);
}

Result<std::vector<ConstByteSpan>> DecodeBatchRequestViews(
    ConstByteSpan payload) {
  BinaryReader reader(payload);
  FRA_RETURN_NOT_OK(
      ExpectType(&reader, MessageType::kAggregateBatchRequest));
  return DecodeBatchEntryViews(&reader);
}

Result<std::vector<ConstByteSpan>> DecodeBatchResponseViews(
    ConstByteSpan payload) {
  BinaryReader reader(payload);
  FRA_RETURN_NOT_OK(
      ConsumeResponseHeader(&reader, MessageType::kAggregateBatchResponse));
  return DecodeBatchEntryViews(&reader);
}

}  // namespace fra
