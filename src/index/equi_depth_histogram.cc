#include "index/equi_depth_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fra {
namespace {

struct Span {
  size_t begin;
  size_t end;  // exclusive
};

EquiDepthHistogram::Bucket MakeBucket(const ObjectSet& objects,
                                      const Span& span) {
  EquiDepthHistogram::Bucket bucket;
  bucket.bounds = Rect::Empty();
  for (size_t i = span.begin; i < span.end; ++i) {
    bucket.bounds.ExpandToInclude(objects[i].location);
    bucket.summary.Add(objects[i]);
  }
  return bucket;
}

}  // namespace

EquiDepthHistogram EquiDepthHistogram::Build(ObjectSet objects,
                                             const Options& options) {
  FRA_CHECK_GT(options.max_buckets, 0UL);
  EquiDepthHistogram hist;
  if (objects.empty()) return hist;

  const size_t target =
      std::max<size_t>(1, (objects.size() + options.max_buckets - 1) /
                              options.max_buckets);

  std::vector<Span> stack = {{0, objects.size()}};
  while (!stack.empty()) {
    const Span span = stack.back();
    stack.pop_back();
    const size_t n = span.end - span.begin;
    if (n <= target) {
      hist.buckets_.push_back(MakeBucket(objects, span));
      continue;
    }
    // Median split along the wider axis of the span's bbox (equi-depth:
    // both halves hold the same number of objects).
    Rect bbox = Rect::Empty();
    for (size_t i = span.begin; i < span.end; ++i) {
      bbox.ExpandToInclude(objects[i].location);
    }
    const bool split_x = bbox.Width() >= bbox.Height();
    const size_t mid = span.begin + n / 2;
    std::nth_element(objects.begin() + span.begin, objects.begin() + mid,
                     objects.begin() + span.end,
                     [split_x](const SpatialObject& a, const SpatialObject& b) {
                       return split_x ? a.location.x < b.location.x
                                      : a.location.y < b.location.y;
                     });
    stack.push_back({span.begin, mid});
    stack.push_back({mid, span.end});
  }

  for (const Bucket& b : hist.buckets_) hist.total_.Merge(b.summary);
  return hist;
}

AggregateSummary EquiDepthHistogram::Estimate(const QueryRange& range) const {
  AggregateSummary acc;
  for (const Bucket& bucket : buckets_) {
    if (!range.Intersects(bucket.bounds)) continue;
    if (range.Contains(bucket.bounds)) {
      acc.count += bucket.summary.count;
      acc.sum += bucket.summary.sum;
      acc.sum_sqr += bucket.summary.sum_sqr;
      continue;
    }
    const double area = bucket.bounds.Area();
    double fraction;
    if (area <= 0.0) {
      // Degenerate bucket (collinear or identical points): treat it as a
      // point mass at its bbox center.
      fraction = range.Contains(bucket.bounds.Center()) ? 1.0 : 0.0;
    } else {
      fraction = std::clamp(range.IntersectionArea(bucket.bounds) / area, 0.0,
                            1.0);
    }
    if (fraction <= 0.0) continue;
    acc.count += static_cast<uint64_t>(
        std::llround(static_cast<double>(bucket.summary.count) * fraction));
    acc.sum += bucket.summary.sum * fraction;
    acc.sum_sqr += bucket.summary.sum_sqr * fraction;
  }
  return acc;
}

size_t EquiDepthHistogram::MemoryUsage() const {
  return buckets_.capacity() * sizeof(Bucket);
}

}  // namespace fra
