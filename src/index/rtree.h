#ifndef FRA_INDEX_RTREE_H_
#define FRA_INDEX_RTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "geo/range.h"
#include "geo/rect.h"

namespace fra {

/// An aggregate R-tree: a Sort-Tile-Recursive (STR) bulk-loaded, packed
/// R-tree whose every node carries an AggregateSummary of its subtree.
///
/// Range aggregation descends the tree, contributing whole subtrees in
/// O(1) whenever the query range fully covers a node's MBR and testing
/// individual objects only in leaves that straddle the range boundary —
/// the standard O(log n) aggregate query the paper assumes for local
/// (exact) range aggregation, and the per-level building block of the
/// LSR-Forest (Sec. 5).
///
/// The tree is immutable after Build(); objects are stored in leaf order
/// in one contiguous array, and nodes reference contiguous child ranges,
/// so traversal is cache friendly and the structure has no per-node
/// allocations.
class RTree {
 public:
  struct Options {
    /// Maximum objects per leaf.
    int leaf_capacity = 64;
    /// Maximum children per internal node.
    int fanout = 16;
  };

  /// Optional instrumentation filled by RangeAggregate.
  struct QueryStats {
    size_t nodes_visited = 0;
    size_t objects_tested = 0;
    size_t subtrees_taken = 0;  // nodes fully covered, contributed in O(1)
  };

  RTree() = default;

  /// Builds the tree over a copy-by-move of `objects`. An empty input
  /// yields a valid empty tree.
  static RTree Build(ObjectSet objects, const Options& options);
  static RTree Build(ObjectSet objects) {
    return Build(std::move(objects), Options());
  }

  /// Summary of all objects within `range`. `stats`, when non-null,
  /// receives traversal counters.
  AggregateSummary RangeAggregate(const QueryRange& range,
                                  QueryStats* stats = nullptr) const;

  /// Summary of all objects within `range` AND within the rectangle
  /// `clip`. Backs the NonIID-est per-grid-cell contributions (Alg. 3):
  /// the silo aggregates its objects inside cell ∩ R, one boundary cell
  /// at a time.
  AggregateSummary RangeAggregateClipped(const Rect& clip,
                                         const QueryRange& range,
                                         QueryStats* stats = nullptr) const;

  /// Appends all objects inside `range` to `out`.
  void CollectInRange(const QueryRange& range,
                      std::vector<SpatialObject>* out) const;

  /// Summary of the entire object set.
  const AggregateSummary& total() const { return total_; }

  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  /// Number of levels (0 for an empty tree, 1 for a single leaf root).
  int height() const { return height_; }

  /// MBR of the whole tree; !IsValid() when empty.
  Rect bounds() const;

  /// Heap bytes held by the index (objects + nodes).
  size_t MemoryUsage() const;

  /// Objects in leaf order; primarily for tests.
  const ObjectSet& objects() const { return objects_; }

 private:
  struct Node {
    Rect mbr;
    AggregateSummary summary;
    // Children: [begin, end) into objects_ when level == 0, into nodes_
    // otherwise.
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t level = 0;
  };

  void AggregateNode(uint32_t node_index, const QueryRange& range,
                     AggregateSummary* acc, QueryStats* stats) const;
  void AggregateNodeClipped(uint32_t node_index, const Rect& clip,
                            const QueryRange& range, AggregateSummary* acc,
                            QueryStats* stats) const;
  void CollectNode(uint32_t node_index, const QueryRange& range,
                   std::vector<SpatialObject>* out) const;

  ObjectSet objects_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  int height_ = 0;
  AggregateSummary total_;
};

}  // namespace fra

#endif  // FRA_INDEX_RTREE_H_
