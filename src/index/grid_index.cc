#include "index/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/trace.h"

namespace fra {

size_t GridIndex::GridSpec::Rows() const {
  return static_cast<size_t>(
      std::max(1.0, std::ceil(domain.Height() / cell_length)));
}

size_t GridIndex::GridSpec::Cols() const {
  return static_cast<size_t>(
      std::max(1.0, std::ceil(domain.Width() / cell_length)));
}

Result<GridIndex> GridIndex::MakeEmpty(const GridSpec& spec) {
  if (!spec.domain.IsValid() || spec.domain.Area() <= 0.0) {
    return Status::InvalidArgument("grid domain must have positive area");
  }
  if (spec.cell_length <= 0.0) {
    return Status::InvalidArgument("grid cell length must be positive");
  }
  GridIndex grid;
  grid.spec_ = spec;
  grid.rows_ = spec.Rows();
  grid.cols_ = spec.Cols();
  grid.cells_.assign(grid.rows_ * grid.cols_, AggregateSummary());
  grid.RebuildPrefixSums();
  return grid;
}

Result<GridIndex> GridIndex::Build(const ObjectSet& objects,
                                   const GridSpec& spec) {
  FRA_ASSIGN_OR_RETURN(GridIndex grid, MakeEmpty(spec));
  for (const SpatialObject& o : objects) {
    grid.cells_[grid.CellOf(o.location)].Add(o);
    grid.total_.Add(o);
  }
  grid.RebuildPrefixSums();
  return grid;
}

Result<GridIndex> GridIndex::Merge(const std::vector<const GridIndex*>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("Merge requires at least one grid");
  }
  FRA_ASSIGN_OR_RETURN(GridIndex merged, MakeEmpty(parts[0]->spec()));
  for (const GridIndex* part : parts) {
    FRA_CHECK(part != nullptr);
    if (!(part->spec() == merged.spec_)) {
      return Status::InvalidArgument(
          "all merged grids must share one GridSpec");
    }
    for (size_t i = 0; i < merged.cells_.size(); ++i) {
      merged.cells_[i].Merge(part->cells_[i]);
    }
    merged.total_.Merge(part->total_);
  }
  merged.RebuildPrefixSums();
  return merged;
}

size_t GridIndex::CellOf(const Point& p) const {
  const double fx = (p.x - spec_.domain.min.x) / spec_.cell_length;
  const double fy = (p.y - spec_.domain.min.y) / spec_.cell_length;
  const size_t col = static_cast<size_t>(
      std::clamp(std::floor(fx), 0.0, static_cast<double>(cols_ - 1)));
  const size_t row = static_cast<size_t>(
      std::clamp(std::floor(fy), 0.0, static_cast<double>(rows_ - 1)));
  return CellId(row, col);
}

Rect GridIndex::CellRect(size_t row, size_t col) const {
  const double x0 = spec_.domain.min.x + static_cast<double>(col) * spec_.cell_length;
  const double y0 = spec_.domain.min.y + static_cast<double>(row) * spec_.cell_length;
  return Rect{{x0, y0}, {x0 + spec_.cell_length, y0 + spec_.cell_length}};
}

bool GridIndex::RowSpan(const QueryRange& range, size_t row, size_t* lo,
                        size_t* hi) const {
  const Rect bbox = range.BoundingBox();
  const double min_x = spec_.domain.min.x;
  const double inv_len = 1.0 / spec_.cell_length;

  auto col_clamped = [&](double x) {
    return static_cast<size_t>(std::clamp(std::floor((x - min_x) * inv_len),
                                          0.0,
                                          static_cast<double>(cols_ - 1)));
  };

  size_t begin = col_clamped(bbox.min.x);
  size_t end = col_clamped(bbox.max.x);
  if (begin > 0) --begin;  // the left neighbour may touch at a shared edge
  if (range.is_circle()) {
    // Tighten the span to the circle's chord within this row's y band.
    const Circle& c = range.circle();
    const Rect row_rect =
        Rect{{spec_.domain.min.x,
              spec_.domain.min.y + static_cast<double>(row) * spec_.cell_length},
             {spec_.domain.max.x,
              spec_.domain.min.y +
                  static_cast<double>(row + 1) * spec_.cell_length}};
    const double dy =
        std::max({row_rect.min.y - c.center.y, 0.0, c.center.y - row_rect.max.y});
    const double h2 = c.radius * c.radius - dy * dy;
    if (h2 < 0.0) return false;
    const double half = std::sqrt(h2);
    begin = col_clamped(c.center.x - half);
    end = col_clamped(c.center.x + half);
    if (begin > 0) --begin;
  }

  // The chord is computed at the row's nearest y, so the outermost cells
  // can still miss the circle; shrink until the endpoints truly intersect.
  while (begin <= end && !range.Intersects(CellRect(row, begin))) {
    if (begin == end) return false;
    ++begin;
  }
  while (end > begin && !range.Intersects(CellRect(row, end))) --end;
  if (begin > end) return false;
  if (!range.Intersects(CellRect(row, begin))) return false;
  *lo = begin;
  *hi = end;
  return true;
}

void GridIndex::ForEachIntersectingCell(
    const QueryRange& range,
    const std::function<void(size_t, CellRelation)>& fn) const {
  const Rect bbox = range.BoundingBox();
  if (!bbox.Intersects(spec_.domain)) return;

  auto row_clamped = [&](double y) {
    return static_cast<size_t>(
        std::clamp(std::floor((y - spec_.domain.min.y) / spec_.cell_length),
                   0.0, static_cast<double>(rows_ - 1)));
  };
  size_t row_begin = row_clamped(bbox.min.y);
  if (row_begin > 0) --row_begin;  // lower neighbour may touch at an edge
  const size_t row_end = row_clamped(bbox.max.y);

  for (size_t row = row_begin; row <= row_end; ++row) {
    size_t lo = 0;
    size_t hi = 0;
    if (!RowSpan(range, row, &lo, &hi)) continue;
    for (size_t col = lo; col <= hi; ++col) {
      const Rect cell_rect = CellRect(row, col);
      if (!range.Intersects(cell_rect)) continue;
      fn(CellId(row, col), range.Contains(cell_rect) ? CellRelation::kContained
                                                     : CellRelation::kPartial);
    }
  }
}

GridIndex::RangeCellClassification GridIndex::ClassifyRangeCells(
    const QueryRange& range) const {
  RangeCellClassification out;
  size_t min_row = rows_;
  size_t max_row = 0;
  size_t min_col = cols_;
  size_t max_col = 0;
  ForEachIntersectingCell(range, [&](size_t cell_id, CellRelation relation) {
    if (relation == CellRelation::kContained) {
      const size_t row = RowOf(cell_id);
      const size_t col = ColOf(cell_id);
      min_row = std::min(min_row, row);
      max_row = std::max(max_row, row);
      min_col = std::min(min_col, col);
      max_col = std::max(max_col, col);
      ++out.contained;
    } else {
      out.boundary_cells.push_back(static_cast<uint32_t>(cell_id));
    }
  });
  if (out.contained == 0) {
    out.block_ok = true;  // the empty block
    return out;
  }
  out.row0 = min_row;
  out.row1 = max_row;
  out.col0 = min_col;
  out.col1 = max_col;
  out.block_ok = out.contained ==
                 (max_row - min_row + 1) * (max_col - min_col + 1);
  return out;
}

AggregateSummary GridIndex::BlockAggregate(size_t row0, size_t col0,
                                           size_t row1, size_t col1) const {
  FRA_CHECK_LE(row0, row1);
  FRA_CHECK_LE(col0, col1);
  FRA_CHECK_LT(row1, rows_);
  FRA_CHECK_LT(col1, cols_);
  const size_t stride = cols_ + 1;
  auto block = [&](const std::vector<double>& prefix) {
    return prefix[(row1 + 1) * stride + (col1 + 1)] -
           prefix[row0 * stride + (col1 + 1)] -
           prefix[(row1 + 1) * stride + col0] + prefix[row0 * stride + col0];
  };
  double count = block(prefix_count_);
  AggregateSummary out;
  out.sum = block(prefix_sum_);
  out.sum_sqr = block(prefix_sum_sqr_);
  // Fold in the uncommitted delta of cells inside the block.
  for (const auto& [cell_id, delta] : delta_) {
    const size_t row = RowOf(cell_id);
    const size_t col = ColOf(cell_id);
    if (row < row0 || row > row1 || col < col0 || col > col1) continue;
    count += delta.count;
    out.sum += delta.sum;
    out.sum_sqr += delta.sum_sqr;
  }
  out.count = static_cast<uint64_t>(std::llround(count));
  return out;
}

void GridIndex::Add(const SpatialObject& o) {
  const size_t cell_id = CellOf(o.location);
  cells_[cell_id].Add(o);
  total_.Add(o);
  DeltaEntry& delta = delta_[cell_id];
  delta.count += 1.0;
  delta.sum += o.measure;
  delta.sum_sqr += o.measure * o.measure;
  changed_cells_[cell_id] = true;
}

void GridIndex::SetCell(size_t cell_id, const AggregateSummary& summary) {
  FRA_CHECK_LT(cell_id, cells_.size());
  const AggregateSummary& old = cells_[cell_id];
  DeltaEntry& delta = delta_[cell_id];
  delta.count += static_cast<double>(summary.count) -
                 static_cast<double>(old.count);
  delta.sum += summary.sum - old.sum;
  delta.sum_sqr += summary.sum_sqr - old.sum_sqr;
  // Totals: remove the old contribution's linear parts, add the new
  // (subtract first — the unsigned difference old->new could wrap).
  total_.count = total_.count - old.count + summary.count;
  total_.sum += summary.sum - old.sum;
  total_.sum_sqr += summary.sum_sqr - old.sum_sqr;
  if (summary.min < total_.min) total_.min = summary.min;
  if (summary.max > total_.max) total_.max = summary.max;
  cells_[cell_id] = summary;
  changed_cells_[cell_id] = true;
}

void GridIndex::CommitUpdates() {
  if (delta_.empty()) return;
  delta_.clear();
  RebuildPrefixSums();
}

std::vector<size_t> GridIndex::ChangedCells() const {
  std::vector<size_t> cells;
  cells.reserve(changed_cells_.size());
  for (const auto& [cell_id, _] : changed_cells_) cells.push_back(cell_id);
  std::sort(cells.begin(), cells.end());
  return cells;
}

AggregateSummary GridIndex::IntersectingCellsAggregate(
    const QueryRange& range) const {
  FRA_TRACE_SPAN("grid.intersecting_aggregate");
  AggregateSummary acc;
  const Rect bbox = range.BoundingBox();
  if (!bbox.Intersects(spec_.domain)) return acc;

  auto row_clamped = [&](double y) {
    return static_cast<size_t>(
        std::clamp(std::floor((y - spec_.domain.min.y) / spec_.cell_length),
                   0.0, static_cast<double>(rows_ - 1)));
  };
  size_t row_begin = row_clamped(bbox.min.y);
  if (row_begin > 0) --row_begin;  // lower neighbour may touch at an edge
  const size_t row_end = row_clamped(bbox.max.y);

  if (range.is_rect()) {
    // One O(1) block: every cell in the rectangle's row/col span
    // intersects it. The expanded first row may miss the rectangle
    // entirely; skip forward until a row intersects.
    size_t lo = 0;
    size_t hi = 0;
    size_t row = row_begin;
    while (row <= row_end && !RowSpan(range, row, &lo, &hi)) ++row;
    if (row > row_end) return acc;
    return BlockAggregate(row, lo, row_end, hi);
  }

  for (size_t row = row_begin; row <= row_end; ++row) {
    size_t lo = 0;
    size_t hi = 0;
    if (!RowSpan(range, row, &lo, &hi)) continue;
    acc.Merge(BlockAggregate(row, lo, row, hi));
  }
  return acc;
}

AggregateSummary GridIndex::IntersectingCellsAggregateNaive(
    const QueryRange& range) const {
  AggregateSummary acc;
  const Rect bbox = range.BoundingBox();
  if (!bbox.Intersects(spec_.domain)) return acc;
  for (size_t row = 0; row < rows_; ++row) {
    for (size_t col = 0; col < cols_; ++col) {
      if (range.Intersects(CellRect(row, col))) {
        acc.Merge(cells_[CellId(row, col)]);
      }
    }
  }
  // Naive path recomputes min/max exactly; clear them so results compare
  // field-by-field with the prefix-sum path (which cannot provide them).
  acc.min = AggregateSummary().min;
  acc.max = AggregateSummary().max;
  return acc;
}

void GridIndex::RebuildPrefixSums() {
  const size_t stride = cols_ + 1;
  prefix_count_.assign((rows_ + 1) * stride, 0.0);
  prefix_sum_.assign((rows_ + 1) * stride, 0.0);
  prefix_sum_sqr_.assign((rows_ + 1) * stride, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      const AggregateSummary& cell = cells_[CellId(r, c)];
      const size_t idx = (r + 1) * stride + (c + 1);
      prefix_count_[idx] = static_cast<double>(cell.count) +
                           prefix_count_[r * stride + (c + 1)] +
                           prefix_count_[(r + 1) * stride + c] -
                           prefix_count_[r * stride + c];
      prefix_sum_[idx] = cell.sum + prefix_sum_[r * stride + (c + 1)] +
                         prefix_sum_[(r + 1) * stride + c] -
                         prefix_sum_[r * stride + c];
      prefix_sum_sqr_[idx] = cell.sum_sqr +
                             prefix_sum_sqr_[r * stride + (c + 1)] +
                             prefix_sum_sqr_[(r + 1) * stride + c] -
                             prefix_sum_sqr_[r * stride + c];
    }
  }
}

size_t GridIndex::MemoryUsage() const {
  return cells_.capacity() * sizeof(AggregateSummary) +
         (prefix_count_.capacity() + prefix_sum_.capacity() +
          prefix_sum_sqr_.capacity()) *
             sizeof(double);
}

void GridIndex::Serialize(BinaryWriter* writer) const {
  // Header (5 doubles + 2 u64 dimensions) plus one fixed-width summary
  // per cell: reserving once avoids log(n) reallocations of a payload
  // that reaches tens of MB for city-scale grids.
  writer->Reserve(5 * sizeof(double) + 2 * sizeof(uint64_t) +
                  cells_.size() * AggregateSummary::kWireSize);
  writer->WriteDouble(spec_.domain.min.x);
  writer->WriteDouble(spec_.domain.min.y);
  writer->WriteDouble(spec_.domain.max.x);
  writer->WriteDouble(spec_.domain.max.y);
  writer->WriteDouble(spec_.cell_length);
  writer->WriteU64(rows_);
  writer->WriteU64(cols_);
  for (const AggregateSummary& cell : cells_) cell.Serialize(writer);
}

Status GridIndex::Deserialize(BinaryReader* reader, GridIndex* out) {
  GridSpec spec;
  FRA_RETURN_NOT_OK(reader->ReadDouble(&spec.domain.min.x));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&spec.domain.min.y));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&spec.domain.max.x));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&spec.domain.max.y));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&spec.cell_length));
  uint64_t rows = 0;
  uint64_t cols = 0;
  FRA_RETURN_NOT_OK(reader->ReadU64(&rows));
  FRA_RETURN_NOT_OK(reader->ReadU64(&cols));

  // Bound allocations against the actual payload before building: a
  // corrupted spec or dimension field must not trigger a huge allocation.
  if (!std::isfinite(spec.cell_length) || !std::isfinite(spec.domain.min.x) ||
      !std::isfinite(spec.domain.min.y) || !std::isfinite(spec.domain.max.x) ||
      !std::isfinite(spec.domain.max.y)) {
    return Status::InvalidArgument("malformed grid spec");
  }
  const size_t max_cells = reader->Remaining() / AggregateSummary::kWireSize;
  if (rows == 0 || cols == 0 || rows > max_cells || cols > max_cells ||
      rows * cols > max_cells) {
    return Status::OutOfRange("grid dimensions exceed payload");
  }
  // Compare expected dimensions in doubles: a hostile spec could imply a
  // cell count beyond size_t, which must fail the comparison, not
  // overflow a cast.
  const double expected_rows = spec.cell_length > 0.0 && spec.domain.IsValid()
      ? std::max(1.0, std::ceil(spec.domain.Height() / spec.cell_length))
      : -1.0;
  const double expected_cols = spec.cell_length > 0.0 && spec.domain.IsValid()
      ? std::max(1.0, std::ceil(spec.domain.Width() / spec.cell_length))
      : -1.0;
  if (static_cast<double>(rows) != expected_rows ||
      static_cast<double>(cols) != expected_cols) {
    return Status::InvalidArgument("grid dimensions inconsistent with spec");
  }
  FRA_ASSIGN_OR_RETURN(GridIndex grid, MakeEmpty(spec));
  for (AggregateSummary& cell : grid.cells_) {
    FRA_RETURN_NOT_OK(AggregateSummary::Deserialize(reader, &cell));
    grid.total_.Merge(cell);
  }
  grid.RebuildPrefixSums();
  *out = std::move(grid);
  return Status::OK();
}

}  // namespace fra
