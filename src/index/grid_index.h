#ifndef FRA_INDEX_GRID_INDEX_H_
#define FRA_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "geo/range.h"
#include "geo/rect.h"
#include "util/result.h"
#include "util/serialize.h"
#include "util/status.h"

namespace fra {

/// How a grid cell relates to a query range.
enum class CellRelation {
  kPartial,    // intersects the boundary of R
  kContained,  // lies entirely within R
};

/// The uniform grid index of paper Sec. 4.1: each cell aggregates the
/// measure attributes of the spatial objects it covers. Each silo builds
/// one over its partition (g_i); the service provider merges them into
/// g_0. Cumulative (prefix-sum) arrays over the linear components enable
/// the paper's O(1) block-aggregate remark.
///
/// All grids in a federation share a GridSpec (same domain and cell
/// length) so that cell ids align across silos — a prerequisite for the
/// per-cell estimation of NonIID-est.
class GridIndex {
 public:
  /// Geometry of a grid: the covered domain and the side length of the
  /// square cells (the paper's "grid length" L, in km).
  struct GridSpec {
    Rect domain;
    double cell_length = 1.0;

    size_t Rows() const;
    size_t Cols() const;

    friend bool operator==(const GridSpec& a, const GridSpec& b) {
      return a.domain == b.domain && a.cell_length == b.cell_length;
    }
  };

  GridIndex() = default;

  /// Builds a grid over `objects`. Objects outside the domain are clamped
  /// into the nearest edge cell (the generator never produces any, but
  /// queries near the domain edge must still see consistent totals).
  /// Fails if the spec is degenerate.
  static Result<GridIndex> Build(const ObjectSet& objects,
                                 const GridSpec& spec);

  /// An all-empty grid with the given spec.
  static Result<GridIndex> MakeEmpty(const GridSpec& spec);

  /// Element-wise sum of silo grids — Alg. 1's merged g_0. All parts must
  /// share one spec.
  static Result<GridIndex> Merge(const std::vector<const GridIndex*>& parts);

  const GridSpec& spec() const { return spec_; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t num_cells() const { return rows_ * cols_; }

  size_t CellId(size_t row, size_t col) const { return row * cols_ + col; }
  size_t RowOf(size_t cell_id) const { return cell_id / cols_; }
  size_t ColOf(size_t cell_id) const { return cell_id % cols_; }

  /// Cell containing `p` (clamped to the domain).
  size_t CellOf(const Point& p) const;

  /// Geometric extent of a cell.
  Rect CellRect(size_t row, size_t col) const;

  const AggregateSummary& cell(size_t cell_id) const {
    return cells_[cell_id];
  }

  /// Summary over the whole grid.
  const AggregateSummary& total() const { return total_; }

  /// Invokes `fn(cell_id, relation)` for every cell that intersects
  /// `range`. Candidate cells are derived from per-row circle chords /
  /// the rectangle extent and verified geometrically.
  void ForEachIntersectingCell(
      const QueryRange& range,
      const std::function<void(size_t, CellRelation)>& fn) const;

  /// Partition of the cells intersecting a range into the rectangular
  /// block of fully contained cells and the list of boundary (partially
  /// covered) cells — the shape the provider-side tile cache assembles
  /// answers from (src/cache, docs/caching.md).
  struct RangeCellClassification {
    /// True when the contained cells are exactly the block
    /// [row0..row1] x [col0..col1] (always true for rectangle ranges and
    /// for ranges with no contained cell; circles whose contained cells
    /// stagger per row report false, and callers fall back to the
    /// per-cell path).
    bool block_ok = false;
    size_t row0 = 0, col0 = 0, row1 = 0, col1 = 0;  // valid iff contained > 0
    size_t contained = 0;
    /// Cells intersecting but not contained, ascending cell id — the
    /// order a silo enumerates its boundary contributions in.
    std::vector<uint32_t> boundary_cells;
  };
  RangeCellClassification ClassifyRangeCells(const QueryRange& range) const;

  /// Aggregate of all cells intersecting `range` — the paper's sum_0 /
  /// sum_k. Uses the cumulative-array fast path: O(1) for rectangles,
  /// O(rows) for circles. The returned summary's min/max fields are not
  /// populated (prefix sums cover linear components only).
  AggregateSummary IntersectingCellsAggregate(const QueryRange& range) const;

  /// Reference implementation that walks every candidate cell; used by
  /// tests and the prefix-sum ablation bench.
  AggregateSummary IntersectingCellsAggregateNaive(
      const QueryRange& range) const;

  /// O(1) aggregate of the inclusive cell block
  /// [row0..row1] x [col0..col1] via prefix sums (linear components only).
  AggregateSummary BlockAggregate(size_t row0, size_t col0, size_t row1,
                                  size_t col1) const;

  // --- Incremental updates (streaming ingest) ---------------------------
  //
  // Cells and totals update immediately; the cumulative arrays are only
  // refreshed by CommitUpdates(). Between Add/SetCell and CommitUpdates,
  // prefix-sum reads stay correct because the uncommitted difference is
  // kept in a small per-cell delta that block aggregates fold back in
  // (an LSM-style read path: base prefix + delta scan).

  /// Folds one new object into its cell. O(1) amortised.
  void Add(const SpatialObject& o);

  /// Replaces a cell's summary outright (provider-side application of a
  /// silo's delta-sync payload). Adjusts the grid total accordingly.
  void SetCell(size_t cell_id, const AggregateSummary& summary);

  /// Rebuilds the cumulative arrays and clears the delta. O(cells).
  void CommitUpdates();

  /// Number of cells with uncommitted changes.
  size_t pending_updates() const { return delta_.size(); }

  /// Cell ids touched since the last ClearChangedCells() — what a silo
  /// ships in a delta-sync response.
  std::vector<size_t> ChangedCells() const;
  void ClearChangedCells() { changed_cells_.clear(); }

  /// Heap bytes held by cells + prefix arrays.
  size_t MemoryUsage() const;

  /// Wire format: spec, dimensions, then per-cell summaries. This is what
  /// a silo ships to the provider in Alg. 1, so its size is the index-
  /// construction communication cost.
  void Serialize(BinaryWriter* writer) const;
  static Status Deserialize(BinaryReader* reader, GridIndex* out);

 private:
  void RebuildPrefixSums();

  // Verified column span [*lo, *hi] of cells in `row` intersecting the
  // range; returns false when the row contributes nothing.
  bool RowSpan(const QueryRange& range, size_t row, size_t* lo,
               size_t* hi) const;

  GridSpec spec_;
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<AggregateSummary> cells_;
  AggregateSummary total_;
  // Prefix arrays of size (rows_+1)*(cols_+1); entry (r, c) aggregates the
  // cell block [0, r) x [0, c).
  std::vector<double> prefix_count_;
  std::vector<double> prefix_sum_;
  std::vector<double> prefix_sum_sqr_;
  // Linear components added to each cell since the last CommitUpdates
  // (what the prefix arrays don't know about yet).
  struct DeltaEntry {
    double count = 0.0;
    double sum = 0.0;
    double sum_sqr = 0.0;
  };
  std::unordered_map<size_t, DeltaEntry> delta_;
  // Cells changed since the last delta-sync request.
  std::unordered_map<size_t, bool> changed_cells_;
};

}  // namespace fra

#endif  // FRA_INDEX_GRID_INDEX_H_
