#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace fra {
namespace {

// Orders indices [0, n) into STR (Sort-Tile-Recursive) tile order for the
// given center points and chunk size: sort by x, cut into ~sqrt(n/chunk)
// vertical slices, sort each slice by y. Consecutive runs of `chunk`
// indices then form spatially compact tiles.
std::vector<uint32_t> StrOrder(const std::vector<Point>& centers,
                               size_t chunk) {
  const size_t n = centers.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (n <= chunk) return order;

  const size_t num_tiles = (n + chunk - 1) / chunk;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_tiles))));
  const size_t slice_size = ((num_tiles + num_slices - 1) / num_slices) * chunk;

  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return centers[a].x < centers[b].x;
  });
  for (size_t begin = 0; begin < n; begin += slice_size) {
    const size_t end = std::min(n, begin + slice_size);
    std::sort(order.begin() + begin, order.begin() + end,
              [&](uint32_t a, uint32_t b) { return centers[a].y < centers[b].y; });
  }
  return order;
}

}  // namespace

RTree RTree::Build(ObjectSet objects, const Options& options) {
  FRA_CHECK_GT(options.leaf_capacity, 0);
  FRA_CHECK_GT(options.fanout, 1);

  RTree tree;
  if (objects.empty()) return tree;

  // Leaf level: STR-order the objects, then pack consecutive runs.
  {
    std::vector<Point> centers(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      centers[i] = objects[i].location;
    }
    const std::vector<uint32_t> order =
        StrOrder(centers, static_cast<size_t>(options.leaf_capacity));
    ObjectSet sorted;
    sorted.reserve(objects.size());
    for (uint32_t idx : order) sorted.push_back(objects[idx]);
    tree.objects_ = std::move(sorted);
  }

  const size_t n = tree.objects_.size();
  const size_t leaf_cap = static_cast<size_t>(options.leaf_capacity);
  std::vector<Node> current;
  current.reserve((n + leaf_cap - 1) / leaf_cap);
  for (size_t begin = 0; begin < n; begin += leaf_cap) {
    const size_t end = std::min(n, begin + leaf_cap);
    Node leaf;
    leaf.level = 0;
    leaf.begin = static_cast<uint32_t>(begin);
    leaf.end = static_cast<uint32_t>(end);
    leaf.mbr = Rect::Empty();
    for (size_t i = begin; i < end; ++i) {
      leaf.mbr.ExpandToInclude(tree.objects_[i].location);
      leaf.summary.Add(tree.objects_[i]);
    }
    current.push_back(leaf);
  }

  // Upper levels: STR-order the nodes of the finished level, append them to
  // the node array (so parents can reference a contiguous range), and pack
  // groups of `fanout` under new parents.
  const size_t fanout = static_cast<size_t>(options.fanout);
  uint32_t level = 0;
  while (true) {
    if (current.size() > 1) {
      std::vector<Point> centers(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        centers[i] = current[i].mbr.Center();
      }
      const std::vector<uint32_t> order = StrOrder(centers, fanout);
      std::vector<Node> reordered;
      reordered.reserve(current.size());
      for (uint32_t idx : order) reordered.push_back(current[idx]);
      current = std::move(reordered);
    }

    const uint32_t base = static_cast<uint32_t>(tree.nodes_.size());
    tree.nodes_.insert(tree.nodes_.end(), current.begin(), current.end());
    ++level;
    if (current.size() == 1) break;

    std::vector<Node> parents;
    parents.reserve((current.size() + fanout - 1) / fanout);
    for (size_t begin = 0; begin < current.size(); begin += fanout) {
      const size_t end = std::min(current.size(), begin + fanout);
      Node parent;
      parent.level = level;
      parent.begin = base + static_cast<uint32_t>(begin);
      parent.end = base + static_cast<uint32_t>(end);
      parent.mbr = Rect::Empty();
      for (size_t i = begin; i < end; ++i) {
        parent.mbr.ExpandToInclude(current[i].mbr);
        parent.summary.Merge(current[i].summary);
      }
      parents.push_back(parent);
    }
    current = std::move(parents);
  }

  tree.root_ = static_cast<uint32_t>(tree.nodes_.size()) - 1;
  tree.height_ = static_cast<int>(level);
  tree.total_ = tree.nodes_[tree.root_].summary;
  return tree;
}

AggregateSummary RTree::RangeAggregate(const QueryRange& range,
                                       QueryStats* stats) const {
  AggregateSummary acc;
  if (!nodes_.empty()) AggregateNode(root_, range, &acc, stats);
  return acc;
}

void RTree::AggregateNode(uint32_t node_index, const QueryRange& range,
                          AggregateSummary* acc, QueryStats* stats) const {
  const Node& node = nodes_[node_index];
  if (stats != nullptr) ++stats->nodes_visited;
  if (!range.Intersects(node.mbr)) return;
  if (range.Contains(node.mbr)) {
    acc->Merge(node.summary);
    if (stats != nullptr) ++stats->subtrees_taken;
    return;
  }
  if (node.level == 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (stats != nullptr) ++stats->objects_tested;
      if (range.Contains(objects_[i].location)) acc->Add(objects_[i]);
    }
    return;
  }
  for (uint32_t child = node.begin; child < node.end; ++child) {
    AggregateNode(child, range, acc, stats);
  }
}

AggregateSummary RTree::RangeAggregateClipped(const Rect& clip,
                                              const QueryRange& range,
                                              QueryStats* stats) const {
  AggregateSummary acc;
  if (!nodes_.empty()) AggregateNodeClipped(root_, clip, range, &acc, stats);
  return acc;
}

void RTree::AggregateNodeClipped(uint32_t node_index, const Rect& clip,
                                 const QueryRange& range,
                                 AggregateSummary* acc,
                                 QueryStats* stats) const {
  const Node& node = nodes_[node_index];
  if (stats != nullptr) ++stats->nodes_visited;
  if (!clip.Intersects(node.mbr) || !range.Intersects(node.mbr)) return;
  if (clip.Contains(node.mbr) && range.Contains(node.mbr)) {
    acc->Merge(node.summary);
    if (stats != nullptr) ++stats->subtrees_taken;
    return;
  }
  if (node.level == 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (stats != nullptr) ++stats->objects_tested;
      const Point& p = objects_[i].location;
      if (clip.Contains(p) && range.Contains(p)) acc->Add(objects_[i]);
    }
    return;
  }
  for (uint32_t child = node.begin; child < node.end; ++child) {
    AggregateNodeClipped(child, clip, range, acc, stats);
  }
}

void RTree::CollectInRange(const QueryRange& range,
                           std::vector<SpatialObject>* out) const {
  if (!nodes_.empty()) CollectNode(root_, range, out);
}

void RTree::CollectNode(uint32_t node_index, const QueryRange& range,
                        std::vector<SpatialObject>* out) const {
  const Node& node = nodes_[node_index];
  if (!range.Intersects(node.mbr)) return;
  if (node.level == 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (range.Contains(objects_[i].location)) out->push_back(objects_[i]);
    }
    return;
  }
  if (range.Contains(node.mbr)) {
    // Whole subtree inside: leaves of a packed tree occupy a contiguous
    // object range, but intermediate levels do not expose it directly, so
    // walk down; each visited node is fully covered (cheap, no tests).
    for (uint32_t child = node.begin; child < node.end; ++child) {
      CollectNode(child, range, out);
    }
    return;
  }
  for (uint32_t child = node.begin; child < node.end; ++child) {
    CollectNode(child, range, out);
  }
}

Rect RTree::bounds() const {
  if (nodes_.empty()) return Rect::Empty();
  return nodes_[root_].mbr;
}

size_t RTree::MemoryUsage() const {
  return objects_.capacity() * sizeof(SpatialObject) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace fra
