#ifndef FRA_INDEX_EQUI_DEPTH_HISTOGRAM_H_
#define FRA_INDEX_EQUI_DEPTH_HISTOGRAM_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "geo/range.h"
#include "geo/rect.h"

namespace fra {

/// A 2-D equi-depth spatial histogram: recursive median splits (kd-tree
/// style, alternating on the wider axis) until every bucket holds roughly
/// n / max_buckets objects. Buckets carry tight bounding boxes and
/// aggregate summaries; queries estimate the contribution of a partially
/// covered bucket by the exact intersected-area fraction (uniformity
/// assumption within a bucket).
///
/// This is the substrate of the paper's OPTA baseline [23]: an optimal
/// histogram-based approximate range aggregator with provable guarantees
/// under per-bucket uniformity. Equi-depth median splits are the classic
/// construction with bounded per-bucket error.
class EquiDepthHistogram {
 public:
  struct Options {
    /// Upper bound on the number of buckets.
    size_t max_buckets = 1024;
  };

  struct Bucket {
    Rect bounds;  // tight bbox of the bucket's objects
    AggregateSummary summary;
  };

  EquiDepthHistogram() = default;

  /// Builds the histogram over a copy-by-move of `objects`.
  static EquiDepthHistogram Build(ObjectSet objects, const Options& options);
  static EquiDepthHistogram Build(ObjectSet objects) {
    return Build(std::move(objects), Options());
  }

  /// Area-interpolated estimate of the aggregate summary within `range`.
  /// min/max fields of the result are not populated.
  AggregateSummary Estimate(const QueryRange& range) const;

  const std::vector<Bucket>& buckets() const { return buckets_; }
  const AggregateSummary& total() const { return total_; }
  size_t MemoryUsage() const;

 private:
  std::vector<Bucket> buckets_;
  AggregateSummary total_;
};

}  // namespace fra

#endif  // FRA_INDEX_EQUI_DEPTH_HISTOGRAM_H_
