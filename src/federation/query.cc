#include "federation/query.h"

namespace fra {

const char* FraAlgorithmToString(FraAlgorithm algorithm) {
  switch (algorithm) {
    case FraAlgorithm::kExact:
      return "EXACT";
    case FraAlgorithm::kOpta:
      return "OPTA";
    case FraAlgorithm::kIidEst:
      return "IID-est";
    case FraAlgorithm::kIidEstLsr:
      return "IID-est+LSR";
    case FraAlgorithm::kNonIidEst:
      return "NonIID-est";
    case FraAlgorithm::kNonIidEstLsr:
      return "NonIID-est+LSR";
  }
  return "UNKNOWN";
}

bool IsSingleSilo(FraAlgorithm algorithm) {
  switch (algorithm) {
    case FraAlgorithm::kIidEst:
    case FraAlgorithm::kIidEstLsr:
    case FraAlgorithm::kNonIidEst:
    case FraAlgorithm::kNonIidEstLsr:
      return true;
    case FraAlgorithm::kExact:
    case FraAlgorithm::kOpta:
      return false;
  }
  return false;
}

bool UsesLsr(FraAlgorithm algorithm) {
  return algorithm == FraAlgorithm::kIidEstLsr ||
         algorithm == FraAlgorithm::kNonIidEstLsr;
}

}  // namespace fra
