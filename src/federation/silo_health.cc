#include "federation/silo_health.h"

#include <algorithm>

#include "util/logging.h"

namespace fra {

SiloHealthTracker::SiloHealthTracker(const Options& options)
    : options_(options) {}

SiloHealthTracker::SiloRecord& SiloHealthTracker::RecordFor(int silo_id) {
  const auto it = silos_.find(silo_id);
  if (it != silos_.end()) return it->second;
  SiloRecord& record = silos_[silo_id];
  const MetricLabels labels = {{"silo", std::to_string(silo_id)}};
  MetricsRegistry& registry = MetricsRegistry::Default();
  record.state_gauge = &registry.GetGauge("fra_silo_health_state", labels);
  record.ewma_gauge =
      &registry.GetGauge("fra_silo_latency_ewma_micros", labels);
  record.state_gauge->Set(static_cast<double>(State::kUp));
  return record;
}

void SiloHealthTracker::SetState(int silo_id, SiloRecord& record,
                                 State state) {
  if (record.state != state) {
    // Availability transitions are the health tracker's headline events;
    // kDown means single-silo sampling is now steering around this silo.
    if (state == State::kDown) {
      FRA_LOG(WARN) << "silo " << silo_id << " marked down (was "
                    << StateToString(record.state) << ", "
                    << record.consecutive_failures << " consecutive failures)";
    } else {
      FRA_LOG(INFO) << "silo " << silo_id << " "
                    << StateToString(record.state) << " -> "
                    << StateToString(state);
    }
  }
  record.state = state;
  record.state_gauge->Set(static_cast<double>(state));
}

double SiloHealthTracker::WindowFailureRatio(const SiloRecord& record) const {
  if (record.window.empty()) return 0.0;
  const size_t failures = static_cast<size_t>(
      std::count(record.window.begin(), record.window.end(), true));
  return static_cast<double>(failures) /
         static_cast<double>(record.window.size());
}

void SiloHealthTracker::OnSiloCall(int silo_id, const Status& status,
                                   double micros) {
  // Only unreachable/hung outcomes are availability failures; any other
  // error code means the silo answered and is therefore alive.
  const bool failure = status.IsUnavailable() || status.IsIOError();

  std::lock_guard<std::mutex> lock(mu_);
  SiloRecord& record = RecordFor(silo_id);

  record.window.push_back(failure);
  while (record.window.size() > options_.window) record.window.pop_front();

  if (failure) {
    ++record.failures;
    ++record.consecutive_failures;
    if (record.state == State::kProbing) {
      // Failed probe: re-open the breaker for another backoff interval.
      SetState(silo_id, record, State::kDown);
      record.next_probe_at = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(options_.probe_backoff_ms);
      return;
    }
    if (record.consecutive_failures >=
        options_.down_after_consecutive_failures) {
      if (record.state != State::kDown) {
        SetState(silo_id, record, State::kDown);
        record.next_probe_at =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.probe_backoff_ms);
      }
      return;
    }
    if (record.state == State::kUp &&
        record.window.size() >= options_.min_samples &&
        WindowFailureRatio(record) >= options_.degraded_failure_ratio) {
      SetState(silo_id, record, State::kDegraded);
    }
    return;
  }

  ++record.successes;
  record.consecutive_failures = 0;
  record.ewma_micros = record.ewma_micros == 0.0
                           ? micros
                           : options_.ewma_alpha * micros +
                                 (1.0 - options_.ewma_alpha) *
                                     record.ewma_micros;
  record.ewma_gauge->Set(record.ewma_micros);

  if (record.state == State::kProbing || record.state == State::kDown) {
    // Recovered: readmit with a clean slate so the stale failure window
    // cannot immediately re-degrade the silo.
    record.window.clear();
    record.window.push_back(false);
    SetState(silo_id, record, State::kUp);
    return;
  }
  if (record.state == State::kDegraded &&
      record.window.size() >= options_.min_samples &&
      WindowFailureRatio(record) < options_.degraded_failure_ratio) {
    SetState(silo_id, record, State::kUp);
  }
}

SiloHealthTracker::State SiloHealthTracker::state(int silo_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = silos_.find(silo_id);
  return it == silos_.end() ? State::kUp : it->second.state;
}

bool SiloHealthTracker::IsSelectable(int silo_id) const {
  const State s = state(silo_id);
  return s == State::kUp || s == State::kDegraded;
}

bool SiloHealthTracker::TryBeginProbe(int silo_id) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = silos_.find(silo_id);
  if (it == silos_.end()) return false;
  SiloRecord& record = it->second;
  // A probe whose query never completed (caller died, say) would wedge
  // the silo in kProbing forever; letting the backoff re-admit a probe
  // from kProbing as well makes the machine self-healing.
  if (record.state != State::kDown && record.state != State::kProbing) {
    return false;
  }
  if (now < record.next_probe_at) return false;
  record.next_probe_at =
      now + std::chrono::milliseconds(options_.probe_backoff_ms);
  SetState(silo_id, record, State::kProbing);
  return true;
}

double SiloHealthTracker::LatencyEwmaMicros(int silo_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = silos_.find(silo_id);
  return it == silos_.end() ? 0.0 : it->second.ewma_micros;
}

std::vector<SiloHealthTracker::SiloSnapshot> SiloHealthTracker::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiloSnapshot> out;
  out.reserve(silos_.size());
  for (const auto& [id, record] : silos_) {
    SiloSnapshot snapshot;
    snapshot.silo_id = id;
    snapshot.state = record.state;
    snapshot.latency_ewma_micros = record.ewma_micros;
    snapshot.successes = record.successes;
    snapshot.failures = record.failures;
    snapshot.consecutive_failures = record.consecutive_failures;
    snapshot.window_failure_ratio = WindowFailureRatio(record);
    out.push_back(snapshot);
  }
  return out;
}

const char* SiloHealthTracker::StateToString(State state) {
  switch (state) {
    case State::kUp:
      return "up";
    case State::kDegraded:
      return "degraded";
    case State::kDown:
      return "down";
    case State::kProbing:
      return "probing";
  }
  return "unknown";
}

}  // namespace fra
