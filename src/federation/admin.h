#ifndef FRA_FEDERATION_ADMIN_H_
#define FRA_FEDERATION_ADMIN_H_

#include "federation/service_provider.h"
#include "obs/admin_server.h"

namespace fra {

/// Wires a live federation into an AdminServer:
///
///   /healthz  200 "ok" while every silo is selectable, 503 listing the
///             down/probing silos otherwise (degraded silos keep the
///             federation healthy — they still answer queries).
///   /statusz  one JSON object: federation shape and tuning, build
///             flags, per-silo health snapshots, TCP connection-pool
///             occupancy, auditor counters and communication totals.
///
/// `provider` must outlive `server`. Without health tracking /healthz
/// reports 200 unconditionally (liveness only).
void InstallFederationAdminHandlers(AdminServer* server,
                                    ServiceProvider* provider);

}  // namespace fra

#endif  // FRA_FEDERATION_ADMIN_H_
