#ifndef FRA_FEDERATION_SILO_H_
#define FRA_FEDERATION_SILO_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "core/lsr_forest.h"
#include "federation/privacy.h"
#include "index/equi_depth_histogram.h"
#include "index/grid_index.h"
#include "index/rtree.h"
#include "net/message.h"
#include "net/network.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace fra {

class Histogram;

/// A data silo s_i: the autonomous owner of one horizontal partition
/// P_{s_i} of the federation's spatial objects.
///
/// A silo exposes only a query interface (paper Sec. 2) — raw objects
/// never leave it. Locally it maintains:
///   * a grid index g_i over the shared GridSpec (shipped once to the
///     provider during Alg. 1),
///   * an LSR-Forest whose level-0 tree doubles as the exact aggregate
///     R-tree,
///   * an equi-depth histogram serving the OPTA baseline.
///
/// Local query execution is serialised with a mutex by default, modelling
/// a single-core silo: this is what makes per-silo *workload* (paper
/// Sec. 4.3: |Q|/m queries per silo under single-silo sampling vs |Q|
/// under EXACT) visible in wall-clock throughput.
class Silo : public SiloEndpoint {
 public:
  struct Options {
    GridIndex::GridSpec grid_spec;
    RTree::Options rtree;
    /// Seed for the LSR-Forest's level-sampling coin flips.
    uint64_t lsr_seed = 0x5A17F0E57ULL;
    size_t histogram_buckets = 1024;
    /// Skip the LSR-Forest levels above T_0 (saves build time/memory when
    /// only exact local queries are needed).
    bool build_lsr = true;
    /// Skip the OPTA histogram.
    bool build_histogram = true;
    /// Serialise local query execution (single-core silo model).
    bool serialize_execution = true;
    /// Worker threads answering the entries of one kAggregateBatchRequest
    /// in parallel (multi-core silo; only effective when
    /// serialize_execution is false — a single-core silo executes batch
    /// entries serially under its lock). 0 picks a small default from the
    /// hardware concurrency. The pool is created lazily on the first
    /// batched request, so unbatched deployments pay nothing.
    size_t batch_workers = 0;
    /// Auto-compact when the ingest delta exceeds this fraction of the
    /// base partition (0 disables auto-compaction).
    double compact_fraction = 0.02;
    /// Differential privacy at the silo boundary: when dp.epsilon > 0,
    /// every statistic published over the wire is Laplace-perturbed
    /// (see privacy.h). Direct in-process accessors stay exact — they
    /// model the silo's own trusted computation.
    DpOptions dp;
  };

  /// Builds a silo over a copy-by-move of `objects`.
  static Result<std::unique_ptr<Silo>> Create(int id, ObjectSet objects,
                                              const Options& options);

  /// Persists the silo (its configuration and full object set, ingest
  /// delta included) to a binary snapshot file. A silo process restarts
  /// from the snapshot without its upstream data pipeline; indexes are
  /// rebuilt deterministically from the stored seeds on load.
  Status SaveSnapshot(const std::string& path) const;
  static Result<std::unique_ptr<Silo>> LoadSnapshot(const std::string& path);

  int id() const { return id_; }
  size_t size() const { return num_objects_; }

  // --- Local query interface (what the network requests dispatch to) ---

  /// Exact local range aggregation Q(s_i, R, F) on the aggregate R-tree.
  AggregateSummary ExactRangeAggregate(const QueryRange& range) const;

  /// Approximate local answer via the LSR-Forest (Alg. 6). Falls back to
  /// exact when the forest was not built.
  AggregateSummary LsrRangeAggregate(const QueryRange& range, double epsilon,
                                     double delta, double sum0,
                                     int* level_used = nullptr) const;

  /// OPTA: estimate from the local equi-depth histogram.
  Result<AggregateSummary> HistogramEstimate(const QueryRange& range) const;

  /// NonIID-est (Alg. 3 with the boundary-cell optimisation): for every
  /// grid cell that intersects the *boundary* of `range`, the aggregate of
  /// this silo's objects inside cell ∩ range. With `use_lsr`, per-cell
  /// answers come from the Lemma-1 level of the LSR-Forest.
  std::vector<CellContribution> BoundaryCellContributions(
      const QueryRange& range, bool use_lsr, double epsilon, double delta,
      double sum0) const;

  /// The unoptimised Alg. 3 vector: one contribution per *every* cell
  /// intersecting `range` (contained cells answered exactly from the
  /// grid). Used by the boundary-cell ablation bench.
  std::vector<CellContribution> AllCellContributions(
      const QueryRange& range, bool use_lsr, double epsilon, double delta,
      double sum0) const;

  // --- Streaming ingest --------------------------------------------------
  //
  // A silo's operational system keeps producing records (new trips, bike
  // repositions). Ingested objects are immediately visible to every local
  // query: the grid updates in place and the tree-backed answers add an
  // exact scan over the small uncompacted delta (an LSM-style read path).
  // Compact() folds the delta into the LSR-Forest / histogram; the
  // provider picks up grid changes through delta-sync requests
  // (ServiceProvider::SyncGrids).

  /// Appends a batch of new objects. Thread safe with concurrent queries.
  void Ingest(const ObjectSet& batch);

  /// Rebuilds the LSR-Forest and histogram over base + delta and commits
  /// the grid's prefix arrays. Called automatically when the delta
  /// exceeds Options::compact_fraction of the base.
  void Compact();

  /// Objects ingested since the last Compact().
  size_t pending_ingest() const;

  /// Monotonic count of Ingest() batches absorbed by this silo process.
  /// Shipped to the provider in every grid-delta response so the
  /// dynamic-update epoch of the provider-side answer cache can be tied
  /// to concrete silo updates (docs/caching.md). Not persisted by
  /// snapshots — it versions the running process, not the data set.
  uint64_t data_version() const;

  /// The silo's grid index g_i (tests and in-process provider setup).
  const GridIndex& grid() const { return grid_; }

  /// Summary of the whole partition (ingested objects included).
  const AggregateSummary& total() const { return grid_.total(); }

  /// Heap bytes of the silo's indexes: {rtree_only, lsr_extra, histogram}.
  struct IndexMemory {
    size_t rtree_bytes = 0;      // level-0 aggregate R-tree
    size_t lsr_extra_bytes = 0;  // levels 1..L of the LSR-Forest
    size_t grid_bytes = 0;
    size_t histogram_bytes = 0;
  };
  IndexMemory MemoryUsage() const;

  // --- SiloEndpoint ---
  /// Copying entry point, delegates to HandleMessageView.
  Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& request) override;
  /// The real dispatch: decodes the transport's bytes in place (the view
  /// is only read for the duration of the call) and returns pooled
  /// response buffers — the zero-copy half of silo-side serving.
  Result<std::vector<uint8_t>> HandleMessageView(
      ConstByteSpan request) override;

 private:
  Silo() = default;

  /// Dispatches one decoded (non-batch) request; callers hold
  /// execution_mu_ when serialize_execution is on.
  Result<std::vector<uint8_t>> HandleSingleLocked(MessageType type,
                                                  ConstByteSpan request);
  /// kAggregateBatchRequest: decodes the entry table and answers every
  /// entry — serially under the execution lock for a single-core silo, in
  /// parallel on the local batch pool otherwise. Per-entry failures are
  /// embedded as error-response entries so the batch itself still
  /// round-trips.
  Result<std::vector<uint8_t>> HandleBatchRequest(ConstByteSpan request);
  /// The lazily created batch worker pool.
  ThreadPool* batch_pool();
  /// This silo's fra_query_cost_silo_cpu_microseconds{silo=id} histogram.
  Histogram* HandleCpuHistogram();

  // Unlocked implementations; public entry points take execution_mu_.
  void IngestLocked(const ObjectSet& batch);
  void CompactLocked();
  AggregateSummary DeltaSummary(const QueryRange& range) const;
  AggregateSummary DeltaSummaryClipped(const Rect& clip,
                                       const QueryRange& range) const;

  int id_ = -1;
  size_t num_objects_ = 0;
  GridIndex grid_;
  LsrForest lsr_;
  EquiDepthHistogram histogram_;
  bool has_histogram_ = false;
  bool serialize_execution_ = true;
  double compact_fraction_ = 0.02;
  uint64_t lsr_seed_ = 0;
  RTree::Options rtree_options_;
  size_t histogram_buckets_ = 1024;
  bool build_lsr_ = true;
  // Objects ingested since the last compaction; scanned exactly by every
  // local query until folded into the trees.
  ObjectSet delta_;
  uint64_t compactions_ = 0;
  uint64_t data_version_ = 0;
  std::unique_ptr<LaplaceMechanism> dp_;
  mutable std::mutex execution_mu_;
  // Silo-side CPU attribution (fra_query_cost_silo_cpu_microseconds
  // {silo=id}): one CLOCK_THREAD_CPUTIME_ID delta per dispatched entry,
  // measured on whichever thread executed it. Resolved lazily — id_ is
  // only known after Create().
  std::atomic<Histogram*> handle_cpu_hist_{nullptr};
  size_t batch_workers_ = 0;
  std::mutex batch_pool_mu_;  // guards lazy batch_pool_ creation
  std::unique_ptr<ThreadPool> batch_pool_;
};

}  // namespace fra

#endif  // FRA_FEDERATION_SILO_H_
