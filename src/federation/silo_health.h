#ifndef FRA_FEDERATION_SILO_HEALTH_H_
#define FRA_FEDERATION_SILO_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/network.h"
#include "util/metrics.h"

namespace fra {

/// Per-silo availability tracker, installed as the federation network's
/// SiloCallObserver so every exchange — on either transport — feeds it.
///
/// Each silo moves through a small circuit-breaker state machine:
///
///   kUp ──(failure ratio over the rolling window)──▶ kDegraded
///   kUp/kDegraded ──(consecutive failures)──▶ kDown
///   kDown ──(probe backoff elapsed, TryBeginProbe)──▶ kProbing
///   kProbing ──(probe succeeds)──▶ kUp   /  (probe fails)──▶ kDown
///
/// Only Unavailable / IOError outcomes count as health failures: they
/// mean the silo could not be reached or hung past its deadline. Other
/// error codes (a malformed query, say) prove the silo is alive and are
/// treated as successful exchanges for availability purposes.
///
/// The provider's sampled algorithms consult IsSelectable() so the
/// single-silo draw of Alg. 2/3 lands on healthy silos, and TryBeginProbe
/// hands exactly one caller at a time a down silo to re-try, readmitting
/// recovered silos without a thundering herd.
///
/// Exports, per silo: gauge `fra_silo_health_state{silo=...}` (numeric
/// state, kUp=0 .. kProbing=3) and `fra_silo_latency_ewma_micros{silo=...}`
/// (EWMA over successful exchanges). All methods are thread safe.
class SiloHealthTracker : public SiloCallObserver {
 public:
  enum class State : int {
    kUp = 0,
    kDegraded = 1,
    kDown = 2,
    kProbing = 3,
  };

  struct Options {
    /// Rolling outcome window consulted for the degraded transition.
    size_t window = 16;
    /// Minimum outcomes in the window before the failure ratio is
    /// trusted (avoids declaring a silo degraded off one sample).
    size_t min_samples = 4;
    /// Window failure ratio at or above which a silo is kDegraded.
    double degraded_failure_ratio = 0.25;
    /// Consecutive failures that open the breaker (kDown).
    int down_after_consecutive_failures = 3;
    /// How long a down silo rests before TryBeginProbe admits a probe.
    int probe_backoff_ms = 1000;
    /// Smoothing factor for the latency EWMA (weight of the newest
    /// successful exchange).
    double ewma_alpha = 0.2;
  };

  struct SiloSnapshot {
    int silo_id = 0;
    State state = State::kUp;
    double latency_ewma_micros = 0.0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    int consecutive_failures = 0;
    double window_failure_ratio = 0.0;
  };

  SiloHealthTracker() : SiloHealthTracker(Options{}) {}
  explicit SiloHealthTracker(const Options& options);

  /// SiloCallObserver: one completed exchange feeds the state machine.
  void OnSiloCall(int silo_id, const Status& status, double micros) override;

  /// Current state; silos never seen yet report kUp.
  State state(int silo_id) const;

  /// Whether the sampled algorithms may draw this silo (kUp or
  /// kDegraded — a degraded silo still answers, just unreliably, and
  /// excluding it entirely would bias the Alg. 2 estimator's pool).
  bool IsSelectable(int silo_id) const;

  /// Claims a down silo for one recovery probe: succeeds for at most one
  /// caller per backoff interval, flipping kDown -> kProbing. The caller
  /// should then issue a real query against the silo; the next OnSiloCall
  /// outcome settles the probe (success readmits the silo, failure
  /// re-opens the breaker with a fresh backoff).
  bool TryBeginProbe(int silo_id);

  /// Latency EWMA over successful exchanges, microseconds (0 if none).
  double LatencyEwmaMicros(int silo_id) const;

  /// Every tracked silo, ordered by id.
  std::vector<SiloSnapshot> Snapshot() const;

  const Options& options() const { return options_; }

  static const char* StateToString(State state);

 private:
  struct SiloRecord {
    State state = State::kUp;
    double ewma_micros = 0.0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    int consecutive_failures = 0;
    std::deque<bool> window;  // true = failure
    std::chrono::steady_clock::time_point next_probe_at;
    // Registry instruments, resolved on first sight of the silo.
    Gauge* state_gauge = nullptr;
    Gauge* ewma_gauge = nullptr;
  };

  // Callers hold mu_.
  SiloRecord& RecordFor(int silo_id);
  void SetState(int silo_id, SiloRecord& record, State state);
  double WindowFailureRatio(const SiloRecord& record) const;

  const Options options_;
  mutable std::mutex mu_;
  std::map<int, SiloRecord> silos_;
};

}  // namespace fra

#endif  // FRA_FEDERATION_SILO_HEALTH_H_
