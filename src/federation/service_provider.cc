#include "federation/service_provider.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "net/message.h"
#include "obs/profiler.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace fra {
namespace {

// Every query that enters through Execute / ExecuteBatch lands here once:
// outcome counter plus the per-algorithm latency histogram the throughput
// bench and metrics_dump read back (see docs/observability.md). Registry
// references stay valid for its lifetime, so resolve each (algorithm,
// outcome) instrument once instead of paying the label-map allocations
// and registry lock on every query.
void RecordQueryMetrics(FraAlgorithm algorithm, bool ok, double seconds) {
  struct Instruments {
    Counter* ok = nullptr;
    Counter* error = nullptr;
    Histogram* latency = nullptr;
  };
  static const std::array<Instruments, 6> kInstruments = [] {
    std::array<Instruments, 6> out{};
    for (FraAlgorithm a :
         {FraAlgorithm::kExact, FraAlgorithm::kOpta, FraAlgorithm::kIidEst,
          FraAlgorithm::kIidEstLsr, FraAlgorithm::kNonIidEst,
          FraAlgorithm::kNonIidEstLsr}) {
      const std::string name = FraAlgorithmToString(a);
      MetricsRegistry& registry = MetricsRegistry::Default();
      out[static_cast<size_t>(a)] = {
          &registry.GetCounter("fra_queries_total",
                               {{"algorithm", name}, {"result", "ok"}}),
          &registry.GetCounter("fra_queries_total",
                               {{"algorithm", name}, {"result", "error"}}),
          &registry.GetHistogram("fra_query_latency_microseconds",
                                 {{"algorithm", name}})};
    }
    return out;
  }();
  const Instruments& instruments = kInstruments[static_cast<size_t>(algorithm)];
  (ok ? instruments.ok : instruments.error)->Increment();
  instruments.latency->Observe(seconds * 1e6);
}

// Ratio estimate ans' = res * (numer / denom) (Alg. 2 line 8). The paper
// rescales by ONE factor — the count ratio of the grid aggregates — and
// every component follows it. Scaling sum/sum_sqr by their own
// component-wise ratios (an earlier revision did) breaks down whenever
// the sampled silo's denominator component is 0 or near 0 while objects
// exist (measure values can be zero or negative, so their sums cancel):
// the estimate silently collapsed to 0 or exploded. The count ratio is
// robust — counts are non-negative and denom.count == 0 implies the
// sampled silo saw nothing at all, leaving 0 as the only estimate.
AggregateSummary RatioEstimate(const AggregateSummary& res,
                               const AggregateSummary& numer,
                               const AggregateSummary& denom) {
  AggregateSummary out;
  if (denom.count > 0) {
    const double scale = static_cast<double>(numer.count) /
                         static_cast<double>(denom.count);
    out.count = static_cast<uint64_t>(
        std::llround(static_cast<double>(res.count) * scale));
    out.sum = res.sum * scale;
    out.sum_sqr = res.sum_sqr * scale;
  }
  return out;
}

// Human-readable query text for flight-recorder records, e.g.
// "SUM over rect[(0, 0)..(10, 10)]".
std::string DescribeQuery(const FraQuery& query) {
  std::ostringstream out;
  out << AggregateKindToString(query.kind) << " over ";
  if (query.range.is_circle()) {
    const Circle& c = query.range.circle();
    out << "circle(center=(" << c.center.x << ", " << c.center.y
        << "), radius=" << c.radius << ")";
  } else {
    const Rect& r = query.range.rect();
    out << "rect[(" << r.min.x << ", " << r.min.y << ")..(" << r.max.x
        << ", " << r.max.y << ")]";
  }
  return out.str();
}

}  // namespace

const char* ServiceProvider::CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kOff:
      return "off";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kTile:
      return "tile";
    case CacheOutcome::kMiss:
      return "miss";
  }
  return "off";
}

Result<std::unique_ptr<ServiceProvider>> ServiceProvider::Create(
    Network* network, const Options& options) {
  if (network == nullptr) {
    return Status::InvalidArgument("null network");
  }
  if (network->num_silos() == 0) {
    return Status::InvalidArgument("federation has no registered silos");
  }
  if (options.epsilon <= 0.0 || options.delta <= 0.0 ||
      options.delta >= 1.0) {
    return Status::InvalidArgument("require epsilon > 0 and delta in (0,1)");
  }
  if (options.coalescing.enabled && options.coalescing.max_batch_size == 0) {
    return Status::InvalidArgument("coalescing.max_batch_size must be >= 1");
  }
  if (options.cache.enabled) {
    if (options.cache.tile_layer && options.cache.tile_size == 0) {
      return Status::InvalidArgument("cache.tile_size must be >= 1");
    }
    if (options.cache.min_tile_coverage < 0.0 ||
        options.cache.min_tile_coverage > 1.0) {
      return Status::InvalidArgument(
          "cache.min_tile_coverage must be in [0, 1]");
    }
  }

  auto provider =
      std::unique_ptr<ServiceProvider>(new ServiceProvider(network, options));
  provider->silo_ids_ = network->silo_ids();
  std::sort(provider->silo_ids_.begin(), provider->silo_ids_.end());

  const size_t threads = options.batch_threads > 0
                             ? options.batch_threads
                             : provider->silo_ids_.size();
  provider->batch_pool_ = std::make_unique<ThreadPool>(threads);
  const size_t fanout_threads = options.fanout_threads > 0
                                    ? options.fanout_threads
                                    : provider->silo_ids_.size();
  provider->fanout_pool_ = std::make_unique<ThreadPool>(fanout_threads);

  if (options.coalescing.enabled) {
    RequestCoalescer::Options coalescer_options;
    coalescer_options.max_batch_size = options.coalescing.max_batch_size;
    coalescer_options.max_batch_delay_us = options.coalescing.max_batch_delay_us;
    provider->coalescer_ =
        std::make_unique<RequestCoalescer>(network, coalescer_options);
  }

  // Observability wiring before the first network call, so the Alg. 1
  // grid fetch already feeds the health tracker.
  if (options.track_silo_health) {
    provider->health_ = std::make_unique<SiloHealthTracker>(options.health);
    network->set_call_observer(provider->health_.get());
  }
  if (options.audit_sample_rate > 0.0) {
    AccuracyAuditor::Options audit_options;
    audit_options.sample_rate = options.audit_sample_rate;
    audit_options.seed = options.seed ^ 0xA0D17ULL;
    provider->auditor_ = std::make_unique<AccuracyAuditor>(audit_options);
  }
  if (options.flight_recorder.enabled) {
    FlightRecorder::Options recorder_options;
    recorder_options.capacity = options.flight_recorder.capacity;
    recorder_options.slow_threshold_micros =
        options.flight_recorder.slow_threshold_micros;
    provider->recorder_ = std::make_unique<FlightRecorder>(recorder_options);
  }
  if (options.cost_ledger_enabled) {
    provider->cost_ledger_ = std::make_unique<QueryCostLedger>();
  }
  if (options.profiling.enabled) {
    // The profiler is a process singleton; if another provider (or the
    // admin /debug/profilez endpoint) already runs it, keep theirs.
    ContinuousProfiler::Options profiler_options;
    profiler_options.hz = options.profiling.hz;
    const Status started = ContinuousProfiler::Get().Start(profiler_options);
    if (started.ok()) {
      provider->started_profiler_ = true;
    } else {
      FRA_LOG(WARN) << "continuous profiler not started: "
                    << started.ToString();
    }
  }

  // Alg. 1: fetch every silo's grid index and merge them into g_0. The
  // fetches (round trip + deserialize) run one per silo on the fan-out
  // pool — over TCP the setup cost is max(silo latency), not the sum.
  const std::vector<uint8_t> request = EncodeBuildGridRequest();
  const size_t num_silos = provider->silo_ids_.size();
  std::vector<Result<GridIndex>> fetched(num_silos, GridIndex());
  const auto fetch_grid = [&](size_t i) -> Result<GridIndex> {
    FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                         network->Call(provider->silo_ids_[i], request));
    FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> grid_bytes,
                         DecodeGridPayloadResponse(response));
    BinaryReader reader(grid_bytes);
    GridIndex grid;
    FRA_RETURN_NOT_OK(GridIndex::Deserialize(&reader, &grid));
    return grid;
  };
  std::vector<std::future<void>> fetches;
  fetches.reserve(num_silos > 0 ? num_silos - 1 : 0);
  for (size_t i = 1; i < num_silos; ++i) {
    fetches.push_back(provider->fanout_pool_->Submit(
        [&fetched, &fetch_grid, i] { fetched[i] = fetch_grid(i); }));
  }
  fetched[0] = fetch_grid(0);  // the caller's thread takes one leg
  for (auto& fetch : fetches) fetch.get();
  for (size_t i = 0; i < num_silos; ++i) {
    FRA_RETURN_NOT_OK(fetched[i].status());
    provider->silo_grids_.emplace(provider->silo_ids_[i],
                                  std::move(fetched[i]).ValueOrDie());
  }
  std::vector<const GridIndex*> parts;
  parts.reserve(provider->silo_grids_.size());
  for (const auto& [id, grid] : provider->silo_grids_) parts.push_back(&grid);
  FRA_ASSIGN_OR_RETURN(provider->merged_grid_, GridIndex::Merge(parts));

  // The answer cache needs the merged grid's geometry, so it comes up
  // after Alg. 1.
  if (options.cache.enabled) {
    ProviderCache::Options cache_options;
    cache_options.exact.capacity = options.cache.exact_capacity;
    cache_options.range_quantum = options.cache.range_quantum;
    cache_options.tile_layer = options.cache.tile_layer;
    cache_options.tiles.tile_size = options.cache.tile_size;
    cache_options.tiles.max_tiles = options.cache.max_tiles;
    cache_options.tiles.min_coverage = options.cache.min_tile_coverage;
    provider->cache_ = std::make_unique<ProviderCache>(
        provider->merged_grid_.rows(), provider->merged_grid_.cols(),
        cache_options);
  }

  // Deployment-shape gauges for the most recently created provider.
  MetricsRegistry::Default()
      .GetGauge("fra_federation_silos")
      .Set(static_cast<double>(provider->silo_ids_.size()));
  MetricsRegistry::Default()
      .GetGauge("fra_provider_grid_memory_bytes")
      .Set(static_cast<double>(provider->GridMemoryUsage()));
  return provider;
}

ServiceProvider::~ServiceProvider() {
  if (started_profiler_) ContinuousProfiler::Get().Stop();
  // In-flight background audits replay queries through the pools and the
  // caller's network; drain them while every member is still alive (the
  // fan-out pool is destroyed before the batch pool otherwise).
  if (batch_pool_ != nullptr) batch_pool_->WaitIdle();
  // Flush the coalescer (reason=shutdown) while the network and health
  // observer are still attached.
  coalescer_.reset();
  if (health_ != nullptr && network_->call_observer() == health_.get()) {
    network_->set_call_observer(nullptr);
  }
}

void ServiceProvider::WaitForAudits() {
  if (batch_pool_ != nullptr) batch_pool_->WaitIdle();
}

const GridIndex& ServiceProvider::silo_grid(int silo_id) const {
  const auto it = silo_grids_.find(silo_id);
  FRA_CHECK(it != silo_grids_.end()) << "unknown silo id " << silo_id;
  return it->second;
}

uint64_t ServiceProvider::NextDraw() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.NextUint64();
}

uint64_t ServiceProvider::SampledTraceId() {
  // An explicitly installed context always wins: the caller asked for
  // this specific query to be traced.
  const uint64_t installed = CurrentTraceId();
  if (installed != 0) return installed;
  if (!Tracer::Get().enabled()) return 0;
  const size_t n = options_.trace_sample_every_n;
  if (n <= 1) return NewTraceId();
  return trace_sample_counter_.fetch_add(1, std::memory_order_relaxed) % n == 0
             ? NewTraceId()
             : 0;
}

Result<double> ServiceProvider::Execute(const FraQuery& query,
                                        FraAlgorithm algorithm) {
  // A fresh trace id for every sampled query once the Tracer is enabled
  // (Options::trace_sample_every_n); otherwise keep whatever context the
  // caller installed (0 by default, so the wire format stays
  // envelope-free).
  ScopedTraceId trace_scope(SampledTraceId());
  const uint64_t trace_id = CurrentTraceId();
  QueryFlightLog flight_log;  // collects per-silo outcomes (CallSilo)
  // Installed alongside the flight log: CallSilo charges wire bytes and
  // RPC counts to it, and fan-out legs re-install it on pool threads
  // (QueryCostScope) so their CPU lands in this query's cost too.
  QueryCostTracker cost_tracker;
  // Batch this thread's spans (and ingested silo spans) so the whole
  // query takes the tracer's ring lock once at drain time, not once per
  // span — batch workers would otherwise serialize on it.
  std::optional<SpanCollector> span_batch;
  if (trace_id != 0) span_batch.emplace();
  Timer timer;
  const double cpu_start = ThreadCpuMicros();
  CacheOutcome outcome = CacheOutcome::kOff;
  Result<double> result = [&]() -> Result<double> {
    FRA_TRACE_SPAN("provider.execute");
    const uint64_t draw = IsSingleSilo(algorithm) ? NextDraw() : 0;
    return ExecuteCached(query, algorithm, draw, &outcome);
  }();
  const double seconds = timer.ElapsedSeconds();
  cost_tracker.AddCpuMicros(ThreadCpuMicros() - cpu_start);
  if (span_batch.has_value()) {
    std::vector<SpanRecord> spans = span_batch->Take();
    span_batch.reset();  // uninstall before Ingest so it reaches the ring
    Tracer::Get().Ingest(std::move(spans), std::string());
  }
  FinishQueryAccounting(query, algorithm, result, outcome, trace_id, seconds,
                        &flight_log, cost_tracker);
  return result;
}

void ServiceProvider::FinishQueryAccounting(
    const FraQuery& query, FraAlgorithm algorithm, const Result<double>& result,
    CacheOutcome outcome, uint64_t trace_id, double seconds,
    QueryFlightLog* flight_log, const QueryCostTracker& cost_tracker) {
  RecordQueryMetrics(algorithm, result.ok(), seconds);
  const QueryCost cost = cost_tracker.Snapshot();
  if (cost_ledger_ != nullptr) {
    cost_ledger_->Record(FraAlgorithmToString(algorithm),
                         AggregateKindToString(query.kind),
                         CacheOutcomeName(outcome), result.ok(), cost);
  }
  MaybeRecordFlight(query, algorithm, result, outcome, trace_id, seconds * 1e6,
                    flight_log, cost);
  MaybeAuditAsync(query, algorithm, result, ServedFromCache(outcome));
}

Result<double> ServiceProvider::ExecuteCached(const FraQuery& query,
                                              FraAlgorithm algorithm,
                                              uint64_t draw,
                                              CacheOutcome* outcome) {
  *outcome = cache_ == nullptr ? CacheOutcome::kOff : CacheOutcome::kMiss;
  std::string key;
  if (cache_ != nullptr) {
    // The data epoch is part of the key, so entries cached before a
    // SyncGrids that observed changes can never be returned afterwards —
    // they just age out of the LRU.
    key = cache_->MakeKey(query.range, static_cast<uint8_t>(query.kind),
                          static_cast<uint8_t>(algorithm), options_.epsilon,
                          options_.delta);
    if (const std::optional<double> hit = cache_->exact().Lookup(key)) {
      *outcome = CacheOutcome::kHit;
      return *hit;
    }
  }
  bool from_tile = false;
  Result<double> result =
      IsSingleSilo(algorithm)
          ? ExecuteSampled(query, algorithm, draw, &from_tile)
          : ExecuteWithSilo(query, algorithm, -1);
  if (from_tile) *outcome = CacheOutcome::kTile;
  if (cache_ != nullptr && result.ok()) {
    cache_->exact().Insert(key, *result);
  }
  return result;
}

void ServiceProvider::MaybeAuditAsync(const FraQuery& query,
                                      FraAlgorithm algorithm,
                                      const Result<double>& result,
                                      bool from_cache) {
  if (auditor_ == nullptr || !result.ok()) return;
  // EXACT/OPTA answers are deterministic replays of themselves — nothing
  // to audit — unless a cache layer produced them, in which case the
  // audit measures staleness against the live federation.
  const bool deterministic = algorithm == FraAlgorithm::kExact ||
                             algorithm == FraAlgorithm::kOpta;
  if (deterministic && !from_cache) return;
  if (!auditor_->ShouldAudit()) return;
  // Fire-and-forget on the batch pool: the replay's fan-out legs run on
  // the (leaf) fan-out pool, so audits queued from batch workers cannot
  // deadlock. The replay bypasses Execute so the audit traffic never
  // shows up in fra_queries_total / query latency histograms — and never
  // consults the cache, so the baseline is always live.
  const double estimate = *result;
  const double epsilon = options_.epsilon;
  const std::string name = std::string(FraAlgorithmToString(algorithm)) +
                           (from_cache ? "+cache" : "");
  (void)batch_pool_->Submit([this, query, estimate, epsilon, name] {
    FRA_TRACE_SPAN("provider.audit");
    const Result<double> exact =
        ExecuteWithSilo(query, FraAlgorithm::kExact, -1);
    if (exact.ok()) {
      auditor_->Record(name, estimate, *exact, epsilon);
    } else {
      auditor_->RecordFailure(name);
    }
  });
}

void ServiceProvider::MaybeRecordFlight(const FraQuery& query,
                                        FraAlgorithm algorithm,
                                        const Result<double>& result,
                                        CacheOutcome outcome,
                                        uint64_t trace_id, double micros,
                                        QueryFlightLog* log,
                                        const QueryCost& cost) {
  if (recorder_ == nullptr) return;
  if (!recorder_->ShouldCapture(!result.ok(), micros)) return;
  FlightRecorder::Record record;
  record.trace_id = trace_id;
  record.query = DescribeQuery(query);
  record.algorithm = FraAlgorithmToString(algorithm);
  record.cache = CacheOutcomeName(outcome);
  record.cost = cost;
  record.failed = !result.ok();
  record.status = result.ok() ? "ok" : result.status().ToString();
  record.duration_micros = micros;
  record.silos = log->TakeSilos();
  // By now the trace is complete in the Tracer: the network ingests
  // response span sections before the decoders run, and the
  // provider.execute root closed before the timer was read.
  if (trace_id != 0) {
    record.spans = Tracer::Get().SpansForTrace(trace_id);
  }
  recorder_->Add(std::move(record));
}

Result<double> ServiceProvider::ExecuteSampled(const FraQuery& query,
                                               FraAlgorithm algorithm,
                                               uint64_t draw,
                                               bool* served_from_tile) {
  // Candidate silos: all of them, or — per the Sec. 4.2.2 remark for
  // non-overlapping coverage — only those whose grid index reports data in
  // cells touching the range (known provider-side from Alg. 1, no comm).
  std::vector<int> candidates;
  candidates.reserve(silo_ids_.size());
  {
    FRA_TRACE_SPAN("provider.dispatch");
    if (options_.sample_relevant_silos_only) {
      for (int silo_id : silo_ids_) {
        const auto& grid = silo_grids_.at(silo_id);
        if (grid.IntersectingCellsAggregate(query.range).count > 0) {
          candidates.push_back(silo_id);
        }
      }
    } else {
      candidates = silo_ids_;
    }
  }
  if (options_.sample_relevant_silos_only && candidates.empty()) {
    // No silo has any object near the range: the exact answer is empty.
    AggregateSummary empty;
    double value = 0.0;
    FRA_RETURN_NOT_OK(empty.Finalize(query.kind, &value));
    return value;
  }

  if (!IsEstimable(query.kind)) {
    return Status::InvalidArgument(
        std::string(AggregateKindToString(query.kind)) +
        " requires the EXACT algorithm");
  }

  // Tile layer: when the cache already holds (valid) tiles covering the
  // range's contained-cell block, the interior needs no silo at all —
  // only the boundary cells still want refinement. In kFraction mode
  // even those are answered from the cached g_0 aggregates (zero silo
  // exchanges); in kSiloRefine mode the query falls through to the
  // normal sampling below but runs the NonIID boundary path with the
  // cached interior. Cold tiles are filled from merged_grid_ as a side
  // effect, warming the cache for the next overlapping query.
  TileAssembly assembly;
  bool use_tiles = false;
  if (cache_ != nullptr && cache_->tile_layer_enabled()) {
    FRA_TRACE_SPAN("provider.tile_assemble");
    const GridIndex::RangeCellClassification cls =
        merged_grid_.ClassifyRangeCells(query.range);
    if (cls.block_ok) {
      TileCache::Plan plan = cache_->tiles().Assemble(
          cls.contained > 0, cls.row0, cls.col0, cls.row1, cls.col1,
          cls.boundary_cells,
          [this](size_t cell_id) { return merged_grid_.cell(cell_id); });
      if (plan.servable) {
        // The prefix-summed interior carries no extrema; make that
        // explicit so Finalize cannot report stale min/max.
        plan.interior.min = AggregateSummary().min;
        plan.interior.max = AggregateSummary().max;
        if (cls.boundary_cells.empty()) {
          // Cell-aligned range: the tiles ARE the answer.
          if (served_from_tile != nullptr) *served_from_tile = true;
          double value = 0.0;
          FRA_RETURN_NOT_OK(plan.interior.Finalize(query.kind, &value));
          return value;
        }
        using BoundaryMode = Options::CacheOptions::BoundaryMode;
        if (options_.cache.boundary_mode == BoundaryMode::kFraction) {
          AggregateSummary estimate = plan.interior;
          for (size_t i = 0; i < cls.boundary_cells.size(); ++i) {
            const AggregateSummary& g0_cell = plan.boundary[i];
            if (g0_cell.count == 0) continue;
            const uint32_t cell_id = cls.boundary_cells[i];
            const Rect cell_rect = merged_grid_.CellRect(
                merged_grid_.RowOf(cell_id), merged_grid_.ColOf(cell_id));
            const double area = cell_rect.Area();
            const double fraction =
                area > 0.0
                    ? std::clamp(
                          query.range.IntersectionArea(cell_rect) / area, 0.0,
                          1.0)
                    : 0.0;
            estimate.count += static_cast<uint64_t>(std::llround(
                static_cast<double>(g0_cell.count) * fraction));
            estimate.sum += g0_cell.sum * fraction;
            estimate.sum_sqr += g0_cell.sum_sqr * fraction;
          }
          if (served_from_tile != nullptr) *served_from_tile = true;
          double value = 0.0;
          FRA_RETURN_NOT_OK(estimate.Finalize(query.kind, &value));
          return value;
        }
        assembly.interior = plan.interior;
        assembly.boundary_cells = cls.boundary_cells;
        assembly.boundary_g0 = std::move(plan.boundary);
        use_tiles = true;
      }
    }
  }

  // Visit candidates in a rotated order starting from the random draw;
  // collect k per-silo estimated summaries (k = silos_per_query), skipping
  // failed silos when retry is enabled. Averaging the summaries (not the
  // finalised values) keeps AVG/STDEV consistent: the ratio is taken once
  // on the averaged components.
  //
  // With health tracking on, the rotation runs over the selectable
  // (up/degraded) candidates only, so the draw cannot land on a silo the
  // breaker has opened for. When the backoff of a down candidate has
  // elapsed, exactly one query per interval claims it as a recovery probe
  // and tries it FIRST — a successful answer readmits the silo, a failure
  // re-opens the breaker and the query rotates on as usual. All
  // candidates down and no probe due: fail open and try everyone rather
  // than failing the query without a single exchange.
  std::vector<int> order;
  order.reserve(candidates.size());
  const auto rotate_into_order = [&](const std::vector<int>& from) {
    const size_t start = static_cast<size_t>(draw % from.size());
    for (size_t i = 0; i < from.size(); ++i) {
      order.push_back(from[(start + i) % from.size()]);
    }
  };
  if (health_ != nullptr) {
    std::vector<int> selectable;
    selectable.reserve(candidates.size());
    for (int silo_id : candidates) {
      if (health_->IsSelectable(silo_id)) selectable.push_back(silo_id);
    }
    if (!selectable.empty()) rotate_into_order(selectable);
    if (options_.retry_on_silo_failure) {
      // Probing costs one attempt, so only a query that can rotate away
      // from a still-dead silo volunteers.
      for (int silo_id : candidates) {
        if (!health_->IsSelectable(silo_id) &&
            health_->TryBeginProbe(silo_id)) {
          order.insert(order.begin(), silo_id);
          break;
        }
      }
    }
    if (order.empty()) rotate_into_order(candidates);
  } else {
    rotate_into_order(candidates);
  }

  const size_t want =
      std::max<size_t>(1, std::min(options_.silos_per_query, order.size()));
  Status last_failure = Status::OK();
  AggregateSummary accumulated;
  double collected = 0.0;
  const size_t attempts = options_.retry_on_silo_failure ? order.size() : want;
  for (size_t attempt = 0; attempt < attempts && collected < want;
       ++attempt) {
    Result<AggregateSummary> partial =
        use_tiles ? RunNonIidEst(query.range, order[attempt],
                                 UsesLsr(algorithm), &assembly)
                  : RunAlgorithm(query.range, algorithm, order[attempt]);
    if (partial.ok()) {
      accumulated.count += partial->count;
      accumulated.sum += partial->sum;
      accumulated.sum_sqr += partial->sum_sqr;
      collected += 1.0;
      continue;
    }
    if (partial.status().IsInvalidArgument()) return partial.status();
    last_failure = partial.status();
  }
  if (collected == 0.0) {
    return Status::Unavailable("all candidate silos failed; last error: " +
                               last_failure.ToString());
  }
  if (use_tiles && served_from_tile != nullptr) *served_from_tile = true;
  const AggregateSummary mean = accumulated.Scaled(1.0 / collected);
  double value = 0.0;
  FRA_RETURN_NOT_OK(mean.Finalize(query.kind, &value));
  return value;
}

Result<double> ServiceProvider::ExecuteWithSilo(const FraQuery& query,
                                                FraAlgorithm algorithm,
                                                int silo_id) {
  if (algorithm != FraAlgorithm::kExact && !IsEstimable(query.kind)) {
    return Status::InvalidArgument(
        std::string(AggregateKindToString(query.kind)) +
        " requires the EXACT algorithm");
  }
  FRA_ASSIGN_OR_RETURN(AggregateSummary summary,
                       RunAlgorithm(query.range, algorithm, silo_id));
  double value = 0.0;
  FRA_RETURN_NOT_OK(summary.Finalize(query.kind, &value));
  return value;
}

Result<AggregateSummary> ServiceProvider::RunAlgorithm(const QueryRange& range,
                                                       FraAlgorithm algorithm,
                                                       int silo_id) {
  switch (algorithm) {
    case FraAlgorithm::kExact:
      return RunFanOut(range, /*histogram=*/false);
    case FraAlgorithm::kOpta:
      return RunFanOut(range, /*histogram=*/true);
    case FraAlgorithm::kIidEst:
      return RunIidEst(range, silo_id, /*use_lsr=*/false);
    case FraAlgorithm::kIidEstLsr:
      return RunIidEst(range, silo_id, /*use_lsr=*/true);
    case FraAlgorithm::kNonIidEst:
      return RunNonIidEst(range, silo_id, /*use_lsr=*/false);
    case FraAlgorithm::kNonIidEstLsr:
      return RunNonIidEst(range, silo_id, /*use_lsr=*/true);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<std::vector<uint8_t>> ServiceProvider::CallSilo(
    int silo_id, const std::vector<uint8_t>& request) {
  // The uniform per-silo outcome tap of the flight recorder: every
  // data-plane exchange of a recorded query passes through here on a
  // thread where the query's log is installed (Execute/ExecuteBatch
  // install it; fan-out legs re-install it via QueryFlightLogScope).
  // Background audits run on pool threads with no log — excluded by
  // construction.
  QueryFlightLog* log = QueryFlightLog::Current();
  // The cost tracker rides the same thread-local mechanism: every
  // data-plane byte and RPC of the query is charged here, whichever
  // thread the exchange runs on.
  QueryCostTracker* cost = QueryCostTracker::Current();
  if (log == nullptr && cost == nullptr) {
    if (coalescer_ != nullptr) return coalescer_->Call(silo_id, request);
    return network_->Call(silo_id, request);
  }
  Timer timer;
  Result<std::vector<uint8_t>> response =
      coalescer_ != nullptr ? coalescer_->Call(silo_id, request)
                            : network_->Call(silo_id, request);
  if (log != nullptr) {
    log->NoteSilo(silo_id, response.status(), timer.ElapsedMicros());
  }
  if (cost != nullptr) {
    cost->NoteSiloCall(request.size(), response.ok() ? response->size() : 0);
  }
  return response;
}

Result<AggregateSummary> ServiceProvider::RunFanOut(const QueryRange& range,
                                                    bool histogram) {
  FRA_TRACE_SPAN("provider.fan_out");
  AggregateRequest request;
  request.range = range;
  request.mode = histogram ? LocalQueryMode::kHistogram : LocalQueryMode::kExact;
  const std::vector<uint8_t> encoded = request.Encode();

  // One leg per silo on the fan-out pool (the caller's thread takes the
  // first), so the round trips overlap and the fan-out costs
  // max(silo latency) instead of the sum. Legs are leaves — they never
  // submit to a pool themselves — so batch workers fanning out
  // concurrently cannot deadlock. Partials are merged in silo-id order:
  // floating-point sums must not depend on arrival order (EXACT answers
  // are asserted bit-identical across transports and runs).
  const size_t num_silos = silo_ids_.size();
  const uint64_t trace_id = CurrentTraceId();
  QueryFlightLog* flight = QueryFlightLog::Current();
  QueryCostTracker* cost = QueryCostTracker::Current();
  std::vector<Result<AggregateSummary>> partials(num_silos,
                                                 AggregateSummary());
  const auto call_silo = [&](size_t i) {
    ScopedTraceId trace_scope(trace_id);
    QueryFlightLogScope flight_scope(flight);
    // Pool legs re-install the query's cost tracker and attribute their
    // thread-CPU time to it. The caller's own leg is already inside the
    // CPU window Execute measures on its thread — a second scope there
    // would double-count it.
    std::optional<QueryCostScope> cost_scope;
    if (QueryCostTracker::Current() == nullptr) cost_scope.emplace(cost);
    partials[i] = [&]() -> Result<AggregateSummary> {
      FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                           CallSilo(silo_ids_[i], encoded));
      return DecodeSummaryResponse(response);
    }();
  };
  std::vector<std::future<void>> legs;
  legs.reserve(num_silos > 0 ? num_silos - 1 : 0);
  for (size_t i = 1; i < num_silos; ++i) {
    legs.push_back(fanout_pool_->Submit([&call_silo, i] { call_silo(i); }));
  }
  call_silo(0);
  for (auto& leg : legs) leg.get();

  AggregateSummary total;
  for (size_t i = 0; i < num_silos; ++i) {
    FRA_RETURN_NOT_OK(partials[i].status());
    total.Merge(*partials[i]);
  }
  return total;
}

Result<AggregateSummary> ServiceProvider::RunIidEst(const QueryRange& range,
                                                    int silo_id,
                                                    bool use_lsr) {
  FRA_TRACE_SPAN("provider.iid_est");
  const auto grid_it = silo_grids_.find(silo_id);
  if (grid_it == silo_grids_.end()) {
    return Status::InvalidArgument("unknown sampled silo id " +
                                   std::to_string(silo_id));
  }
  // sum_0 / sum_k over the cells intersecting R, via prefix sums
  // (Sec. 4.2.1 remark).
  const AggregateSummary sum0 = merged_grid_.IntersectingCellsAggregate(range);
  if (sum0.count == 0) {
    // No federation object lies in any cell touching R => exact zero.
    return AggregateSummary();
  }
  const AggregateSummary sumk = grid_it->second.IntersectingCellsAggregate(range);

  AggregateRequest request;
  request.range = range;
  request.mode = use_lsr ? LocalQueryMode::kLsr : LocalQueryMode::kExact;
  request.epsilon = options_.epsilon;
  request.delta = options_.delta;
  // Lemma 1's rough estimate of the silo-local result: the sampled silo's
  // own grid aggregate over the intersecting cells.
  request.sum0 = static_cast<double>(sumk.count);

  FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                       CallSilo(silo_id, request.Encode()));
  FRA_ASSIGN_OR_RETURN(AggregateSummary res_k, DecodeSummaryResponse(response));
  FRA_TRACE_SPAN("provider.rescale");
  return RatioEstimate(res_k, sum0, sumk);
}

Result<AggregateSummary> ServiceProvider::RunNonIidEst(
    const QueryRange& range, int silo_id, bool use_lsr,
    const TileAssembly* tiles) {
  FRA_TRACE_SPAN("provider.non_iid_est");
  const auto grid_it = silo_grids_.find(silo_id);
  if (grid_it == silo_grids_.end()) {
    return Status::InvalidArgument("unknown sampled silo id " +
                                   std::to_string(silo_id));
  }
  const GridIndex& silo_grid = grid_it->second;

  // Classify the cells touching R from g_0. With the boundary-only
  // optimisation (default), fully covered cells contribute their exact
  // federation-wide aggregate (Sec. 4.2.2 remark) and only boundary cells
  // need the sampled silo's clipped contributions; the unoptimised Alg. 3
  // requests the vector for every intersecting cell. A tile-cache
  // assembly short-circuits the classification entirely: the interior
  // block and the boundary cells' g_0 summaries were already recovered
  // from cached tiles.
  const bool boundary_only =
      tiles != nullptr || options_.non_iid_boundary_only;
  AggregateSummary interior;
  std::vector<uint32_t> expected_cells;
  if (tiles != nullptr) {
    interior = tiles->interior;
    expected_cells = tiles->boundary_cells;
  } else {
    merged_grid_.ForEachIntersectingCell(
        range, [&](size_t cell_id, CellRelation relation) {
          if (boundary_only && relation == CellRelation::kContained) {
            interior.Merge(merged_grid_.cell(cell_id));
          } else {
            expected_cells.push_back(static_cast<uint32_t>(cell_id));
          }
        });
  }
  // Drop the exact min/max of the interior cells: the boundary estimate
  // below cannot extend them, so the combined summary must not pretend to
  // carry extrema.
  interior.min = AggregateSummary().min;
  interior.max = AggregateSummary().max;

  if (expected_cells.empty()) return interior;

  CellVectorRequest request;
  request.range = range;
  request.mode = use_lsr ? LocalQueryMode::kLsr : LocalQueryMode::kExact;
  request.epsilon = options_.epsilon;
  request.delta = options_.delta;
  request.sum0 = static_cast<double>(
      silo_grid.IntersectingCellsAggregate(range).count);
  request.full_vector = !boundary_only;

  FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                       CallSilo(silo_id, request.Encode()));
  FRA_ASSIGN_OR_RETURN(std::vector<CellContribution> contributions,
                       DecodeCellVectorResponse(response));
  if (contributions.size() != expected_cells.size()) {
    return Status::Internal("silo cell vector size mismatch");
  }

  FRA_TRACE_SPAN("provider.rescale");
  AggregateSummary estimate = interior;
  for (size_t i = 0; i < contributions.size(); ++i) {
    const CellContribution& res_i = contributions[i];
    if (res_i.cell_id != expected_cells[i]) {
      return Status::Internal("silo cell vector id mismatch");
    }
    const AggregateSummary& g0_cell = tiles != nullptr
                                          ? tiles->boundary_g0[i]
                                          : merged_grid_.cell(res_i.cell_id);
    if (g0_cell.count == 0) continue;  // nothing anywhere in this cell
    const AggregateSummary& gk_cell = silo_grid.cell(res_i.cell_id);
    if (gk_cell.count == 0) {
      // The sampled silo has no objects in this cell, so the per-cell
      // ratio is undefined. Fall back to the uniformity assumption the
      // estimator already makes within a cell: scale the federation-wide
      // cell aggregate by the intersected-area fraction.
      const Rect cell_rect = merged_grid_.CellRect(
          merged_grid_.RowOf(res_i.cell_id), merged_grid_.ColOf(res_i.cell_id));
      const double area = cell_rect.Area();
      const double fraction =
          area > 0.0
              ? std::clamp(range.IntersectionArea(cell_rect) / area, 0.0, 1.0)
              : 0.0;
      estimate.count += static_cast<uint64_t>(std::llround(
          static_cast<double>(g0_cell.count) * fraction));
      estimate.sum += g0_cell.sum * fraction;
      estimate.sum_sqr += g0_cell.sum_sqr * fraction;
      continue;
    }
    // est_i = res_i^k * (aggregation of cell i in g_0) /
    //                   (aggregation of cell i in g_k)       (Alg. 3 line 6)
    const AggregateSummary est_i =
        RatioEstimate(res_i.summary, g0_cell, gk_cell);
    estimate.count += est_i.count;
    estimate.sum += est_i.sum;
    estimate.sum_sqr += est_i.sum_sqr;
  }
  return estimate;
}

Result<std::vector<double>> ServiceProvider::ExecuteBatch(
    const std::vector<FraQuery>& queries, FraAlgorithm algorithm,
    std::vector<double>* latencies_seconds,
    std::vector<Status>* per_query_status) {
  std::vector<double> results(queries.size(),
                              std::numeric_limits<double>::quiet_NaN());
  std::vector<Status> statuses(queries.size());
  if (latencies_seconds != nullptr) {
    latencies_seconds->assign(queries.size(), 0.0);
  }

  // Pre-draw the silo-sampling randomness so the assignment is
  // deterministic given the seed, independent of worker scheduling
  // (Alg. 4 line 2).
  std::vector<uint64_t> draws(queries.size(), 0);
  const bool single_silo = IsSingleSilo(algorithm);
  if (single_silo) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    for (uint64_t& draw : draws) draw = rng_.NextUint64();
  }

  // One pool task per WORKER, not per query: workers pull the next query
  // off a shared index, so a 10k-query batch costs num_threads() task
  // submissions instead of 10k queue/future round trips.
  std::atomic<size_t> next_query{0};
  const auto worker = [this, &queries, &results, &statuses, &draws,
                       algorithm, single_silo, latencies_seconds,
                       &next_query] {
    for (size_t i = next_query.fetch_add(1); i < queries.size();
         i = next_query.fetch_add(1)) {
      ScopedTraceId trace_scope(SampledTraceId());
      const uint64_t trace_id = CurrentTraceId();
      QueryFlightLog flight_log;
      QueryCostTracker cost_tracker;
      // One ring-lock acquisition per query at drain time (see Execute):
      // without this, every span of every worker contends on the tracer.
      std::optional<SpanCollector> span_batch;
      if (trace_id != 0) span_batch.emplace();
      Timer timer;
      const double cpu_start = ThreadCpuMicros();
      CacheOutcome outcome = CacheOutcome::kOff;
      Result<double> result = [&]() -> Result<double> {
        FRA_TRACE_SPAN("provider.execute");
        return ExecuteCached(queries[i], algorithm, draws[i], &outcome);
      }();
      const double seconds = timer.ElapsedSeconds();
      cost_tracker.AddCpuMicros(ThreadCpuMicros() - cpu_start);
      if (span_batch.has_value()) {
        std::vector<SpanRecord> spans = span_batch->Take();
        span_batch.reset();
        Tracer::Get().Ingest(std::move(spans), std::string());
      }
      if (latencies_seconds != nullptr) {
        (*latencies_seconds)[i] = seconds;
      }
      FinishQueryAccounting(queries[i], algorithm, result, outcome, trace_id,
                            seconds, &flight_log, cost_tracker);
      if (result.ok()) {
        results[i] = *result;
      } else {
        statuses[i] = result.status();
      }
    }
  };
  const size_t workers =
      std::min(queries.size(), batch_pool_->num_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(batch_pool_->Submit(worker));
  }
  for (auto& future : futures) future.get();

  // Every query ran to completion regardless of its neighbours' fate
  // (one failure used to discard the whole batch). With
  // `per_query_status` the caller gets every answer plus one status per
  // query; without it the batch still fails as a unit, but the status
  // names the first failing query's index and failed slots stay NaN.
  if (per_query_status != nullptr) {
    *per_query_status = std::move(statuses);
    return results;
  }
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(),
                    "batch query " + std::to_string(i) +
                        " failed: " + statuses[i].message());
    }
  }
  return results;
}

double ServiceProvider::MeasureHeterogeneity() const {
  const uint64_t total = merged_grid_.total().count;
  if (total == 0) return 0.0;
  double mean_tv = 0.0;
  size_t measured = 0;
  for (const auto& [silo_id, grid] : silo_grids_) {
    const uint64_t silo_total = grid.total().count;
    if (silo_total == 0) continue;
    double tv = 0.0;
    for (size_t cell = 0; cell < grid.num_cells(); ++cell) {
      const double p_silo = static_cast<double>(grid.cell(cell).count) /
                            static_cast<double>(silo_total);
      const double p_all =
          static_cast<double>(merged_grid_.cell(cell).count) /
          static_cast<double>(total);
      tv += std::abs(p_silo - p_all);
    }
    mean_tv += 0.5 * tv;
    ++measured;
  }
  return measured > 0 ? mean_tv / static_cast<double>(measured) : 0.0;
}

FraAlgorithm ServiceProvider::RecommendAlgorithm(bool use_lsr) const {
  const bool skewed =
      MeasureHeterogeneity() > options_.heterogeneity_threshold;
  if (skewed) {
    return use_lsr ? FraAlgorithm::kNonIidEstLsr : FraAlgorithm::kNonIidEst;
  }
  return use_lsr ? FraAlgorithm::kIidEstLsr : FraAlgorithm::kIidEst;
}

Status ServiceProvider::SyncGrids() {
  const std::vector<uint8_t> request = EncodeGridDeltaRequest();
  bool any_change = false;
  std::vector<size_t> changed_cells;
  for (int silo_id : silo_ids_) {
    FRA_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                         network_->Call(silo_id, request));
    uint64_t data_version = 0;
    FRA_ASSIGN_OR_RETURN(std::vector<CellContribution> changed,
                         DecodeGridDeltaResponse(response, &data_version));
    if (data_version != 0) {
      std::lock_guard<std::mutex> lock(versions_mu_);
      silo_data_versions_[silo_id] = data_version;
    }
    if (changed.empty()) continue;
    any_change = true;
    GridIndex& silo_grid = silo_grids_.at(silo_id);
    for (const CellContribution& cell : changed) {
      if (cell.cell_id >= silo_grid.num_cells()) {
        return Status::Internal("delta sync cell id out of range");
      }
      changed_cells.push_back(cell.cell_id);
      // g_0's cell changes by the same difference as the silo's cell.
      const AggregateSummary& old = silo_grid.cell(cell.cell_id);
      AggregateSummary merged = merged_grid_.cell(cell.cell_id);
      merged.count = merged.count - old.count + cell.summary.count;
      merged.sum += cell.summary.sum - old.sum;
      merged.sum_sqr += cell.summary.sum_sqr - old.sum_sqr;
      if (cell.summary.min < merged.min) merged.min = cell.summary.min;
      if (cell.summary.max > merged.max) merged.max = cell.summary.max;
      merged_grid_.SetCell(cell.cell_id, merged);
      silo_grid.SetCell(cell.cell_id, cell.summary);
    }
    silo_grid.CommitUpdates();
    silo_grid.ClearChangedCells();
  }
  if (any_change) {
    merged_grid_.CommitUpdates();
    merged_grid_.ClearChangedCells();
    if (cache_ != nullptr) {
      // Bump the data epoch (orphaning every exact-layer entry) and
      // invalidate exactly the tiles the changed cells fall in; tiles
      // elsewhere keep serving.
      std::sort(changed_cells.begin(), changed_cells.end());
      changed_cells.erase(
          std::unique(changed_cells.begin(), changed_cells.end()),
          changed_cells.end());
      cache_->OnDataChanged(changed_cells);
      FRA_LOG(INFO) << "grid delta sync touched " << changed_cells.size()
                    << " cells; cache epoch now " << cache_->epoch();
    }
  }
  return Status::OK();
}

std::map<int, uint64_t> ServiceProvider::silo_data_versions() const {
  std::lock_guard<std::mutex> lock(versions_mu_);
  return silo_data_versions_;
}

size_t ServiceProvider::GridMemoryUsage() const {
  size_t bytes = merged_grid_.MemoryUsage();
  for (const auto& [id, grid] : silo_grids_) bytes += grid.MemoryUsage();
  return bytes;
}

}  // namespace fra
