#include "federation/federation.h"

#include <utility>

namespace fra {

Rect DomainOf(const std::vector<ObjectSet>& partitions) {
  Rect domain = Rect::Empty();
  for (const ObjectSet& partition : partitions) {
    for (const SpatialObject& o : partition) {
      domain.ExpandToInclude(o.location);
    }
  }
  return domain;
}

Result<std::unique_ptr<Federation>> Federation::Create(
    std::vector<ObjectSet> partitions, FederationOptions options) {
  if (partitions.empty()) {
    return Status::InvalidArgument("federation needs at least one partition");
  }
  if (!options.silo.grid_spec.domain.IsValid() ||
      options.silo.grid_spec.domain.Area() <= 0.0) {
    Rect domain = DomainOf(partitions);
    if (!domain.IsValid()) {
      return Status::InvalidArgument(
          "cannot infer a grid domain from empty partitions");
    }
    // Pad degenerate extents so the domain has positive area.
    const double kMinExtent = 1e-6;
    if (domain.Width() <= 0.0) domain.max.x = domain.min.x + kMinExtent;
    if (domain.Height() <= 0.0) domain.max.y = domain.min.y + kMinExtent;
    options.silo.grid_spec.domain = domain;
  }

  auto federation = std::unique_ptr<Federation>(new Federation());
  federation->network_ =
      std::make_unique<InProcessNetwork>(options.latency);

  for (size_t i = 0; i < partitions.size(); ++i) {
    Silo::Options silo_options = options.silo;
    // Give each silo an independent level-sampling stream.
    silo_options.lsr_seed = options.silo.lsr_seed + i * 0x9E3779B97F4A7C15ULL;
    FRA_ASSIGN_OR_RETURN(
        std::unique_ptr<Silo> silo,
        Silo::Create(static_cast<int>(i), std::move(partitions[i]),
                     silo_options));
    FRA_RETURN_NOT_OK(
        federation->network_->RegisterSilo(silo->id(), silo.get()));
    federation->silos_.push_back(std::move(silo));
  }

  FRA_ASSIGN_OR_RETURN(
      federation->provider_,
      ServiceProvider::Create(federation->network_.get(), options.provider));
  return federation;
}

Federation::MemoryReport Federation::MemoryUsage() const {
  MemoryReport report;
  report.provider_grid_bytes = provider_->GridMemoryUsage();
  for (const auto& silo : silos_) {
    const Silo::IndexMemory memory = silo->MemoryUsage();
    report.silo_grid_bytes += memory.grid_bytes;
    report.rtree_bytes += memory.rtree_bytes;
    report.lsr_extra_bytes += memory.lsr_extra_bytes;
    report.histogram_bytes += memory.histogram_bytes;
  }
  return report;
}

}  // namespace fra
