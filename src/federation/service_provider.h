#ifndef FRA_FEDERATION_SERVICE_PROVIDER_H_
#define FRA_FEDERATION_SERVICE_PROVIDER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/provider_cache.h"
#include "federation/query.h"
#include "federation/silo_health.h"
#include "index/grid_index.h"
#include "net/network.h"
#include "net/request_coalescer.h"
#include "obs/accuracy_auditor.h"
#include "obs/cost_ledger.h"
#include "obs/flight_recorder.h"
#include "util/random.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace fra {

/// The federation's service provider: the only party a client talks to.
///
/// On construction it runs Alg. 1 — it requests the grid index g_i from
/// every silo over the network and merges them into g_0 — after which it
/// can execute FRA queries with any of the paper's six algorithms:
///
///   * EXACT / OPTA fan out to every silo concurrently (one leg per
///     silo on the fan-out pool) and sum the (exact /
///     histogram-estimated) partial answers in silo order.
///   * IID-est (Alg. 2) samples ONE silo uniformly at random, fetches its
///     partial answer res_k, and rescales by the grid ratio
///     sum_0 / sum_k computed from g_0 and g_k via prefix sums.
///   * NonIID-est (Alg. 3) samples one silo and rescales per grid cell;
///     cells fully covered by R contribute their exact g_0 aggregate
///     (Sec. 4.2.2 remark), so only boundary cells travel on the wire.
///   * The +LSR variants answer the silo-local queries on the LSR-Forest
///     level chosen by Lemma 1 (sum0 = the sampled silo's grid estimate).
///
/// ExecuteBatch implements Alg. 4: every query is dispatched to a worker
/// pool with one thread per silo, so queries whose sampled silos differ
/// run in parallel — the source of the paper's >250 queries/s throughput.
class ServiceProvider {
 public:
  struct Options {
    /// Approximation ratio of LSR-Forest local queries (paper eps).
    double epsilon = 0.1;
    /// Failure probability bound of LSR-Forest local queries (paper delta).
    double delta = 0.01;
    /// Seed for silo sampling; batches derive one stream per query.
    uint64_t seed = 20220415;
    /// Worker threads for ExecuteBatch; 0 means one per silo.
    size_t batch_threads = 0;
    /// Worker threads for the EXACT/OPTA fan-out and the Alg. 1 grid
    /// fetch (one leg per silo, overlapping the round trips); 0 means
    /// one per silo. Fan-out legs are leaf tasks on a pool separate
    /// from the batch pool, so nested use from ExecuteBatch workers
    /// cannot deadlock.
    size_t fanout_threads = 0;
    /// Sample only silos whose grid shows data in cells intersecting the
    /// query range (the Sec. 4.2.2 remark for non-overlapping coverage).
    /// Costs nothing extra: the provider already holds every g_i.
    bool sample_relevant_silos_only = true;
    /// Resample a different silo when the sampled one is unreachable or
    /// answers with an error; a query fails only when every candidate
    /// silo has failed.
    bool retry_on_silo_failure = true;
    /// NonIID-est ships per-cell contributions for boundary cells only
    /// (Sec. 4.2.2 remark). Setting false transmits the full Alg. 3
    /// vector — kept for the communication ablation.
    bool non_iid_boundary_only = true;
    /// Silos sampled per query by the single-silo algorithms. The paper
    /// uses 1; higher values average k independent per-silo estimates,
    /// trading communication (k exchanges) for lower variance. Clamped
    /// to the number of candidate silos.
    size_t silos_per_query = 1;
    /// Heterogeneity above which RecommendAlgorithm picks the NonIID
    /// estimator family (mean total-variation distance, see
    /// MeasureHeterogeneity).
    double heterogeneity_threshold = 0.05;
    /// Track per-silo health at the network boundary and steer the
    /// single-silo sampling toward healthy silos (docs/observability.md,
    /// "Silo health").
    bool track_silo_health = true;
    /// State-machine tuning of the health tracker.
    SiloHealthTracker::Options health;
    /// Fraction of successful approximate queries re-executed EXACT in
    /// the background to audit the (eps, delta) guarantee; 0 disables
    /// the auditor.
    double audit_sample_rate = 0.01;
    /// Per-silo request coalescing (docs/wire_protocol.md, "Batch
    /// frames"): data-plane silo requests issued by concurrent queries
    /// are staged per silo and shipped as one kAggregateBatchRequest
    /// frame when `max_batch_size` requests are staged or the oldest has
    /// waited `max_batch_delay_us`. Amortises framing and syscalls under
    /// Alg. 4 load; a lone query pays at most the delay. Control-plane
    /// traffic (Alg. 1 grid fetch, SyncGrids) always goes direct.
    struct CoalescingOptions {
      bool enabled = false;
      size_t max_batch_size = 16;
      int max_batch_delay_us = 200;
    };
    CoalescingOptions coalescing;
    /// Provider-side two-layer answer cache (docs/caching.md): an LRU of
    /// finalised answers keyed on (range, F, algorithm, eps, delta, data
    /// epoch) plus a tile layer of grid-aligned partial aggregates that
    /// answers warm ranges without contacting any silo for their covered
    /// cells. SyncGrids bumps the data epoch and invalidates affected
    /// tiles. Off by default: cached answers refresh on SyncGrids only,
    /// a freshness trade the deployment must opt into.
    struct CacheOptions {
      bool enabled = false;
      /// Exact-layer LRU capacity (answers).
      size_t exact_capacity = 1024;
      /// Snap range coordinates to multiples of this before keying, so
      /// near-identical ranges share an entry; 0 keys exact bits.
      double range_quantum = 0.0;
      /// Tile layer on/off (applies to the single-silo estimators only;
      /// EXACT/OPTA answers are never tile-assembled).
      bool tile_layer = true;
      /// Grid cells per tile side.
      size_t tile_size = 4;
      /// Tile LRU capacity.
      size_t max_tiles = 4096;
      /// Serve from tiles only when at least this fraction of the tiles
      /// a query needs was already cached and valid; colder queries take
      /// the normal path (and warm their tiles for the next query).
      double min_tile_coverage = 1.0;
      /// Boundary (partially covered) cells of a tile-assembled answer:
      /// `kSiloRefine` asks the sampled silo for its clipped per-cell
      /// contributions and rescales per cell (one exchange — the
      /// NonIID-est boundary path with cached interior); `kFraction`
      /// scales the cached federation-wide cell aggregates by the
      /// intersected-area fraction (zero exchanges, within-cell
      /// uniformity assumption — see docs/caching.md for the error
      /// argument).
      enum class BoundaryMode { kSiloRefine, kFraction };
      BoundaryMode boundary_mode = BoundaryMode::kSiloRefine;
    };
    CacheOptions cache;
    /// Slow-query flight recorder (docs/observability.md, "Flight
    /// recorder"): a bounded ring of the last `capacity` queries that ran
    /// slower than `slow_threshold_micros` or failed, each carrying its
    /// stitched span tree, per-silo outcomes and cache disposition.
    /// Served at /debug/flightz. The fast-path cost is one atomic load
    /// per query, so it stays on by default.
    struct FlightRecorderOptions {
      bool enabled = true;
      size_t capacity = 64;
      double slow_threshold_micros = 50'000.0;
    };
    FlightRecorderOptions flight_recorder;
    /// Continuous profiling (docs/observability.md, "Continuous
    /// profiling"): with `enabled`, Create() starts the process-wide
    /// sampling profiler at `hz` and the provider's destructor stops it
    /// (unless something else had already started it — the profiler is a
    /// process singleton). /debug/profilez serves the collapsed stacks
    /// either way.
    struct ProfilingOptions {
      bool enabled = false;
      int hz = 19;
    };
    ProfilingOptions profiling;
    /// Per-query cost ledger (docs/observability.md, "Query cost
    /// ledger"): attribute each query's thread-CPU time, wire bytes,
    /// silo RPCs and coalescer queue-wait, rolled up per {algorithm,
    /// aggregate, cache-outcome} (fra_query_cost_*, /statusz, and every
    /// flight-recorder entry). Costs one CLOCK_THREAD_CPUTIME_ID read
    /// pair per thread touching the query, so it stays on by default.
    bool cost_ledger_enabled = true;
    /// Head-sampling for query traces: with the Tracer enabled, every
    /// n-th Execute/ExecuteBatch query (provider-wide counter, first
    /// query always) starts a fresh trace; the others run untraced, so
    /// per-query tracing cost — span capture, the wire envelope, silo
    /// span shipping, ring residency — scales down by n
    /// (BENCH_observability_overhead.json quantifies it). 1 traces every
    /// query — the setting for interactive investigation. A trace id the
    /// caller installed via ScopedTraceId is always honored as-is,
    /// sampled or not. Flight-recorder records of unsampled queries
    /// carry silo outcomes and cache disposition but no span tree.
    size_t trace_sample_every_n = 8;
  };

  /// Runs Alg. 1 against every silo registered with `network`.
  /// `network` must outlive the provider.
  static Result<std::unique_ptr<ServiceProvider>> Create(
      Network* network, const Options& options);
  static Result<std::unique_ptr<ServiceProvider>> Create(
      Network* network) {
    return Create(network, Options());
  }

  /// Drains in-flight background audits and detaches the health tracker
  /// from the network.
  ~ServiceProvider();

  /// Executes one FRA query. Single-silo algorithms sample the silo from
  /// the provider's seeded generator. MIN/MAX require kExact.
  Result<double> Execute(const FraQuery& query, FraAlgorithm algorithm);

  /// Deterministic-silo variant for tests and unbiasedness studies.
  Result<double> ExecuteWithSilo(const FraQuery& query,
                                 FraAlgorithm algorithm, int silo_id);

  /// Alg. 4: processes `queries` in parallel across the silo pool.
  /// Results are positionally aligned with `queries`. When
  /// `latencies_seconds` is non-null it receives one wall-clock duration
  /// per query (same order), enabling tail-latency reporting.
  ///
  /// Failure handling: every query runs to completion regardless of its
  /// neighbours. With `per_query_status` non-null the call returns the
  /// full result vector (failed slots NaN) plus one Status per query;
  /// with it null, any failure fails the whole call with a status naming
  /// the first failing query's index.
  Result<std::vector<double>> ExecuteBatch(
      const std::vector<FraQuery>& queries, FraAlgorithm algorithm,
      std::vector<double>* latencies_seconds = nullptr,
      std::vector<Status>* per_query_status = nullptr);

  /// Mean total-variation distance between each silo's spatial (count)
  /// distribution and the federation-wide one, computed from the grids
  /// the provider already holds. ~0 for IID partitions (sampling noise
  /// only), grows with per-silo spatial skew.
  double MeasureHeterogeneity() const;

  /// Picks the estimator family for this federation: NonIID-est when
  /// MeasureHeterogeneity() exceeds Options::heterogeneity_threshold
  /// (per-cell rescaling pays off), IID-est otherwise (cheaper comm).
  FraAlgorithm RecommendAlgorithm(bool use_lsr) const;

  /// Executes with the recommended estimator.
  Result<double> ExecuteAuto(const FraQuery& query, bool use_lsr = true) {
    return Execute(query, RecommendAlgorithm(use_lsr));
  }

  /// Streaming-ingest support: pulls each silo's grid cells changed since
  /// the last sync and applies them to the retained g_i and the merged
  /// g_0, so the estimators see fresh distributions. Communication is
  /// proportional to the number of *changed* cells, not the grid size.
  /// Must not run concurrently with Execute/ExecuteBatch (control-plane
  /// operation, like Create).
  Status SyncGrids();

  const GridIndex& merged_grid() const { return merged_grid_; }
  const GridIndex& silo_grid(int silo_id) const;
  const std::vector<int>& silo_ids() const { return silo_ids_; }
  size_t num_silos() const { return silo_ids_.size(); }

  double epsilon() const { return options_.epsilon; }
  double delta() const { return options_.delta; }
  void set_epsilon(double epsilon) { options_.epsilon = epsilon; }
  void set_delta(double delta) { options_.delta = delta; }

  /// Provider-side index memory: g_0 plus the m retained silo grids.
  size_t GridMemoryUsage() const;

  /// Communication counters of the underlying network.
  CommStats::Snapshot comm() const { return network_->stats().Read(); }

  /// The per-silo health tracker (null when track_silo_health is off).
  SiloHealthTracker* health() const { return health_.get(); }
  /// The guarantee auditor (null when audit_sample_rate is 0).
  AccuracyAuditor* auditor() const { return auditor_.get(); }
  /// The two-layer answer cache (null when Options::cache is disabled).
  ProviderCache* cache() const { return cache_.get(); }
  /// The slow-query flight recorder (null when disabled).
  FlightRecorder* flight_recorder() const { return recorder_.get(); }
  /// The per-query cost ledger (null when cost_ledger_enabled is false).
  QueryCostLedger* cost_ledger() const { return cost_ledger_.get(); }

  /// Last data version reported by each silo over the delta-sync path
  /// (0 until the first SyncGrids after an ingest).
  std::map<int, uint64_t> silo_data_versions() const;

  /// Blocks until every background audit queued so far has completed
  /// (tests and the metrics_dump demo read auditor counters after this).
  void WaitForAudits();

  const Options& options() const { return options_; }

 private:
  explicit ServiceProvider(Network* network, const Options& options)
      : network_(network), options_(options), rng_(options.seed) {}

  /// One uniform 64-bit draw from the provider's stream (thread safe).
  uint64_t NextDraw();

  /// The trace id a query should run under: the caller's installed id
  /// when present, a fresh one for every trace_sample_every_n-th query
  /// while the Tracer is enabled, 0 otherwise.
  uint64_t SampledTraceId();

  /// Interior + boundary aggregates a tile-cache plan recovered for a
  /// range (ExecuteSampled builds it, RunNonIidEst consumes it): the
  /// contained-cell block is already summed and every boundary cell's
  /// federation-wide g_0 summary is at hand, so the only silo work left
  /// is the boundary refinement.
  struct TileAssembly {
    AggregateSummary interior;
    std::vector<uint32_t> boundary_cells;
    std::vector<AggregateSummary> boundary_g0;
  };

  /// How the cache shaped one answer. This is the `cache` label of the
  /// cost ledger and the flight recorder: `off` (no cache configured),
  /// `hit` (exact-layer), `tile` (assembled from cached tiles), `miss`
  /// (cache on, normal path taken).
  enum class CacheOutcome { kOff, kHit, kTile, kMiss };
  static const char* CacheOutcomeName(CacheOutcome outcome);
  static bool ServedFromCache(CacheOutcome outcome) {
    return outcome == CacheOutcome::kHit || outcome == CacheOutcome::kTile;
  }

  /// Cache-aware Execute body: exact-layer lookup, then the normal
  /// execution path (which may itself serve from tiles), then insert.
  /// `*outcome` reports which cache layer (if any) shaped the answer
  /// (audits treat cache-served answers as estimates even for kExact).
  Result<double> ExecuteCached(const FraQuery& query, FraAlgorithm algorithm,
                               uint64_t draw, CacheOutcome* outcome);

  /// Executes a single-silo algorithm with the silo chosen from `draw`:
  /// candidates are the relevant silos (when enabled), and failures
  /// rotate to the next candidate (when enabled). `*served_from_tile`
  /// (optional) reports whether the tile layer supplied the interior.
  Result<double> ExecuteSampled(const FraQuery& query, FraAlgorithm algorithm,
                                uint64_t draw,
                                bool* served_from_tile = nullptr);

  Result<AggregateSummary> RunFanOut(const QueryRange& range, bool histogram);
  Result<AggregateSummary> RunIidEst(const QueryRange& range, int silo_id,
                                     bool use_lsr);
  /// With `tiles` non-null, the interior and the boundary cells' g_0
  /// summaries come from the tile cache instead of merged_grid_ walks.
  Result<AggregateSummary> RunNonIidEst(const QueryRange& range, int silo_id,
                                        bool use_lsr,
                                        const TileAssembly* tiles = nullptr);
  Result<AggregateSummary> RunAlgorithm(const QueryRange& range,
                                        FraAlgorithm algorithm, int silo_id);

  /// Data-plane exchange with one silo: through the coalescer when
  /// enabled, a direct Network::Call otherwise.
  Result<std::vector<uint8_t>> CallSilo(int silo_id,
                                        const std::vector<uint8_t>& request);

  /// Audits `result` with probability audit_sample_rate: queues an EXACT
  /// re-execution of `query` on the batch pool and scores the estimate
  /// against it (fire-and-forget; WaitForAudits drains). Cache-served
  /// answers are audit-eligible even for EXACT/OPTA — staleness is
  /// exactly what the auditor should surface for them.
  void MaybeAuditAsync(const FraQuery& query, FraAlgorithm algorithm,
                       const Result<double>& result, bool from_cache);

  /// Captures `query` into the flight recorder when it was slow or
  /// failed: query text, cache disposition, the silo outcomes collected
  /// in `log`, the cost breakdown measured by the query's tracker, and —
  /// when `trace_id` is nonzero — the stitched span tree pulled from the
  /// Tracer at completion time.
  void MaybeRecordFlight(const FraQuery& query, FraAlgorithm algorithm,
                         const Result<double>& result, CacheOutcome outcome,
                         uint64_t trace_id, double micros, QueryFlightLog* log,
                         const QueryCost& cost);

  /// Ledger + flight-recorder + audit tail shared by Execute and the
  /// ExecuteBatch workers, after the query's timer has been read.
  void FinishQueryAccounting(const FraQuery& query, FraAlgorithm algorithm,
                             const Result<double>& result,
                             CacheOutcome outcome, uint64_t trace_id,
                             double seconds, QueryFlightLog* flight_log,
                             const QueryCostTracker& cost_tracker);

  Network* network_;
  Options options_;
  std::vector<int> silo_ids_;
  std::map<int, GridIndex> silo_grids_;
  GridIndex merged_grid_;
  std::unique_ptr<ThreadPool> batch_pool_;
  // Leaf pool for per-silo fan-out legs (RunFanOut, Create's grid
  // fetch); separate from batch_pool_ so a batch worker that fans out
  // blocks only on leaf tasks, never on tasks queued behind itself.
  std::unique_ptr<ThreadPool> fanout_pool_;
  std::unique_ptr<SiloHealthTracker> health_;
  std::unique_ptr<AccuracyAuditor> auditor_;
  // Micro-batches data-plane silo calls (null when coalescing is off).
  std::unique_ptr<RequestCoalescer> coalescer_;
  // Two-layer answer cache (null when Options::cache is disabled).
  std::unique_ptr<ProviderCache> cache_;
  // Slow-query flight recorder (null when disabled).
  std::unique_ptr<FlightRecorder> recorder_;
  // Per-query cost rollups (null when cost_ledger_enabled is false).
  std::unique_ptr<QueryCostLedger> cost_ledger_;
  // True when Create() started the process-wide profiler on behalf of
  // this provider; the destructor stops it then.
  bool started_profiler_ = false;
  // Head-sampling counter behind Options::trace_sample_every_n.
  std::atomic<uint64_t> trace_sample_counter_{0};
  mutable std::mutex versions_mu_;  // guards silo_data_versions_
  std::map<int, uint64_t> silo_data_versions_;
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace fra

#endif  // FRA_FEDERATION_SERVICE_PROVIDER_H_
