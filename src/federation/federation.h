#ifndef FRA_FEDERATION_FEDERATION_H_
#define FRA_FEDERATION_FEDERATION_H_

#include <memory>
#include <vector>

#include "federation/service_provider.h"
#include "federation/silo.h"
#include "net/network.h"
#include "util/result.h"

namespace fra {

/// Configuration for assembling a complete federation in process.
struct FederationOptions {
  Silo::Options silo;
  ServiceProvider::Options provider;
  InProcessNetwork::LatencyModel latency;
};

/// Owns a full in-process federation: one simulated network, m silos
/// (one per partition), and the service provider that indexed them via
/// Alg. 1. This is the top-level entry point of the library:
///
///   auto federation = Federation::Create(std::move(partitions), options);
///   double answer = federation->provider().Execute(
///       {QueryRange::MakeCircle({10, 20}, 2.0), AggregateKind::kCount},
///       FraAlgorithm::kNonIidEstLsr).ValueOrDie();
class Federation {
 public:
  /// Builds a silo per partition and constructs the provider. If
  /// `options.silo.grid_spec.domain` is invalid (the default), the domain
  /// is computed as the bounding box of all partitions.
  static Result<std::unique_ptr<Federation>> Create(
      std::vector<ObjectSet> partitions, FederationOptions options);

  ServiceProvider& provider() { return *provider_; }

  /// Streaming-ingest convenience: feeds a batch into one silo and pulls
  /// the grid deltas into the provider (see ServiceProvider::SyncGrids).
  Status IngestAndSync(size_t silo_index, const ObjectSet& batch) {
    if (silo_index >= silos_.size()) {
      return Status::InvalidArgument("silo index out of range");
    }
    silos_[silo_index]->Ingest(batch);
    return provider_->SyncGrids();
  }
  const ServiceProvider& provider() const { return *provider_; }
  InProcessNetwork& network() { return *network_; }
  size_t num_silos() const { return silos_.size(); }
  Silo& silo(size_t index) { return *silos_[index]; }
  const Silo& silo(size_t index) const { return *silos_[index]; }

  /// Index memory across the whole federation, bucketed by structure —
  /// the paper's "memory of indices" metric.
  struct MemoryReport {
    size_t provider_grid_bytes = 0;  // g_0 + retained g_i at the provider
    size_t silo_grid_bytes = 0;      // each silo's own g_i
    size_t rtree_bytes = 0;          // level-0 aggregate R-trees
    size_t lsr_extra_bytes = 0;      // LSR-Forest levels above T_0
    size_t histogram_bytes = 0;      // OPTA histograms

    size_t TotalBytes() const {
      return provider_grid_bytes + silo_grid_bytes + rtree_bytes +
             lsr_extra_bytes + histogram_bytes;
    }
  };
  MemoryReport MemoryUsage() const;

 private:
  Federation() = default;

  std::unique_ptr<InProcessNetwork> network_;
  std::vector<std::unique_ptr<Silo>> silos_;
  std::unique_ptr<ServiceProvider> provider_;
};

/// Bounding box of every object across `partitions`; !IsValid() when all
/// partitions are empty.
Rect DomainOf(const std::vector<ObjectSet>& partitions);

}  // namespace fra

#endif  // FRA_FEDERATION_FEDERATION_H_
