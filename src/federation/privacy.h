#ifndef FRA_FEDERATION_PRIVACY_H_
#define FRA_FEDERATION_PRIVACY_H_

#include <mutex>

#include "agg/aggregate.h"
#include "util/random.h"

namespace fra {

/// Differential-privacy configuration for a silo's published statistics.
///
/// The paper leaves privacy preservation on spatial data federations as
/// future work (Sec. 9.1); this extension implements the standard
/// epsilon-DP Laplace mechanism at the silo boundary: every aggregate the
/// silo publishes (scalar answers, per-cell vectors, grid indices, grid
/// deltas) is perturbed with Laplace noise calibrated to the query
/// sensitivity before it leaves the silo.
///
/// Scope note: this protects individual records within each *published
/// statistic* (one record changes COUNT by 1, SUM by at most
/// measure_bound, SUM_SQR by at most measure_bound^2). Composition
/// accounting across repeated publications — the full privacy-budget
/// bookkeeping of a production deployment — is intentionally out of
/// scope and called out in DESIGN.md.
struct DpOptions {
  /// Privacy parameter per published statistic; 0 disables the mechanism
  /// (the paper's non-private setting).
  double epsilon = 0.0;
  /// Upper bound on |measure| used for SUM/SUM_SQR sensitivity. The
  /// bundled generator produces passenger counts in [0, 4].
  double measure_bound = 4.0;
};

/// Thread-safe Laplace perturbation of aggregate summaries.
class LaplaceMechanism {
 public:
  LaplaceMechanism(const DpOptions& options, uint64_t seed)
      : options_(options), rng_(seed) {}

  bool enabled() const { return options_.epsilon > 0.0; }
  const DpOptions& options() const { return options_; }

  /// Adds sensitivity-calibrated Laplace noise to the linear components.
  /// COUNT and SUM_SQR are clamped at zero after noising (they are
  /// non-negative by definition; the clamp introduces a small positive
  /// bias on near-empty sets, the usual DP-histogram trade-off). The
  /// exact extrema cannot be published under DP and are cleared.
  AggregateSummary Perturb(const AggregateSummary& summary);

 private:
  DpOptions options_;
  std::mutex mu_;
  Rng rng_;
};

}  // namespace fra

#endif  // FRA_FEDERATION_PRIVACY_H_
