#include "federation/silo.h"

#include <algorithm>
#include <fstream>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_cost.h"
#include "util/serialize.h"
#include "util/trace.h"

namespace fra {
namespace {

/// Observes the enclosing scope's thread-CPU delta: the cost of the
/// silo-side work itself, excluding any wait for the execution lock
/// (construct after the lock is held).
class ScopedSiloCpu {
 public:
  explicit ScopedSiloCpu(Histogram* hist)
      : hist_(hist), start_(ThreadCpuMicros()) {}
  ~ScopedSiloCpu() {
    if (hist_ != nullptr) hist_->Observe(ThreadCpuMicros() - start_);
  }
  ScopedSiloCpu(const ScopedSiloCpu&) = delete;
  ScopedSiloCpu& operator=(const ScopedSiloCpu&) = delete;

 private:
  Histogram* hist_;
  double start_;
};

}  // namespace

Result<std::unique_ptr<Silo>> Silo::Create(int id, ObjectSet objects,
                                           const Options& options) {
  auto silo = std::unique_ptr<Silo>(new Silo());
  silo->id_ = id;
  silo->num_objects_ = objects.size();
  silo->serialize_execution_ = options.serialize_execution;
  silo->batch_workers_ = options.batch_workers;
  silo->compact_fraction_ = options.compact_fraction;
  silo->lsr_seed_ = options.lsr_seed;
  silo->rtree_options_ = options.rtree;
  silo->histogram_buckets_ = options.histogram_buckets;
  silo->build_lsr_ = options.build_lsr;
  silo->dp_ = std::make_unique<LaplaceMechanism>(
      options.dp, options.lsr_seed ^ 0xD9E7C0FFEEULL ^
                      (static_cast<uint64_t>(id) << 17));

  FRA_ASSIGN_OR_RETURN(silo->grid_,
                       GridIndex::Build(objects, options.grid_spec));

  LsrForest::Options lsr_options;
  lsr_options.rtree = options.rtree;
  lsr_options.seed = options.lsr_seed ^ (static_cast<uint64_t>(id) << 32);
  lsr_options.max_levels = options.build_lsr ? -1 : 1;
  silo->lsr_ = LsrForest::Build(objects, lsr_options);

  if (options.build_histogram) {
    EquiDepthHistogram::Options hist_options;
    hist_options.max_buckets = options.histogram_buckets;
    silo->histogram_ = EquiDepthHistogram::Build(std::move(objects), hist_options);
    silo->has_histogram_ = true;
  }
  return silo;
}

AggregateSummary Silo::DeltaSummary(const QueryRange& range) const {
  return SummarizeIf(delta_,
                     [&range](const Point& p) { return range.Contains(p); });
}

AggregateSummary Silo::DeltaSummaryClipped(const Rect& clip,
                                           const QueryRange& range) const {
  return SummarizeIf(delta_, [&](const Point& p) {
    return clip.Contains(p) && range.Contains(p);
  });
}

AggregateSummary Silo::ExactRangeAggregate(const QueryRange& range) const {
  AggregateSummary result = lsr_.ExactRangeAggregate(range);
  if (!delta_.empty()) result.Merge(DeltaSummary(range));
  return result;
}

AggregateSummary Silo::LsrRangeAggregate(const QueryRange& range,
                                         double epsilon, double delta,
                                         double sum0, int* level_used) const {
  AggregateSummary result =
      lsr_.ApproximateRangeAggregate(range, epsilon, delta, sum0, level_used);
  // The uncompacted ingest delta is small; its exact contribution keeps
  // the combined estimate unbiased.
  if (!delta_.empty()) result.Merge(DeltaSummary(range));
  return result;
}

Result<AggregateSummary> Silo::HistogramEstimate(
    const QueryRange& range) const {
  if (!has_histogram_) {
    return Status::Unavailable("silo built without an OPTA histogram");
  }
  AggregateSummary result = histogram_.Estimate(range);
  if (!delta_.empty()) result.Merge(DeltaSummary(range));
  return result;
}

void Silo::Ingest(const ObjectSet& batch) {
  std::lock_guard<std::mutex> lock(execution_mu_);
  IngestLocked(batch);
}

void Silo::IngestLocked(const ObjectSet& batch) {
  for (const SpatialObject& o : batch) {
    grid_.Add(o);
    delta_.push_back(o);
  }
  num_objects_ += batch.size();
  if (!batch.empty()) ++data_version_;
  if (compact_fraction_ > 0.0 &&
      static_cast<double>(delta_.size()) >
          compact_fraction_ * static_cast<double>(lsr_.size())) {
    CompactLocked();
  }
}

void Silo::Compact() {
  std::lock_guard<std::mutex> lock(execution_mu_);
  CompactLocked();
}

void Silo::CompactLocked() {
  if (delta_.empty()) {
    grid_.CommitUpdates();
    return;
  }
  ObjectSet merged = lsr_.num_levels() > 0 ? lsr_.tree(0).objects()
                                           : ObjectSet();
  merged.insert(merged.end(), delta_.begin(), delta_.end());
  delta_.clear();
  ++compactions_;

  LsrForest::Options lsr_options;
  lsr_options.rtree = rtree_options_;
  lsr_options.seed = lsr_seed_ ^ (static_cast<uint64_t>(id_) << 32) ^
                     (compactions_ * 0x9E3779B97F4A7C15ULL);
  lsr_options.max_levels = build_lsr_ ? -1 : 1;
  lsr_ = LsrForest::Build(merged, lsr_options);

  if (has_histogram_) {
    EquiDepthHistogram::Options hist_options;
    hist_options.max_buckets = histogram_buckets_;
    histogram_ = EquiDepthHistogram::Build(std::move(merged), hist_options);
  }
  grid_.CommitUpdates();
}

size_t Silo::pending_ingest() const {
  std::lock_guard<std::mutex> lock(execution_mu_);
  return delta_.size();
}

uint64_t Silo::data_version() const {
  std::lock_guard<std::mutex> lock(execution_mu_);
  return data_version_;
}

namespace {
constexpr uint64_t kSnapshotMagic = 0x464153'4E41'5031ULL;  // "FRASNAP1"
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

Status Silo::SaveSnapshot(const std::string& path) const {
  std::lock_guard<std::mutex> lock(execution_mu_);

  BinaryWriter writer;
  writer.WriteU64(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  writer.WriteI64(id_);
  // Configuration needed to rebuild the silo identically.
  writer.WriteDouble(grid_.spec().domain.min.x);
  writer.WriteDouble(grid_.spec().domain.min.y);
  writer.WriteDouble(grid_.spec().domain.max.x);
  writer.WriteDouble(grid_.spec().domain.max.y);
  writer.WriteDouble(grid_.spec().cell_length);
  writer.WriteI64(rtree_options_.leaf_capacity);
  writer.WriteI64(rtree_options_.fanout);
  writer.WriteU64(lsr_seed_);
  writer.WriteU64(histogram_buckets_);
  writer.WriteU8(build_lsr_ ? 1 : 0);
  writer.WriteU8(has_histogram_ ? 1 : 0);
  writer.WriteU8(serialize_execution_ ? 1 : 0);
  writer.WriteDouble(compact_fraction_);
  writer.WriteDouble(dp_->options().epsilon);
  writer.WriteDouble(dp_->options().measure_bound);

  // Full object set: the compacted base plus the live ingest delta.
  const ObjectSet& base =
      lsr_.num_levels() > 0 ? lsr_.tree(0).objects() : delta_;
  const uint64_t total =
      lsr_.num_levels() > 0 ? base.size() + delta_.size() : delta_.size();
  writer.WriteU64(total);
  auto write_objects = [&writer](const ObjectSet& objects) {
    for (const SpatialObject& o : objects) {
      writer.WriteDouble(o.location.x);
      writer.WriteDouble(o.location.y);
      writer.WriteDouble(o.measure);
    }
  };
  if (lsr_.num_levels() > 0) write_objects(base);
  write_objects(delta_);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(writer.buffer().data()),
            static_cast<std::streamsize>(writer.size()));
  out.flush();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<std::unique_ptr<Silo>> Silo::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  BinaryReader reader(bytes);

  uint64_t magic = 0;
  uint32_t version = 0;
  FRA_RETURN_NOT_OK(reader.ReadU64(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument(path + " is not an FRA silo snapshot");
  }
  FRA_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  int64_t id = 0;
  FRA_RETURN_NOT_OK(reader.ReadI64(&id));

  Options options;
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.grid_spec.domain.min.x));
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.grid_spec.domain.min.y));
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.grid_spec.domain.max.x));
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.grid_spec.domain.max.y));
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.grid_spec.cell_length));
  int64_t leaf_capacity = 0;
  int64_t fanout = 0;
  FRA_RETURN_NOT_OK(reader.ReadI64(&leaf_capacity));
  FRA_RETURN_NOT_OK(reader.ReadI64(&fanout));
  if (leaf_capacity <= 0 || fanout <= 1 || leaf_capacity > (1 << 20) ||
      fanout > (1 << 20)) {
    return Status::InvalidArgument("corrupt R-tree options in snapshot");
  }
  options.rtree.leaf_capacity = static_cast<int>(leaf_capacity);
  options.rtree.fanout = static_cast<int>(fanout);
  FRA_RETURN_NOT_OK(reader.ReadU64(&options.lsr_seed));
  uint64_t histogram_buckets = 0;
  FRA_RETURN_NOT_OK(reader.ReadU64(&histogram_buckets));
  if (histogram_buckets == 0 || histogram_buckets > (1u << 24)) {
    return Status::InvalidArgument("corrupt histogram options in snapshot");
  }
  options.histogram_buckets = histogram_buckets;
  uint8_t build_lsr = 0;
  uint8_t has_histogram = 0;
  uint8_t serialize_execution = 0;
  FRA_RETURN_NOT_OK(reader.ReadU8(&build_lsr));
  FRA_RETURN_NOT_OK(reader.ReadU8(&has_histogram));
  FRA_RETURN_NOT_OK(reader.ReadU8(&serialize_execution));
  options.build_lsr = build_lsr != 0;
  options.build_histogram = has_histogram != 0;
  options.serialize_execution = serialize_execution != 0;
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.compact_fraction));
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.dp.epsilon));
  FRA_RETURN_NOT_OK(reader.ReadDouble(&options.dp.measure_bound));

  uint64_t total = 0;
  FRA_RETURN_NOT_OK(reader.ReadU64(&total));
  if (total > reader.Remaining() / (3 * sizeof(double))) {
    return Status::OutOfRange("snapshot truncated: object payload short");
  }
  ObjectSet objects;
  objects.reserve(total);
  for (uint64_t i = 0; i < total; ++i) {
    SpatialObject o;
    FRA_RETURN_NOT_OK(reader.ReadDouble(&o.location.x));
    FRA_RETURN_NOT_OK(reader.ReadDouble(&o.location.y));
    FRA_RETURN_NOT_OK(reader.ReadDouble(&o.measure));
    objects.push_back(o);
  }
  // The Create path resets lsr_seed mixing; note the silo id is restored
  // so the seed derivation matches the original construction.
  return Create(static_cast<int>(id), std::move(objects), options);
}

namespace {

std::vector<CellContribution> CellContributionsImpl(
    const GridIndex& grid, const LsrForest& lsr, const ObjectSet& ingest_delta,
    const QueryRange& range, bool use_lsr, double epsilon, double delta,
    double sum0, bool include_contained) {
  // Both ends compute cell classification from the shared GridSpec, so the
  // provider knows which cell ids to expect without shipping them.
  int level = 0;
  if (use_lsr && lsr.num_levels() > 0) {
    level = LsrForest::SelectLevel(epsilon, delta, sum0, lsr.max_level());
  }
  std::vector<CellContribution> contributions;
  grid.ForEachIntersectingCell(
      range, [&](size_t cell_id, CellRelation relation) {
        CellContribution contribution;
        contribution.cell_id = static_cast<uint32_t>(cell_id);
        if (relation == CellRelation::kContained) {
          if (!include_contained) return;
          // A fully covered cell's contribution is its grid aggregate —
          // exact, no tree descent needed.
          contribution.summary = grid.cell(cell_id);
        } else {
          const Rect cell_rect =
              grid.CellRect(grid.RowOf(cell_id), grid.ColOf(cell_id));
          contribution.summary =
              use_lsr ? lsr.AggregateAtLevelClipped(cell_rect, range, level)
                      : lsr.tree(0).RangeAggregateClipped(cell_rect, range);
          if (!ingest_delta.empty()) {
            contribution.summary.Merge(
                SummarizeIf(ingest_delta, [&](const Point& p) {
                  return cell_rect.Contains(p) && range.Contains(p);
                }));
          }
        }
        contributions.push_back(contribution);
      });
  return contributions;
}

}  // namespace

std::vector<CellContribution> Silo::BoundaryCellContributions(
    const QueryRange& range, bool use_lsr, double epsilon, double delta,
    double sum0) const {
  return CellContributionsImpl(grid_, lsr_, delta_, range, use_lsr, epsilon,
                               delta, sum0, /*include_contained=*/false);
}

std::vector<CellContribution> Silo::AllCellContributions(
    const QueryRange& range, bool use_lsr, double epsilon, double delta,
    double sum0) const {
  return CellContributionsImpl(grid_, lsr_, delta_, range, use_lsr, epsilon,
                               delta, sum0, /*include_contained=*/true);
}

Silo::IndexMemory Silo::MemoryUsage() const {
  IndexMemory memory;
  if (lsr_.num_levels() > 0) {
    memory.rtree_bytes = lsr_.tree(0).MemoryUsage();
    memory.lsr_extra_bytes = lsr_.MemoryUsage() - memory.rtree_bytes;
  }
  memory.grid_bytes = grid_.MemoryUsage();
  if (has_histogram_) memory.histogram_bytes = histogram_.MemoryUsage();
  return memory;
}

Result<std::vector<uint8_t>> Silo::HandleMessage(
    const std::vector<uint8_t>& request) {
  return HandleMessageView(ConstByteSpan(request));
}

Result<std::vector<uint8_t>> Silo::HandleMessageView(ConstByteSpan request) {
  FRA_TRACE_SPAN("silo.handle_message");
  FRA_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(request));
  if (type == MessageType::kAggregateBatchRequest) {
    return HandleBatchRequest(request);
  }

  // Model a single-core silo: local work for concurrent queries queues up.
  std::unique_lock<std::mutex> execution_lock;
  if (serialize_execution_) {
    execution_lock = std::unique_lock<std::mutex>(execution_mu_);
  }
  return HandleSingleLocked(type, request);
}

ThreadPool* Silo::batch_pool() {
  std::lock_guard<std::mutex> lock(batch_pool_mu_);
  if (!batch_pool_) {
    size_t workers = batch_workers_;
    if (workers == 0) {
      const size_t hw = std::thread::hardware_concurrency();
      workers = std::min<size_t>(4, hw == 0 ? 1 : hw);
    }
    batch_pool_ = std::make_unique<ThreadPool>(workers);
  }
  return batch_pool_.get();
}

Result<std::vector<uint8_t>> Silo::HandleBatchRequest(ConstByteSpan request) {
  FRA_TRACE_SPAN("silo.handle_batch");
  // The entry table is parsed as borrowed views into the batch frame —
  // no per-entry copy; the frame bytes stay alive (owned by the
  // transport) for the whole dispatch.
  auto entries = DecodeBatchRequestViews(request);
  if (!entries.ok()) return EncodeErrorResponse(entries.status());

  // One answer slot per entry; positions are the batch contract. A failed
  // entry becomes an embedded error response, never a failed batch.
  //
  // A batch mixes sub-queries staged by different provider queries, so
  // trace context travels per entry: each may open with its own trace
  // envelope, unwrapped here so the entry's spans land under the right
  // trace id. Batch workers run off the transport handler thread, so
  // their spans are gathered explicitly and merged back afterwards for
  // the outer response's single span section.
  std::vector<std::vector<uint8_t>> responses(entries->size());
  std::mutex spans_mu;
  std::vector<SpanRecord> gathered;
  auto answer = [this, &spans_mu, &gathered](ConstByteSpan entry) {
    const uint64_t entry_trace = StripTraceEnvelopeView(&entry);
    ScopedTraceId trace_scope(entry_trace);
    SpanCollector collector;
    auto respond = [&]() -> std::vector<uint8_t> {
      auto type = PeekMessageType(entry);
      if (!type.ok()) return EncodeErrorResponse(type.status());
      if (*type == MessageType::kAggregateBatchRequest) {
        return EncodeErrorResponse(
            Status::InvalidArgument("nested batch requests are not supported"));
      }
      auto response = HandleSingleLocked(*type, entry);
      if (!response.ok()) return EncodeErrorResponse(response.status());
      return *std::move(response);
    };
    std::vector<uint8_t> encoded = respond();
    std::vector<SpanRecord> records = collector.Take();
    if (!records.empty()) {
      std::lock_guard<std::mutex> lock(spans_mu);
      gathered.insert(gathered.end(),
                      std::make_move_iterator(records.begin()),
                      std::make_move_iterator(records.end()));
    }
    return encoded;
  };

  if (serialize_execution_) {
    // Single-core silo: the batch still executes serially — coalescing
    // saves wire round trips and framing, not silo CPU.
    std::lock_guard<std::mutex> lock(execution_mu_);
    for (size_t i = 0; i < entries->size(); ++i) {
      responses[i] = answer((*entries)[i]);
    }
  } else {
    ParallelFor(batch_pool(), entries->size(),
                [&](size_t i) { responses[i] = answer((*entries)[i]); });
  }
  if (!gathered.empty()) {
    if (SpanCollector* ambient = SpanCollector::Current()) {
      // Transport-installed collector: the spans ride the batch
      // response's trailing section back to the provider.
      ambient->AddAll(std::move(gathered));
    } else {
      // In-process transport with no collector on this thread (e.g. a
      // deadline flush from an event loop): feed the process tracer
      // directly — same stitched trace, no wire bytes.
      Tracer::Get().Ingest(std::move(gathered), "silo=" + std::to_string(id_));
    }
  }
  return EncodeBatchResponse(responses);
}

Histogram* Silo::HandleCpuHistogram() {
  Histogram* hist = handle_cpu_hist_.load(std::memory_order_acquire);
  if (hist == nullptr) {
    // Racing resolvers get the same registry-owned instrument.
    hist = &MetricsRegistry::Default().GetHistogram(
        "fra_query_cost_silo_cpu_microseconds",
        {{"silo", std::to_string(id_)}});
    handle_cpu_hist_.store(hist, std::memory_order_release);
  }
  return hist;
}

Result<std::vector<uint8_t>> Silo::HandleSingleLocked(MessageType type,
                                                      ConstByteSpan request) {
  ScopedSiloCpu cpu_scope(HandleCpuHistogram());
  BinaryReader reader(request);

  // Everything leaving the silo passes the DP boundary: scalar answers,
  // per-cell vectors, grid payloads and grid deltas are perturbed when
  // the mechanism is enabled (no-op otherwise).
  auto perturb_cells = [this](std::vector<CellContribution> cells) {
    if (dp_->enabled()) {
      for (CellContribution& cell : cells) {
        cell.summary = dp_->Perturb(cell.summary);
      }
    }
    return cells;
  };

  switch (type) {
    case MessageType::kBuildGridRequest: {
      FRA_TRACE_SPAN("silo.build_grid");
      // Serialize the grid straight into the framed response and
      // backpatch the length prefix, instead of encoding into a scratch
      // buffer and copying it through EncodeGridPayloadResponse — the
      // grid payload is the largest message the silo ever ships.
      BinaryWriter writer = BinaryWriter::Pooled(1 + sizeof(uint32_t));
      writer.WriteU8(static_cast<uint8_t>(MessageType::kGridPayloadResponse));
      writer.WriteU32(0);  // grid_bytes placeholder, patched below
      const size_t grid_start = writer.size();
      if (dp_->enabled()) {
        GridIndex noisy = grid_;
        for (size_t cell = 0; cell < noisy.num_cells(); ++cell) {
          noisy.SetCell(cell, dp_->Perturb(noisy.cell(cell)));
        }
        noisy.CommitUpdates();
        noisy.Serialize(&writer);
      } else {
        grid_.Serialize(&writer);
      }
      writer.PatchU32(1, static_cast<uint32_t>(writer.size() - grid_start));
      return writer.Release();
    }
    case MessageType::kAggregateRequest: {
      auto decoded = AggregateRequest::Decode(&reader);
      if (!decoded.ok()) return EncodeErrorResponse(decoded.status());
      const AggregateRequest& req = *decoded;
      switch (req.mode) {
        case LocalQueryMode::kExact: {
          FRA_TRACE_SPAN("silo.local.exact");
          return EncodeSummaryResponse(
              dp_->Perturb(ExactRangeAggregate(req.range)));
        }
        case LocalQueryMode::kLsr: {
          FRA_TRACE_SPAN("silo.local.lsr");
          return EncodeSummaryResponse(dp_->Perturb(LsrRangeAggregate(
              req.range, req.epsilon, req.delta, req.sum0)));
        }
        case LocalQueryMode::kHistogram: {
          FRA_TRACE_SPAN("silo.local.histogram");
          auto estimate = HistogramEstimate(req.range);
          if (!estimate.ok()) return EncodeErrorResponse(estimate.status());
          return EncodeSummaryResponse(dp_->Perturb(*estimate));
        }
      }
      return EncodeErrorResponse(
          Status::InvalidArgument("unknown local query mode"));
    }
    case MessageType::kGridDeltaRequest: {
      FRA_TRACE_SPAN("silo.grid_delta");
      std::vector<CellContribution> changed;
      for (size_t cell_id : grid_.ChangedCells()) {
        CellContribution contribution;
        contribution.cell_id = static_cast<uint32_t>(cell_id);
        contribution.summary = grid_.cell(cell_id);
        changed.push_back(contribution);
      }
      grid_.ClearChangedCells();
      return EncodeGridDeltaResponse(perturb_cells(std::move(changed)),
                                     data_version_);
    }
    case MessageType::kCellVectorRequest: {
      FRA_TRACE_SPAN("silo.cell_vector");
      auto decoded = CellVectorRequest::Decode(&reader);
      if (!decoded.ok()) return EncodeErrorResponse(decoded.status());
      const CellVectorRequest& req = *decoded;
      const bool use_lsr = req.mode == LocalQueryMode::kLsr;
      return EncodeCellVectorResponse(perturb_cells(
          req.full_vector
              ? AllCellContributions(req.range, use_lsr, req.epsilon,
                                     req.delta, req.sum0)
              : BoundaryCellContributions(req.range, use_lsr, req.epsilon,
                                          req.delta, req.sum0)));
    }
    default:
      return EncodeErrorResponse(
          Status::InvalidArgument("silo cannot handle message type " +
                                  std::to_string(static_cast<int>(type))));
  }
}

}  // namespace fra
