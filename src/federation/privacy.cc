#include "federation/privacy.h"

#include <algorithm>
#include <cmath>

namespace fra {

AggregateSummary LaplaceMechanism::Perturb(const AggregateSummary& summary) {
  if (!enabled()) return summary;
  const double eps = options_.epsilon;
  const double bound = std::max(1e-9, options_.measure_bound);

  double count_noise = 0.0;
  double sum_noise = 0.0;
  double sum_sqr_noise = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count_noise = rng_.NextLaplace(1.0 / eps);
    sum_noise = rng_.NextLaplace(bound / eps);
    sum_sqr_noise = rng_.NextLaplace(bound * bound / eps);
  }

  AggregateSummary noisy;  // extrema stay at their empty sentinels
  const double noisy_count =
      std::max(0.0, static_cast<double>(summary.count) + count_noise);
  noisy.count = static_cast<uint64_t>(std::llround(noisy_count));
  noisy.sum = summary.sum + sum_noise;
  noisy.sum_sqr = std::max(0.0, summary.sum_sqr + sum_sqr_noise);
  return noisy;
}

}  // namespace fra
