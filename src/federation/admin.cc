#include "federation/admin.h"

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/build_info.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace fra {
namespace {

HttpResponse Healthz(ServiceProvider* provider) {
  SiloHealthTracker* health = provider->health();
  if (health == nullptr) return HttpResponse::Text("ok\n");
  std::string unhealthy;
  for (const auto& silo : health->Snapshot()) {
    if (silo.state == SiloHealthTracker::State::kDown ||
        silo.state == SiloHealthTracker::State::kProbing) {
      if (!unhealthy.empty()) unhealthy += ", ";
      unhealthy += "silo " + std::to_string(silo.silo_id) + " " +
                   SiloHealthTracker::StateToString(silo.state);
    }
  }
  if (unhealthy.empty()) return HttpResponse::Text("ok\n");
  return HttpResponse::Text("unhealthy: " + unhealthy + "\n", 503);
}

HttpResponse Statusz(ServiceProvider* provider) {
  const ServiceProvider::Options& options = provider->options();
  std::ostringstream out;
  out << std::boolalpha;
  out << "{\n";
  out << "  \"federation\": {\n";
  out << "    \"silos\": " << provider->num_silos() << ",\n";
  out << "    \"epsilon\": " << provider->epsilon() << ",\n";
  out << "    \"delta\": " << provider->delta() << ",\n";
  out << "    \"silos_per_query\": " << options.silos_per_query << ",\n";
  out << "    \"heterogeneity\": " << provider->MeasureHeterogeneity()
      << ",\n";
  out << "    \"recommended_algorithm\": \""
      << FraAlgorithmToString(provider->RecommendAlgorithm(true)) << "\",\n";
  out << "    \"grid_memory_bytes\": " << provider->GridMemoryUsage() << "\n";
  out << "  },\n";
  out << "  \"build\": {\n";
  out << "    \"git_sha\": \"" << BuildGitSha() << "\",\n";
  out << "    \"build_type\": \"" << BuildTypeName() << "\",\n";
  out << "    \"tracing_compiled\": " << BuildTracingCompiled() << ",\n";
  out << "    \"tracing_enabled\": " << Tracer::Get().enabled() << "\n";
  out << "  },\n";

  out << "  \"silos\": [";
  if (SiloHealthTracker* health = provider->health()) {
    bool first = true;
    for (const auto& silo : health->Snapshot()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\"silo\": " << silo.silo_id << ", \"state\": \""
          << SiloHealthTracker::StateToString(silo.state)
          << "\", \"latency_ewma_micros\": " << silo.latency_ewma_micros
          << ", \"successes\": " << silo.successes
          << ", \"failures\": " << silo.failures
          << ", \"window_failure_ratio\": " << silo.window_failure_ratio
          << "}";
    }
    if (!first) out << "\n  ";
  }
  out << "],\n";

  // The TCP transport mirrors its pool occupancy into these gauges; an
  // in-process federation simply has none registered.
  out << "  \"tcp_pools\": [";
  {
    MetricsRegistry& registry = MetricsRegistry::Default();
    const auto open_gauges =
        registry.GaugesNamed("fra_tcp_pool_open_connections");
    const auto busy_gauges =
        registry.GaugesNamed("fra_tcp_pool_busy_connections");
    bool first = true;
    for (size_t i = 0; i < open_gauges.size(); ++i) {
      std::string silo = "-1";
      for (const auto& [key, value] : open_gauges[i].first) {
        if (key == "silo") silo = value;
      }
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\"silo\": " << silo
          << ", \"open\": " << open_gauges[i].second->Value()
          << ", \"busy\": "
          << (i < busy_gauges.size() ? busy_gauges[i].second->Value() : 0.0)
          << "}";
    }
    if (!first) out << "\n  ";
  }
  out << "],\n";

  // One entry per event loop of the reactor transport (empty for an
  // in-process federation): the fra_reactor_* health signals, summarised
  // as mean/p99 so a glance at /statusz shows a stalled loop without a
  // Prometheus scrape.
  out << "  \"reactor_loops\": [";
  {
    MetricsRegistry& registry = MetricsRegistry::Default();
    const auto label_value = [](const MetricLabels& labels,
                                const std::string& key) -> std::string {
      for (const auto& [k, v] : labels) {
        if (k == key) return v;
      }
      return "";
    };
    const auto find_hist = [&](const char* name, const std::string& loop)
        -> const Histogram* {
      for (const auto& [labels, hist] : registry.HistogramsNamed(name)) {
        if (label_value(labels, "loop") == loop) return hist;
      }
      return nullptr;
    };
    const auto emit_hist = [&](const char* key, const Histogram* hist) {
      out << "\"" << key << "\": ";
      if (hist == nullptr) {
        out << "null";
        return;
      }
      out << "{\"count\": " << hist->Count() << ", \"mean_micros\": "
          << hist->Mean() << ", \"p99_micros\": " << hist->Quantile(0.99)
          << "}";
    };
    bool first = true;
    for (const auto& [labels, lag] :
         registry.HistogramsNamed("fra_reactor_loop_lag_microseconds")) {
      const std::string loop = label_value(labels, "loop");
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\"loop\": " << (loop.empty() ? "-1" : loop) << ", ";
      emit_hist("lag", lag);
      out << ", ";
      emit_hist("epoll_wait",
                find_hist("fra_reactor_epoll_wait_microseconds", loop));
      out << ", ";
      emit_hist("dispatch",
                find_hist("fra_reactor_dispatch_microseconds", loop));
      out << ", ";
      emit_hist("timer_drift",
                find_hist("fra_reactor_timer_drift_microseconds", loop));
      out << ", \"pending_timers\": ";
      const Gauge* pending = nullptr;
      for (const auto& [glabels, gauge] :
           registry.GaugesNamed("fra_reactor_pending_timers")) {
        if (label_value(glabels, "loop") == loop) pending = gauge;
      }
      out << (pending != nullptr ? pending->Value() : 0.0) << "}";
    }
    if (!first) out << "\n  ";
  }
  out << "],\n";

  out << "  \"flight_recorder\": ";
  if (FlightRecorder* recorder = provider->flight_recorder()) {
    out << "{\"records\": " << recorder->size()
        << ", \"capacity\": " << recorder->capacity()
        << ", \"slow_threshold_micros\": "
        << recorder->slow_threshold_micros() << "},\n";
  } else {
    out << "null,\n";
  }

  // Where each query class's resources go: the cost ledger's rollups,
  // one row per {algorithm, aggregate, cache-outcome}.
  out << "  \"cost_ledger\": ";
  if (QueryCostLedger* ledger = provider->cost_ledger()) {
    out << ledger->RenderJson() << ",\n";
  } else {
    out << "null,\n";
  }

  out << "  \"audit\": ";
  if (AccuracyAuditor* auditor = provider->auditor()) {
    const AccuracyAuditor::Snapshot audit = auditor->snapshot();
    out << "{\"sample_rate\": " << auditor->options().sample_rate
        << ", \"considered\": " << audit.considered
        << ", \"audited\": " << audit.audited
        << ", \"failures\": " << audit.failures
        << ", \"violations\": " << audit.violations
        << ", \"max_relative_error\": " << audit.max_relative_error
        << ", \"mean_relative_error\": " << audit.mean_relative_error
        << "},\n";
  } else {
    out << "null,\n";
  }

  out << "  \"cache\": ";
  if (ProviderCache* cache = provider->cache()) {
    const AnswerCache::Counters exact = cache->exact().counters();
    const TileCache::Counters tiles = cache->tiles().counters();
    out << "{\"epoch\": " << cache->epoch()
        << ", \"exact\": {\"entries\": " << cache->exact().size()
        << ", \"hits\": " << exact.hits << ", \"misses\": " << exact.misses
        << ", \"evictions\": " << exact.evictions << "}"
        << ", \"tiles\": {\"cached\": " << cache->tiles().cached_tiles()
        << ", \"valid\": " << cache->tiles().valid_tiles()
        << ", \"hits\": " << tiles.hits << ", \"misses\": " << tiles.misses
        << ", \"evictions\": " << tiles.evictions
        << ", \"invalidations\": " << tiles.invalidations << "}"
        << "},\n";
  } else {
    out << "null,\n";
  }

  const BufferPool::Stats pool = BufferPool::Default().stats();
  out << "  \"buffer_pool\": {\"enabled\": " << BufferPool::enabled()
      << ", \"hits\": " << pool.hits << ", \"misses\": " << pool.misses
      << ", \"pooled\": " << pool.pooled
      << ", \"discarded\": " << pool.discarded
      << ", \"free_bytes\": " << pool.free_bytes
      << ", \"free_buffers\": " << pool.free_buffers << "},\n";

  const CommStats::Snapshot comm = provider->comm();
  out << "  \"comm\": {\"messages\": " << comm.messages
      << ", \"bytes_to_silos\": " << comm.bytes_to_silos
      << ", \"bytes_to_provider\": " << comm.bytes_to_provider << "}\n";
  out << "}\n";
  return HttpResponse::Json(out.str());
}

}  // namespace

void InstallFederationAdminHandlers(AdminServer* server,
                                    ServiceProvider* provider) {
  server->AddHandler("/healthz",
                     [provider] { return Healthz(provider); });
  server->AddHandler("/statusz",
                     [provider] { return Statusz(provider); });
  if (FlightRecorder* recorder = provider->flight_recorder()) {
    server->AddHandler("/debug/flightz", [recorder] {
      return HttpResponse::Text(recorder->RenderText());
    });
    server->AddHandler("/debug/flightz.json", [recorder] {
      return HttpResponse::Json(recorder->RenderJson());
    });
  }
}

}  // namespace fra
