#ifndef FRA_FEDERATION_QUERY_H_
#define FRA_FEDERATION_QUERY_H_

#include <string>

#include "agg/aggregate.h"
#include "geo/range.h"

namespace fra {

/// A Federated Range Aggregation query Q(S, R, F) (paper Def. 2): the
/// federation is implicit (whichever ServiceProvider executes it), `range`
/// is R and `kind` is the aggregation function F.
struct FraQuery {
  QueryRange range;
  AggregateKind kind = AggregateKind::kCount;
};

/// The six algorithms compared in the paper's evaluation (Sec. 8.1).
enum class FraAlgorithm {
  kExact = 0,       // EXACT: fan out to every silo, sum exact answers
  kOpta = 1,        // OPTA: fan out, each silo answers from its histogram
  kIidEst = 2,      // Alg. 2: single-silo sampling, IID estimation
  kIidEstLsr = 3,   // Alg. 2 + Alg. 6 (LSR-Forest local query)
  kNonIidEst = 4,   // Alg. 3: per-grid-cell estimation
  kNonIidEstLsr = 5 // Alg. 3 + Alg. 6
};

/// Stable display name, e.g. "NonIID-est+LSR".
const char* FraAlgorithmToString(FraAlgorithm algorithm);

/// True for algorithms that contact a single sampled silo per query (the
/// paper's single-silo sampling family).
bool IsSingleSilo(FraAlgorithm algorithm);

/// True for algorithms that answer local queries with the LSR-Forest.
bool UsesLsr(FraAlgorithm algorithm);

}  // namespace fra

#endif  // FRA_FEDERATION_QUERY_H_
