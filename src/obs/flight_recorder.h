#ifndef FRA_OBS_FLIGHT_RECORDER_H_
#define FRA_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/cost_ledger.h"
#include "util/status.h"
#include "util/trace.h"

namespace fra {

/// Outcome of one provider->silo exchange inside a recorded query.
struct FlightSiloStatus {
  int silo_id = -1;
  bool ok = false;
  std::string detail;  // "ok", or the failure Status text
  double micros = 0.0;
};

/// Per-query scratch collecting the silo exchanges of ONE query while it
/// executes, installed as a thread-local stack the same way SpanCollector
/// is (util/trace.h): the provider's Execute constructs one, and every
/// CallSilo on a thread where a log is current notes its outcome into it.
/// Fan-out legs running on pool threads re-install the caller's log with
/// QueryFlightLogScope. NoteSilo is thread safe (legs are concurrent);
/// install/uninstall follow RAII nesting on each thread.
class QueryFlightLog {
 public:
  QueryFlightLog();
  ~QueryFlightLog();

  QueryFlightLog(const QueryFlightLog&) = delete;
  QueryFlightLog& operator=(const QueryFlightLog&) = delete;

  /// The innermost log installed on this thread, or nullptr.
  static QueryFlightLog* Current();

  void NoteSilo(int silo_id, const Status& status, double micros);

  std::vector<FlightSiloStatus> TakeSilos();

 private:
  QueryFlightLog* previous_;
  std::mutex mu_;
  std::vector<FlightSiloStatus> silos_;
};

/// Re-installs an existing log as this thread's current one (fan-out legs
/// run on pool threads where the query's log is not installed). A null
/// log is fine — the scope then just masks any outer log.
class QueryFlightLogScope {
 public:
  explicit QueryFlightLogScope(QueryFlightLog* log);
  ~QueryFlightLogScope();

  QueryFlightLogScope(const QueryFlightLogScope&) = delete;
  QueryFlightLogScope& operator=(const QueryFlightLogScope&) = delete;

 private:
  QueryFlightLog* previous_;
};

/// Flight recorder: a bounded ring of the last N queries that were slow
/// (wall clock above the threshold) or failed, each carrying enough to
/// replay the investigation offline — the query range and algorithm, the
/// cache disposition, every silo exchange's outcome, and the full
/// stitched span tree (provider + silo spans) captured from the Tracer
/// at completion time. Served at /debug/flightz (text) and
/// /debug/flightz.json.
///
/// The hot path for a fast, successful query is one atomic load and a
/// comparison (ShouldCapture); only captured queries take the ring lock.
class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 64;
    /// Queries at or above this wall-clock duration are captured; failed
    /// queries are captured regardless. 0 captures everything.
    double slow_threshold_micros = 50'000.0;
  };

  struct Record {
    uint64_t sequence = 0;  // assigned by Add, monotonically increasing
    uint64_t trace_id = 0;
    std::string query;      // rendered range + aggregate kind
    std::string algorithm;
    std::string cache;      // "hit", "tile", "miss" or "off"
    bool failed = false;
    std::string status;     // "ok" or the failure Status text
    double duration_micros = 0.0;
    /// Cost breakdown measured by the query's QueryCostTracker: CPU
    /// microseconds, wire bytes each way, silo RPCs, coalescer
    /// queue-wait. Zero-valued when the provider's ledger is disabled.
    QueryCost cost;
    std::vector<FlightSiloStatus> silos;
    std::vector<SpanRecord> spans;  // sorted by start at render time
  };

  explicit FlightRecorder(const Options& options);

  /// The lock-free capture test run on every query.
  bool ShouldCapture(bool failed, double micros) const {
    return failed ||
           micros >= threshold_micros_.load(std::memory_order_relaxed);
  }

  /// Stamps the record's sequence number and appends it, evicting the
  /// oldest record over capacity.
  void Add(Record record);

  /// Adjustable at runtime (tests pin it to 0 to capture everything).
  void set_slow_threshold_micros(double micros) {
    threshold_micros_.store(micros, std::memory_order_relaxed);
  }
  double slow_threshold_micros() const {
    return threshold_micros_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const;

  /// Oldest first.
  std::vector<Record> Snapshot() const;

  void Clear();

  /// /debug/flightz: human-readable replay — one block per record with
  /// the silo outcomes and the span tree indented by containment.
  std::string RenderText() const;
  /// /debug/flightz.json: the same data as a JSON object.
  std::string RenderJson() const;

 private:
  const size_t capacity_;
  std::atomic<double> threshold_micros_;
  mutable std::mutex mu_;
  uint64_t next_sequence_ = 1;
  std::deque<Record> records_;
};

}  // namespace fra

#endif  // FRA_OBS_FLIGHT_RECORDER_H_
