#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "util/buffer.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace fra {
namespace {

constexpr int kMaxFrames = 64;
// Leading frames of every raw sample are the capture machinery itself
// (backtrace, the signal handler, the kernel's signal trampoline).
constexpr int kSkipFrames = 3;

/// Everything the signal handler touches. Allocated once on first Start
/// and leaked: a signal already in flight when Stop() returns must still
/// find valid memory.
struct SignalState {
  struct RawSample {
    int depth = 0;
    void* pcs[kMaxFrames];
  };

  std::atomic<bool> armed{false};
  std::atomic<int> in_handler{0};
  std::atomic<uint64_t> cursor{0};    // samples claimed since Clear
  std::atomic<uint64_t> overruns{0};  // ring-wrapped (lost) samples
  size_t ring_slots = 0;
  RawSample* slots = nullptr;
};

std::atomic<SignalState*> g_signal_state{nullptr};

void OnProfSignal(int /*signo*/) {
  const int saved_errno = errno;  // backtrace may clobber it
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  if (state != nullptr) {
    state->in_handler.fetch_add(1, std::memory_order_acq_rel);
    if (state->armed.load(std::memory_order_acquire)) {
      const uint64_t index =
          state->cursor.fetch_add(1, std::memory_order_relaxed);
      SignalState::RawSample& slot = state->slots[index % state->ring_slots];
      slot.depth = backtrace(slot.pcs, kMaxFrames);
    }
    state->in_handler.fetch_sub(1, std::memory_order_release);
  }
  errno = saved_errno;
}

/// Disarm, wait for in-flight handlers, run `fn`, re-arm if requested.
/// Gives the caller a quiescent ring to read without per-slot atomics.
template <typename Fn>
void WithHandlersPaused(SignalState* state, bool rearm, Fn fn) {
  state->armed.store(false, std::memory_order_release);
  while (state->in_handler.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  fn();
  if (rearm) state->armed.store(true, std::memory_order_release);
}

int SignalFor(ContinuousProfiler::Mode mode) {
  return mode == ContinuousProfiler::Mode::kCpu ? SIGPROF : SIGALRM;
}

int TimerFor(ContinuousProfiler::Mode mode) {
  return mode == ContinuousProfiler::Mode::kCpu ? ITIMER_PROF : ITIMER_REAL;
}

struct sigaction g_previous_action;

/// Symbol cache: pc -> demangled name (render-time only).
std::string SymbolFor(void* pc,
                      std::unordered_map<void*, std::string>* cache) {
  const auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = status == 0 && demangled != nullptr ? demangled : info.dli_sname;
    std::free(demangled);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(pc));
    name = buf;
  }
  // Collapsed-format separators must not appear inside a frame name.
  std::replace(name.begin(), name.end(), ';', ':');
  (*cache)[pc] = name;
  return name;
}

struct ProfilerInstruments {
  Counter* samples;
  Counter* overruns;
  Gauge* running_hz;
};

ProfilerInstruments& Instruments() {
  static ProfilerInstruments* instruments = [] {
    auto& registry = MetricsRegistry::Default();
    return new ProfilerInstruments{
        &registry.GetCounter("fra_profile_samples_total"),
        &registry.GetCounter("fra_profile_overruns_total"),
        &registry.GetGauge("fra_profile_running_hz"),
    };
  }();
  return *instruments;
}

/// Allocation profile: BufferPool miss stacks folded by size class.
/// Separate from the CPU aggregate — the hook fires on the acquiring
/// thread in normal (non-signal) context.
struct AllocProfile {
  std::mutex mu;
  // size class -> (stack -> count)
  std::map<size_t, std::map<std::vector<void*>, uint64_t>> by_class;
  std::map<size_t, uint64_t> class_counts;
};

AllocProfile& GetAllocProfile() {
  static AllocProfile* profile = new AllocProfile();
  return *profile;
}

std::atomic<bool> g_alloc_profiling{false};
std::atomic<uint64_t> g_alloc_sample_every{64};
std::atomic<uint64_t> g_alloc_miss_ticket{0};

void OnBufferPoolMiss(size_t reserved_bytes) {
  if (!g_alloc_profiling.load(std::memory_order_acquire)) return;
  // Misses can be per-query-frequent (cold pool, unpoolable sizes) and a
  // backtrace per miss is a measurable qps tax, so capture one in every
  // `alloc_sample_every` — ticket 0 guarantees the first miss is kept.
  const uint64_t every =
      g_alloc_sample_every.load(std::memory_order_relaxed);
  const uint64_t ticket =
      g_alloc_miss_ticket.fetch_add(1, std::memory_order_relaxed);
  if (every > 1 && ticket % every != 0) return;
  void* pcs[kMaxFrames];
  const int depth = backtrace(pcs, kMaxFrames);
  // Frame 0 is this hook; keep the caller chain.
  std::vector<void*> stack;
  for (int i = 1; i < depth; ++i) stack.push_back(pcs[i]);
  auto& registry = MetricsRegistry::Default();
  registry
      .GetCounter("fra_profile_alloc_samples_total",
                  {{"class", std::to_string(reserved_bytes)}})
      .Increment();
  AllocProfile& profile = GetAllocProfile();
  std::lock_guard<std::mutex> lock(profile.mu);
  // Scale sampled captures back up so reported counts estimate true
  // miss totals.
  profile.by_class[reserved_bytes][stack] += every;
  profile.class_counts[reserved_bytes] += every;
}

void AppendCollapsedLine(const std::vector<void*>& stack, uint64_t count,
                         std::unordered_map<void*, std::string>* symbols,
                         std::string* out) {
  // Raw stacks are leaf-first; collapsed format wants root-first.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it != stack.rbegin()) out->push_back(';');
    out->append(SymbolFor(*it, symbols));
  }
  out->push_back(' ');
  out->append(std::to_string(count));
  out->push_back('\n');
}

}  // namespace

ContinuousProfiler& ContinuousProfiler::Get() {
  static ContinuousProfiler* profiler = new ContinuousProfiler();
  return *profiler;
}

Status ContinuousProfiler::Start(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("profiler already running");
  }
  Options effective = options;
  effective.hz = std::max(1, std::min(1000, effective.hz));
  effective.ring_slots = std::max<size_t>(64, effective.ring_slots);
  effective.alloc_sample_every =
      std::max<uint64_t>(1, effective.alloc_sample_every);

  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  if (state == nullptr || state->ring_slots < effective.ring_slots) {
    // First start (or a larger ring requested): allocate fresh and leak
    // the old state — a late signal may still be touching it.
    auto* fresh = new SignalState();
    fresh->ring_slots = effective.ring_slots;
    fresh->slots = new SignalState::RawSample[effective.ring_slots];
    g_signal_state.store(fresh, std::memory_order_release);
    state = fresh;
  }
  state->cursor.store(0, std::memory_order_relaxed);
  state->overruns.store(0, std::memory_order_relaxed);
  drained_ = 0;

  // backtrace() lazily loads libgcc on first use, which allocates — do
  // that here, in normal context, never in the handler.
  void* warm[4];
  (void)backtrace(warm, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &OnProfSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SignalFor(effective.mode), &action, &g_previous_action) != 0) {
    return Status::IOError(std::string("sigaction: ") + std::strerror(errno));
  }

  state->armed.store(true, std::memory_order_release);

  itimerval interval{};
  const long micros = std::max(1000000L / effective.hz, 1L);
  interval.it_interval.tv_sec = micros / 1000000;
  interval.it_interval.tv_usec = micros % 1000000;
  interval.it_value = interval.it_interval;
  if (setitimer(TimerFor(effective.mode), &interval, nullptr) != 0) {
    state->armed.store(false, std::memory_order_release);
    sigaction(SignalFor(effective.mode), &g_previous_action, nullptr);
    return Status::IOError(std::string("setitimer: ") + std::strerror(errno));
  }

  options_ = effective;
  if (effective.profile_allocations && !alloc_hook_installed_) {
    BufferPool::SetMissSampleHook(&OnBufferPoolMiss);
    alloc_hook_installed_ = true;
  }
  g_alloc_sample_every.store(effective.alloc_sample_every,
                             std::memory_order_relaxed);
  g_alloc_miss_ticket.store(0, std::memory_order_relaxed);
  g_alloc_profiling.store(effective.profile_allocations,
                          std::memory_order_release);
  Instruments().running_hz->Set(static_cast<double>(effective.hz));
  running_.store(true, std::memory_order_release);
  FRA_LOG(INFO) << "profiler started at " << effective.hz << " Hz ("
                << (effective.mode == Mode::kCpu ? "cpu" : "wall") << ")";
  return Status::OK();
}

void ContinuousProfiler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_.load(std::memory_order_acquire)) return;

  itimerval disarm{};
  setitimer(TimerFor(options_.mode), &disarm, nullptr);
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  WithHandlersPaused(state, /*rearm=*/false, [this] { DrainLocked(); });
  sigaction(SignalFor(options_.mode), &g_previous_action, nullptr);

  g_alloc_profiling.store(false, std::memory_order_release);
  Instruments().running_hz->Set(0.0);
  running_.store(false, std::memory_order_release);
  FRA_LOG(INFO) << "profiler stopped (" << folded_samples_
                << " samples folded)";
}

void ContinuousProfiler::DrainLocked() {
  // Callers pause the handlers first, so plain reads are race-free.
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  if (state == nullptr) return;
  const uint64_t cursor = state->cursor.load(std::memory_order_acquire);
  uint64_t begin = drained_;
  if (cursor - begin > state->ring_slots) {
    const uint64_t lost = cursor - begin - state->ring_slots;
    state->overruns.fetch_add(lost, std::memory_order_relaxed);
    Instruments().overruns->Increment(lost);
    begin = cursor - state->ring_slots;
  }
  for (uint64_t index = begin; index < cursor; ++index) {
    const SignalState::RawSample& slot =
        state->slots[index % state->ring_slots];
    if (slot.depth <= 0) continue;
    std::vector<void*> stack;
    for (int frame = std::min(kSkipFrames, slot.depth - 1);
         frame < slot.depth; ++frame) {
      stack.push_back(slot.pcs[frame]);
    }
    ++aggregated_[stack];
    ++folded_samples_;
  }
  Instruments().samples->Increment(cursor - drained_ > state->ring_slots
                                       ? state->ring_slots
                                       : cursor - drained_);
  drained_ = cursor;
}

uint64_t ContinuousProfiler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  const uint64_t pending =
      state != nullptr ? state->cursor.load(std::memory_order_relaxed) : 0;
  return folded_samples_ + (pending > drained_ ? pending - drained_ : 0);
}

uint64_t ContinuousProfiler::overruns() const {
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  return state != nullptr ? state->overruns.load(std::memory_order_relaxed)
                          : 0;
}

void ContinuousProfiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  auto reset = [this, state] {
    if (state != nullptr) {
      drained_ = state->cursor.load(std::memory_order_relaxed);
    }
    aggregated_.clear();
    folded_samples_ = 0;
  };
  if (state != nullptr && running_.load(std::memory_order_acquire)) {
    WithHandlersPaused(state, /*rearm=*/true, reset);
  } else {
    reset();
  }
  AllocProfile& alloc = GetAllocProfile();
  std::lock_guard<std::mutex> alloc_lock(alloc.mu);
  alloc.by_class.clear();
  alloc.class_counts.clear();
}

std::string ContinuousProfiler::Collapsed() {
  std::lock_guard<std::mutex> lock(mu_);
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  if (state != nullptr && running_.load(std::memory_order_acquire)) {
    WithHandlersPaused(state, /*rearm=*/true, [this] { DrainLocked(); });
  } else if (state != nullptr) {
    DrainLocked();
  }
  std::unordered_map<void*, std::string> symbols;
  std::string out;
  for (const auto& [stack, count] : aggregated_) {
    AppendCollapsedLine(stack, count, &symbols, &out);
  }
  AllocProfile& alloc = GetAllocProfile();
  std::lock_guard<std::mutex> alloc_lock(alloc.mu);
  for (const auto& [cls, stacks] : alloc.by_class) {
    for (const auto& [stack, count] : stacks) {
      out.append("bufpool_miss;class_");
      out.append(std::to_string(cls));
      if (!stack.empty()) out.push_back(';');
      std::string line;
      AppendCollapsedLine(stack, count, &symbols, &line);
      out.append(line);
    }
  }
  return out;
}

std::string ContinuousProfiler::RenderJson() {
  // Collapsed() drains and folds; render the aggregate around it.
  const std::string collapsed = Collapsed();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  out.append("\"running\":");
  out.append(running_.load(std::memory_order_acquire) ? "true" : "false");
  out.append(",\"hz\":");
  out.append(std::to_string(options_.hz));
  out.append(",\"mode\":\"");
  out.append(options_.mode == Mode::kCpu ? "cpu" : "wall");
  out.append("\",\"samples_total\":");
  out.append(std::to_string(folded_samples_));
  out.append(",\"overruns_total\":");
  SignalState* state = g_signal_state.load(std::memory_order_acquire);
  out.append(std::to_string(
      state != nullptr ? state->overruns.load(std::memory_order_relaxed) : 0));
  out.append(",\"distinct_stacks\":");
  out.append(std::to_string(aggregated_.size()));
  {
    AllocProfile& alloc = GetAllocProfile();
    std::lock_guard<std::mutex> alloc_lock(alloc.mu);
    out.append(",\"alloc_classes\":[");
    bool first = true;
    for (const auto& [cls, count] : alloc.class_counts) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"bytes\":");
      out.append(std::to_string(cls));
      out.append(",\"misses\":");
      out.append(std::to_string(count));
      out.push_back('}');
    }
    out.push_back(']');
  }
  out.append(",\"collapsed\":\"");
  for (const char c : collapsed) {
    if (c == '\n') {
      out.append("\\n");
    } else if (c == '"') {
      out.append("\\\"");
    } else if (c == '\\') {
      out.append("\\\\");
    } else {
      out.push_back(c);
    }
  }
  out.append("\"}");
  return out;
}

Result<std::string> ContinuousProfiler::ProfileFor(double seconds,
                                                   const Options& options) {
  if (running()) {
    return Status::AlreadyExists(
        "profiler already running; GET /debug/profilez without arguments "
        "for a snapshot");
  }
  seconds = std::max(0.1, std::min(60.0, seconds));
  Clear();
  FRA_RETURN_NOT_OK(Start(options));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  Stop();
  return Collapsed();
}

}  // namespace fra
