#include "obs/accuracy_auditor.h"

#include "util/logging.h"

#include <algorithm>
#include <cmath>

namespace fra {

AccuracyAuditor::AccuracyAuditor(const Options& options)
    : options_(options), rng_(options.seed) {}

bool AccuracyAuditor::ShouldAudit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshot_.considered;
  return rng_.NextBernoulli(options_.sample_rate);
}

double AccuracyAuditor::RelativeError(double estimate, double exact) {
  // The max(|exact|, 1) floor keeps near-empty ranges from reporting
  // infinite relative error off a one-object absolute miss (the paper's
  // guarantee is stated for counts, where +-1 around zero is noise).
  return std::abs(estimate - exact) / std::max(std::abs(exact), 1.0);
}

const std::vector<double>& AccuracyAuditor::RelativeErrorBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0};
  return *buckets;
}

void AccuracyAuditor::Record(const std::string& algorithm, double estimate,
                             double exact, double epsilon) {
  const double error = RelativeError(estimate, exact);
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry
      .GetHistogram("fra_estimate_relative_error",
                    {{"algorithm", algorithm}}, RelativeErrorBuckets())
      .Observe(error);
  registry.GetCounter("fra_audits_total", {{"algorithm", algorithm}})
      .Increment();
  if (error > epsilon) {
    registry
        .GetCounter("fra_guarantee_violations_total",
                    {{"algorithm", algorithm}})
        .Increment();
    FRA_LOG(WARN) << "guarantee violation: " << algorithm
                  << " answer off by " << error << " (> eps " << epsilon
                  << "); estimate " << estimate << " vs exact " << exact;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshot_.audited;
  if (error > epsilon) ++snapshot_.violations;
  total_relative_error_ += error;
  snapshot_.max_relative_error =
      std::max(snapshot_.max_relative_error, error);
}

void AccuracyAuditor::RecordFailure(const std::string& algorithm) {
  MetricsRegistry::Default()
      .GetCounter("fra_audit_failures_total", {{"algorithm", algorithm}})
      .Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshot_.failures;
}

AccuracyAuditor::Snapshot AccuracyAuditor::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out = snapshot_;
  out.mean_relative_error =
      out.audited > 0 ? total_relative_error_ /
                            static_cast<double>(out.audited)
                      : 0.0;
  return out;
}

}  // namespace fra
