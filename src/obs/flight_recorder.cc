#include "obs/flight_recorder.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

namespace fra {
namespace {

thread_local QueryFlightLog* t_current_flight_log = nullptr;

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::vector<SpanRecord> SortedSpans(const FlightRecorder::Record& record) {
  std::vector<SpanRecord> spans = record.spans;
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              // Ties (same start): the longer span is the ancestor.
              return a.duration_nanos > b.duration_nanos;
            });
  return spans;
}

/// Nesting depth per span by interval containment: a span is a child of
/// the nearest earlier span that still covers its start. Spans arrive
/// sorted by start, so a stack of open end-times yields the depth.
std::vector<size_t> SpanDepths(const std::vector<SpanRecord>& spans) {
  std::vector<size_t> depths(spans.size(), 0);
  std::vector<uint64_t> open_ends;
  for (size_t i = 0; i < spans.size(); ++i) {
    const uint64_t start = spans[i].start_nanos;
    while (!open_ends.empty() && open_ends.back() <= start) {
      open_ends.pop_back();
    }
    depths[i] = open_ends.size();
    open_ends.push_back(start + spans[i].duration_nanos);
  }
  return depths;
}

}  // namespace

QueryFlightLog::QueryFlightLog() : previous_(t_current_flight_log) {
  t_current_flight_log = this;
}

QueryFlightLog::~QueryFlightLog() { t_current_flight_log = previous_; }

QueryFlightLog* QueryFlightLog::Current() { return t_current_flight_log; }

void QueryFlightLog::NoteSilo(int silo_id, const Status& status,
                              double micros) {
  FlightSiloStatus entry;
  entry.silo_id = silo_id;
  entry.ok = status.ok();
  entry.detail = status.ok() ? "ok" : status.ToString();
  entry.micros = micros;
  std::lock_guard<std::mutex> lock(mu_);
  silos_.push_back(std::move(entry));
}

std::vector<FlightSiloStatus> QueryFlightLog::TakeSilos() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightSiloStatus> out;
  out.swap(silos_);
  return out;
}

QueryFlightLogScope::QueryFlightLogScope(QueryFlightLog* log)
    : previous_(t_current_flight_log) {
  t_current_flight_log = log;
}

QueryFlightLogScope::~QueryFlightLogScope() {
  t_current_flight_log = previous_;
}

FlightRecorder::FlightRecorder(const Options& options)
    : capacity_(options.capacity > 0 ? options.capacity : 1),
      threshold_micros_(options.slow_threshold_micros) {}

void FlightRecorder::Add(Record record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = next_sequence_++;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<FlightRecorder::Record> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Record>(records_.begin(), records_.end());
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::string FlightRecorder::RenderText() const {
  const std::vector<Record> records = Snapshot();
  std::ostringstream out;
  out << std::fixed << std::setprecision(0);
  out << "flight recorder: " << records.size() << " record"
      << (records.size() == 1 ? "" : "s") << " (capacity " << capacity_
      << ", slow threshold " << slow_threshold_micros() << "us)\n";
  for (const Record& record : records) {
    out << "\n#" << record.sequence << " trace=" << record.trace_id
        << " algorithm=" << record.algorithm << " cache=" << record.cache
        << " duration=" << record.duration_micros << "us status="
        << (record.failed ? record.status : "ok") << "\n";
    out << "  query: " << record.query << "\n";
    out << "  cost: cpu=" << record.cost.cpu_micros
        << "us bytes_out=" << record.cost.bytes_to_silos
        << " bytes_in=" << record.cost.bytes_from_silos
        << " rpcs=" << record.cost.silo_rpcs
        << " queue_wait=" << record.cost.queue_wait_micros << "us\n";
    if (!record.silos.empty()) {
      out << "  silos:";
      for (const FlightSiloStatus& silo : record.silos) {
        out << " [" << silo.silo_id << " " << (silo.ok ? "ok" : "FAIL") << " "
            << silo.micros << "us" << (silo.ok ? "" : " " + silo.detail)
            << "]";
      }
      out << "\n";
    }
    const std::vector<SpanRecord> spans = SortedSpans(record);
    if (!spans.empty()) {
      const std::vector<size_t> depths = SpanDepths(spans);
      const uint64_t base = spans.front().start_nanos;
      out << "  spans:\n";
      for (size_t i = 0; i < spans.size(); ++i) {
        out << "    ";
        for (size_t d = 0; d < depths[i]; ++d) out << "  ";
        out << spans[i].name << " +"
            << static_cast<double>(spans[i].start_nanos - base) / 1e3
            << "us " << static_cast<double>(spans[i].duration_nanos) / 1e3
            << "us";
        if (!spans[i].tag.empty()) out << " (" << spans[i].tag << ")";
        out << "\n";
      }
    }
  }
  return out.str();
}

std::string FlightRecorder::RenderJson() const {
  const std::vector<Record> records = Snapshot();
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "{\n  \"capacity\": " << capacity_
      << ",\n  \"slow_threshold_micros\": " << slow_threshold_micros()
      << ",\n  \"records\": [";
  bool first_record = true;
  for (const Record& record : records) {
    out << (first_record ? "\n" : ",\n");
    first_record = false;
    out << "    {\"sequence\": " << record.sequence
        << ", \"trace_id\": " << record.trace_id << ", \"query\": \""
        << EscapeJson(record.query) << "\", \"algorithm\": \""
        << EscapeJson(record.algorithm) << "\", \"cache\": \""
        << EscapeJson(record.cache) << "\", \"failed\": "
        << (record.failed ? "true" : "false") << ", \"status\": \""
        << EscapeJson(record.status) << "\", \"duration_micros\": "
        << record.duration_micros << ",\n     \"cost\": "
        << QueryCostToJson(record.cost) << ",\n     \"silos\": [";
    bool first_silo = true;
    for (const FlightSiloStatus& silo : record.silos) {
      out << (first_silo ? "" : ", ");
      first_silo = false;
      out << "{\"silo\": " << silo.silo_id << ", \"ok\": "
          << (silo.ok ? "true" : "false") << ", \"micros\": " << silo.micros
          << ", \"detail\": \"" << EscapeJson(silo.detail) << "\"}";
    }
    out << "],\n     \"spans\": [";
    const std::vector<SpanRecord> spans = SortedSpans(record);
    const std::vector<size_t> depths = SpanDepths(spans);
    bool first_span = true;
    for (size_t i = 0; i < spans.size(); ++i) {
      out << (first_span ? "" : ", ");
      first_span = false;
      out << "{\"name\": \"" << EscapeJson(spans[i].name)
          << "\", \"depth\": " << depths[i] << ", \"start_nanos\": "
          << spans[i].start_nanos << ", \"duration_nanos\": "
          << spans[i].duration_nanos;
      if (!spans[i].tag.empty()) {
        out << ", \"origin\": \"" << EscapeJson(spans[i].tag) << "\"";
      }
      out << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace fra
