#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/reactor.h"
#include "obs/profiler.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/trace.h"

namespace fra {
namespace {

// Requests whose head grows past this are dropped before the headers
// finish parsing — admin requests are a request line plus a handful of
// headers; anything larger is a confused or hostile client.
constexpr size_t kMaxRequestHeadBytes = 16 * 1024;

// Accept backoff after resource exhaustion (EMFILE/ENFILE/...), matching
// the TCP transport's listener policy.
constexpr int kAcceptBackoffMs = 20;

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << " "
      << StatusReason(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      // Admin state is point-in-time: a cached /statusz or /debug/*
      // body is a lie by the next scrape.
      << "Cache-Control: no-store\r\n"
      << "Connection: close\r\n";
  if (response.status == 405) out << "Allow: GET\r\n";
  out << "\r\n" << response.body;
  return out.str();
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// "seconds=2&hz=97" -> the value of `key`, or `fallback` when absent or
/// unparsable.
double QueryParam(const std::string& query, const std::string& key,
                  double fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      try {
        return std::stod(query.substr(eq + 1, end - eq - 1));
      } catch (...) {
        return fallback;
      }
    }
    pos = end + 1;
  }
  return fallback;
}

/// /debug/profilez[.json]: with ?seconds=N the handler runs a fresh
/// blocking capture (optionally at ?hz=H); without arguments it returns
/// whatever the continuous profiler has accumulated so far.
HttpResponse Profilez(const std::string& query, bool json) {
  ContinuousProfiler& profiler = ContinuousProfiler::Get();
  const double seconds = QueryParam(query, "seconds", 0.0);
  if (seconds > 0.0) {
    ContinuousProfiler::Options options;
    options.hz = static_cast<int>(QueryParam(
        query, "hz", static_cast<double>(options.hz)));
    const Result<std::string> collapsed =
        profiler.ProfileFor(seconds, options);
    if (!collapsed.ok()) {
      return HttpResponse::Text(collapsed.status().ToString() + "\n", 503);
    }
    if (!json) return HttpResponse::Text(*collapsed);
    return HttpResponse::Json(profiler.RenderJson());
  }
  if (json) return HttpResponse::Json(profiler.RenderJson());
  std::string collapsed = profiler.Collapsed();
  if (collapsed.empty()) {
    collapsed =
        profiler.running()
            ? "no samples yet\n"
            : "profiler not running; GET /debug/profilez?seconds=N for a "
              "one-shot capture\n";
  }
  return HttpResponse::Text(std::move(collapsed));
}

}  // namespace

/// One scrape connection: accumulate the request head, then flush the
/// buffered response. Touched only from its loop thread; `closed` guards
/// against the io-deadline timer racing a completed close.
struct AdminServer::HttpConn {
  int fd = -1;
  EventLoop* loop = nullptr;
  std::string head;      // request bytes until the blank line
  std::string out;       // rendered response
  size_t out_offset = 0;
  bool writing = false;  // head complete, response queued
  uint32_t interest = EPOLLIN;
  uint64_t timer_id = 0;  // io_timeout deadline
  bool closed = false;
};

Result<std::unique_ptr<AdminServer>> AdminServer::Start(
    const Options& options) {
  std::unique_ptr<AdminServer> server(new AdminServer());
  server->options_ = options;
  server->InstallBuiltinHandlers();
  // Every scraped process carries its build provenance as a series.
  RegisterBuildInfoMetric();

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(options.port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t address_len = sizeof(address);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<sockaddr*>(&address),
                    &address_len) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  server->port_ = ntohs(address.sin_port);
  if (::listen(server->listen_fd_, 64) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  FRA_RETURN_NOT_OK(SetNonBlocking(server->listen_fd_));

  if (options.reactor != nullptr) {
    server->reactor_ = options.reactor;
  } else {
    // Scrape traffic is light; one loop thread is plenty.
    server->owned_reactor_ = std::make_unique<Reactor>(1);
    server->reactor_ = server->owned_reactor_.get();
  }
  server->accept_loop_ = server->reactor_->loop(0);
  AdminServer* raw = server.get();
  Status registered = Status::OK();
  server->accept_loop_->SubmitAndWait([raw, &registered] {
    registered = raw->accept_loop_->RegisterFd(
        raw->listen_fd_, EPOLLIN, [raw](uint32_t) { raw->OnAcceptReady(); });
  });
  FRA_RETURN_NOT_OK(registered);
  return server;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (accept_loop_ != nullptr) {
    accept_loop_->SubmitAndWait([this] {
      if (listen_fd_ >= 0) {
        accept_loop_->DeregisterFd(listen_fd_);
        CloseFd(&listen_fd_);
      }
    });
  }
  std::vector<std::shared_ptr<HttpConn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.assign(conns_.begin(), conns_.end());
  }
  for (const std::shared_ptr<HttpConn>& conn : conns) {
    conn->loop->SubmitAndWait([this, conn] { CloseConn(conn); });
  }
  if (owned_reactor_) owned_reactor_->Stop();
}

void AdminServer::AddHandler(const std::string& path, Handler handler) {
  AddHandler(path, QueryHandler([handler = std::move(handler)](
                       const std::string&) { return handler(); }));
}

void AdminServer::AddHandler(const std::string& path, QueryHandler handler) {
  FRA_CHECK(!path.empty() && path[0] == '/')
      << "handler path must start with /: " << path;
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

void AdminServer::InstallBuiltinHandlers() {
  MetricsRegistry* registry = options_.registry;
  AddHandler("/metrics", [registry] {
    HttpResponse response = HttpResponse::Text(registry->ExportPrometheus());
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return response;
  });
  AddHandler("/metrics.json", [registry] {
    return HttpResponse::Json(registry->ExportJson());
  });
  AddHandler("/tracez", [] {
    return HttpResponse::Json(Tracer::Get().ExportChromeTrace());
  });
  // Plain liveness; the federation glue overrides this with real
  // readiness (503 while any silo is down).
  AddHandler("/healthz", [] { return HttpResponse::Text("ok\n"); });
  AddHandler("/debug/logz",
             [] { return HttpResponse::Text(LogSink::Get().RenderText()); });
  AddHandler("/debug/logz.json",
             [] { return HttpResponse::Json(LogSink::Get().RenderJson()); });
  AddHandler("/debug/profilez", QueryHandler([](const std::string& query) {
               return Profilez(query, /*json=*/false);
             }));
  AddHandler("/debug/profilez.json",
             QueryHandler([](const std::string& query) {
               return Profilez(query, /*json=*/true);
             }));
}

void AdminServer::OnAcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      const int enable = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
      EventLoop* loop = reactor_->NextLoop();
      loop->Submit([this, fd, loop] { AdoptConnection(fd, loop); });
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    switch (ClassifyAcceptErrno(errno)) {
      case AcceptAction::kRetry:
        continue;
      case AcceptAction::kBackoff:
        (void)accept_loop_->UpdateFd(listen_fd_, 0);
        accept_loop_->ScheduleTimerAfter(
            std::chrono::milliseconds(kAcceptBackoffMs), [this] {
              if (!stopping_.load() && listen_fd_ >= 0) {
                (void)accept_loop_->UpdateFd(listen_fd_, EPOLLIN);
              }
            });
        return;
      case AcceptAction::kFatal:
        accept_loop_->DeregisterFd(listen_fd_);
        return;
    }
  }
}

void AdminServer::AdoptConnection(int fd, EventLoop* loop) {
  auto conn = std::make_shared<HttpConn>();
  conn->fd = fd;
  conn->loop = loop;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conns_.insert(conn);
  }
  const Status registered = loop->RegisterFd(
      fd, EPOLLIN,
      [this, conn](uint32_t events) { OnConnEvent(conn, events); });
  if (!registered.ok()) {
    FRA_LOG(WARN) << "admin server dropped an accepted connection: "
                  << registered.ToString();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn);
    ::close(fd);
    return;
  }
  if (options_.io_timeout_ms > 0) {
    conn->timer_id = loop->ScheduleTimerAfter(
        std::chrono::milliseconds(options_.io_timeout_ms), [this, conn] {
          conn->timer_id = 0;
          CloseConn(conn);  // stalled scraper: drop it
        });
  }
}

void AdminServer::OnConnEvent(const std::shared_ptr<HttpConn>& conn,
                              uint32_t events) {
  if (conn->closed) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(conn);
    return;
  }
  if ((events & EPOLLIN) && !conn->writing) OnReadable(conn);
  if (conn->closed) return;
  if (conn->writing) OnWritable(conn);
}

void AdminServer::OnReadable(const std::shared_ptr<HttpConn>& conn) {
  char buffer[1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(conn);
      return;
    }
    if (n == 0) {
      // Closed before the blank line: nothing to answer.
      CloseConn(conn);
      return;
    }
    conn->head.append(buffer, static_cast<size_t>(n));
    if (conn->head.size() > kMaxRequestHeadBytes) {
      CloseConn(conn);
      return;
    }
    if (conn->head.find("\r\n\r\n") != std::string::npos ||
        conn->head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  // Request line: METHOD SP TARGET SP VERSION. The target's query
  // string does not participate in routing. We never consume a body:
  // every admin route is GET.
  std::istringstream line(conn->head);
  std::string method, target;
  line >> method >> target;
  std::string query;
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    query = target.substr(question + 1);
    target.resize(question);
  }
  const HttpResponse response = Dispatch(method, target, query);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  conn->out = RenderResponse(response);
  conn->writing = true;
  OnWritable(conn);
}

void AdminServer::OnWritable(const std::shared_ptr<HttpConn>& conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket full: wait for EPOLLOUT (the io deadline still bounds
        // how long a non-draining scraper can hold the connection).
        if (conn->interest != EPOLLOUT &&
            conn->loop->UpdateFd(conn->fd, EPOLLOUT).ok()) {
          conn->interest = EPOLLOUT;
        }
        return;
      }
      CloseConn(conn);
      return;
    }
    conn->out_offset += static_cast<size_t>(n);
  }
  CloseConn(conn);  // one exchange per connection (Connection: close)
}

void AdminServer::CloseConn(const std::shared_ptr<HttpConn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->timer_id != 0) {
    conn->loop->CancelTimer(conn->timer_id);
    conn->timer_id = 0;
  }
  conn->loop->DeregisterFd(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn);
}

HttpResponse AdminServer::Dispatch(const std::string& method,
                                   const std::string& path,
                                   const std::string& query) {
  if (method != "GET") {
    return HttpResponse::Text("method not allowed\n", 405);
  }
  QueryHandler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    return HttpResponse::Text("not found: " + path + "\n", 404);
  }
  return handler(query);
}

}  // namespace fra
