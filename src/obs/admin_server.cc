#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/trace.h"

namespace fra {
namespace {

// Requests whose head grows past this are dropped before the headers
// finish parsing — admin requests are a request line plus a handful of
// headers; anything larger is a confused or hostile client.
constexpr size_t kMaxRequestHeadBytes = 16 * 1024;

/// Absolute wait bound for one connection's I/O; unbounded when the
/// server's io_timeout_ms <= 0 (mirrors the TCP transport's
/// DeadlinePoint, re-declared here because obs must not depend on net).
struct IoDeadline {
  std::chrono::steady_clock::time_point at;
  bool bounded = false;

  static IoDeadline After(int ms) {
    IoDeadline deadline;
    if (ms > 0) {
      deadline.at =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
      deadline.bounded = true;
    }
    return deadline;
  }

  int RemainingMs() const {
    if (!bounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - std::chrono::steady_clock::now());
    return std::max<int>(0, static_cast<int>(left.count()));
  }
};

// Blocks until `fd` is ready for `events` or the deadline passes; a
// positive poll() only promises progress, so callers loop.
Status WaitReady(int fd, short events, const IoDeadline& deadline,
                 const char* what) {
  for (;;) {
    pollfd entry{};
    entry.fd = fd;
    entry.events = events;
    const int n = ::poll(&entry, 1, deadline.RemainingMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable(std::string("deadline exceeded: ") + what);
    }
    return Status::OK();
  }
}

Status WriteAll(int fd, const std::string& data, const IoDeadline& deadline) {
  const char* p = data.data();
  size_t size = data.size();
  while (size > 0) {
    FRA_RETURN_NOT_OK(WaitReady(fd, POLLOUT, deadline, "sending response"));
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads until the blank line ending the request head (we never consume a
// body: every admin route is GET). Returns the head, headers included.
Result<std::string> ReadRequestHead(int fd, const IoDeadline& deadline) {
  std::string head;
  char buffer[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > kMaxRequestHeadBytes) {
      return Status::InvalidArgument("request head too large");
    }
    FRA_RETURN_NOT_OK(WaitReady(fd, POLLIN, deadline, "reading request"));
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("connection closed before request completed");
    }
    head.append(buffer, static_cast<size_t>(n));
  }
  return head;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << " "
      << StatusReason(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n";
  if (response.status == 405) out << "Allow: GET\r\n";
  out << "\r\n" << response.body;
  return out.str();
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

Result<std::unique_ptr<AdminServer>> AdminServer::Start(
    const Options& options) {
  std::unique_ptr<AdminServer> server(new AdminServer());
  server->options_ = options;
  server->InstallBuiltinHandlers();

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(options.port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t address_len = sizeof(address);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<sockaddr*>(&address),
                    &address_len) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  server->port_ = ntohs(address.sin_port);
  if (::listen(server->listen_fd_, 64) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(&listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Wake workers blocked in recv() on live connections; each closes
    // its own fd on exit.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void AdminServer::AddHandler(const std::string& path, Handler handler) {
  FRA_CHECK(!path.empty() && path[0] == '/')
      << "handler path must start with /: " << path;
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

void AdminServer::InstallBuiltinHandlers() {
  MetricsRegistry* registry = options_.registry;
  AddHandler("/metrics", [registry] {
    HttpResponse response = HttpResponse::Text(registry->ExportPrometheus());
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return response;
  });
  AddHandler("/metrics.json", [registry] {
    return HttpResponse::Json(registry->ExportJson());
  });
  AddHandler("/tracez", [] {
    return HttpResponse::Json(Tracer::Get().ExportChromeTrace());
  });
  // Plain liveness; the federation glue overrides this with real
  // readiness (503 while any silo is down).
  AddHandler("/healthz", [] { return HttpResponse::Text("ok\n"); });
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int connection_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (connection_fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listening socket broken; stop serving
    }
    const int enable = 1;
    ::setsockopt(connection_fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                 sizeof(enable));
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load()) {
      ::close(connection_fd);
      return;
    }
    active_fds_.insert(connection_fd);
    workers_.emplace_back([this, connection_fd] {
      ServeConnection(connection_fd);
    });
  }
}

HttpResponse AdminServer::Dispatch(const std::string& method,
                                   const std::string& path) {
  if (method != "GET") {
    return HttpResponse::Text("method not allowed\n", 405);
  }
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    return HttpResponse::Text("not found: " + path + "\n", 404);
  }
  return handler();
}

void AdminServer::ServeConnection(int connection_fd) {
  int fd = connection_fd;
  const IoDeadline deadline = IoDeadline::After(options_.io_timeout_ms);
  Result<std::string> head = ReadRequestHead(fd, deadline);
  if (head.ok()) {
    // Request line: METHOD SP TARGET SP VERSION. The target's query
    // string does not participate in routing.
    std::istringstream line(head.ValueOrDie());
    std::string method, target;
    line >> method >> target;
    const size_t query = target.find('?');
    if (query != std::string::npos) target.resize(query);
    const HttpResponse response = Dispatch(method, target);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    // A scraper that stops reading mid-response is its own problem; the
    // deadline guarantees this send cannot wedge the worker.
    (void)WriteAll(fd, RenderResponse(response), deadline);
  }
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    active_fds_.erase(fd);
  }
  ::close(fd);
}

}  // namespace fra
