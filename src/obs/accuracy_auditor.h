#ifndef FRA_OBS_ACCURACY_AUDITOR_H_
#define FRA_OBS_ACCURACY_AUDITOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/random.h"

namespace fra {

/// Online auditor for the paper's (eps, delta) guarantee: the sampled
/// estimators promise relative error <= eps with probability >= 1-delta,
/// and this is the component that checks the promise holds in
/// production, not just in the offline evaluation.
///
/// The provider consults ShouldAudit() after each successful approximate
/// query; for the sampled fraction it re-executes the query EXACT in the
/// background and feeds both answers to Record(), which
///   - observes |est - exact| / max(|exact|, 1) into the
///     `fra_estimate_relative_error{algorithm=...}` histogram, and
///   - bumps `fra_guarantee_violations_total{algorithm=...}` when the
///     error exceeds eps (expected rate: at most delta among audits).
///
/// The auditor holds no query machinery itself — it only decides, scores
/// and counts — so it lives in the obs layer and the federation supplies
/// the exact re-execution. Thread safe.
class AccuracyAuditor {
 public:
  struct Options {
    /// Fraction of eligible (successful, approximate) queries audited.
    double sample_rate = 0.01;
    /// Seed for the audit draw (deterministic in tests).
    uint64_t seed = 0xA0D17ULL;
  };

  struct Snapshot {
    uint64_t considered = 0;  // eligible queries seen by ShouldAudit
    uint64_t audited = 0;     // exact re-executions scored
    uint64_t failures = 0;    // exact re-executions that errored
    uint64_t violations = 0;  // audits with relative error > eps
    double max_relative_error = 0.0;
    double mean_relative_error = 0.0;
  };

  AccuracyAuditor() : AccuracyAuditor(Options{}) {}
  explicit AccuracyAuditor(const Options& options);

  /// One Bernoulli(sample_rate) draw per eligible query.
  bool ShouldAudit();

  /// Scores one audited query. `epsilon` is the guarantee the estimate
  /// was produced under.
  void Record(const std::string& algorithm, double estimate, double exact,
              double epsilon);

  /// The exact re-execution failed (silo loss, say): counted, not scored.
  void RecordFailure(const std::string& algorithm);

  Snapshot snapshot() const;

  const Options& options() const { return options_; }

  static double RelativeError(double estimate, double exact);
  /// Buckets of `fra_estimate_relative_error` (relative error is
  /// dimensionless, so the latency ladder does not fit).
  static const std::vector<double>& RelativeErrorBuckets();

 private:
  const Options options_;
  mutable std::mutex mu_;
  Rng rng_;
  Snapshot snapshot_;
  double total_relative_error_ = 0.0;
};

}  // namespace fra

#endif  // FRA_OBS_ACCURACY_AUDITOR_H_
