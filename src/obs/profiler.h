#ifndef FRA_OBS_PROFILER_H_
#define FRA_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"

namespace fra {

/// Signal-based sampling profiler (docs/observability.md, "Continuous
/// profiling").
///
/// Start() arms an interval timer: kCpu mode uses ITIMER_PROF, so SIGPROF
/// fires on whichever thread is burning CPU and each sample captures that
/// thread's stack — wall-blocked threads cost nothing and appear nowhere.
/// kWall mode uses ITIMER_REAL/SIGALRM (samples land on one signal-
/// receiving thread; useful for single-threaded latency hunts). The
/// handler claims a ring slot with one atomic fetch_add and records a raw
/// `backtrace()`; symbolization (dladdr + demangle) happens at render
/// time, never in the handler.
///
/// Output: Collapsed() emits folded stacks ("frame;frame;frame count"
/// lines — pipe into flamegraph.pl), RenderJson() the same data plus
/// allocation-profile and counters. Served by /debug/profilez.
///
/// Allocation profiling piggybacks on the BufferPool miss hook: one in
/// every Options::alloc_sample_every Acquires that fall through to malloc
/// records the requesting stack keyed by size class (counts scaled back
/// up by the sampling factor), so pool-miss hot spots show up by size
/// class in the same report (stacks prefixed "bufpool_miss;class_<bytes>").
///
/// One profiler per process (it owns the SIGPROF/SIGALRM disposition):
/// use the Get() singleton. Sampling cost is one signal + backtrace per
/// tick; at the default 19 Hz the reactor-path qps tax is within noise
/// (BENCH_observability_overhead.json pins it under 5%).
class ContinuousProfiler {
 public:
  enum class Mode { kCpu, kWall };

  struct Options {
    /// Samples per second. Primes (19, 97) avoid lockstep with periodic
    /// work. Clamped to [1, 1000].
    int hz = 19;
    Mode mode = Mode::kCpu;
    /// Raw-sample ring slots between drains; overruns overwrite oldest
    /// (counted in fra_profile_overruns_total).
    size_t ring_slots = 8192;
    /// Record BufferPool miss stacks by size class.
    bool profile_allocations = true;
    /// Capture every Nth pool miss (first miss always captured). Misses
    /// can be per-query-frequent on cold or unpoolable paths, and each
    /// captured miss pays a backtrace — sampling keeps the hook off the
    /// hot path. Reported counts are scaled back up by this factor.
    /// Clamped to >= 1.
    uint64_t alloc_sample_every = 64;
  };

  static ContinuousProfiler& Get();

  /// Arms the timer and installs the signal handler. AlreadyExists if
  /// already running.
  Status Start(const Options& options);
  Status Start() { return Start(Options()); }

  /// Disarms, restores the previous signal disposition, folds pending
  /// samples. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Samples captured since the last Clear() (folded + pending).
  uint64_t samples() const;
  /// Samples lost to ring overruns.
  uint64_t overruns() const;

  /// Folded-stack text, aggregated across everything sampled since the
  /// last Clear(): one "frame;frame;frame count" line per distinct stack,
  /// root first. Drains the pending ring (sampling pauses briefly).
  std::string Collapsed();

  /// Counters, configuration, folded CPU stacks, and the allocation
  /// profile as one JSON object.
  std::string RenderJson();

  /// Drops all folded and pending samples (keeps running if started).
  void Clear();

  /// Blocking convenience behind /debug/profilez?seconds=N: Clear,
  /// Start(options), sleep, Stop, return Collapsed(). AlreadyExists if
  /// the profiler is already running. `seconds` clamped to [0.1, 60].
  Result<std::string> ProfileFor(double seconds, const Options& options);

 private:
  ContinuousProfiler() = default;

  void DrainLocked();  // fold ring slots into aggregated_

  std::atomic<bool> running_{false};
  mutable std::mutex mu_;  // guards everything below + drain/start/stop
  Options options_;
  // Folded samples: callstack (leaf last) -> count.
  std::map<std::vector<void*>, uint64_t> aggregated_;
  uint64_t folded_samples_ = 0;
  uint64_t drained_ = 0;  // ring cursor already folded
  bool alloc_hook_installed_ = false;
};

}  // namespace fra

#endif  // FRA_OBS_PROFILER_H_
