#include "obs/cost_ledger.h"

#include <algorithm>
#include <cstdio>

#include "util/metrics.h"

namespace fra {

void QueryCostLedger::Record(const std::string& algorithm,
                             const std::string& aggregate,
                             const std::string& cache, bool ok,
                             const QueryCost& cost) {
  const std::string key = algorithm + '|' + aggregate + '|' + cache;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  if (entry.rpcs == nullptr) {
    entry.rollup.algorithm = algorithm;
    entry.rollup.aggregate = aggregate;
    entry.rollup.cache = cache;
    auto& registry = MetricsRegistry::Default();
    const MetricLabels labels = {{"algorithm", algorithm},
                                 {"aggregate", aggregate},
                                 {"cache", cache}};
    entry.rpcs =
        &registry.GetCounter("fra_query_cost_silo_rpcs_total", labels);
    MetricLabels out_labels = labels;
    out_labels.emplace_back("direction", "to_silos");
    entry.bytes_to_silos =
        &registry.GetCounter("fra_query_cost_bytes_total", out_labels);
    MetricLabels in_labels = labels;
    in_labels.emplace_back("direction", "from_silos");
    entry.bytes_from_silos =
        &registry.GetCounter("fra_query_cost_bytes_total", in_labels);
    entry.cpu =
        &registry.GetHistogram("fra_query_cost_cpu_microseconds", labels);
    entry.queue_wait = &registry.GetHistogram(
        "fra_query_cost_queue_wait_microseconds", labels);
  }
  Rollup& rollup = entry.rollup;
  ++rollup.queries;
  if (!ok) ++rollup.failures;
  rollup.cpu_micros += cost.cpu_micros;
  rollup.bytes_to_silos += cost.bytes_to_silos;
  rollup.bytes_from_silos += cost.bytes_from_silos;
  rollup.silo_rpcs += cost.silo_rpcs;
  rollup.queue_wait_micros += cost.queue_wait_micros;

  entry.rpcs->Increment(cost.silo_rpcs);
  entry.bytes_to_silos->Increment(cost.bytes_to_silos);
  entry.bytes_from_silos->Increment(cost.bytes_from_silos);
  entry.cpu->Observe(cost.cpu_micros);
  if (cost.queue_wait_micros > 0.0) {
    entry.queue_wait->Observe(cost.queue_wait_micros);
  }
}

std::vector<QueryCostLedger::Rollup> QueryCostLedger::Snapshot() const {
  std::vector<Rollup> rollups;
  std::lock_guard<std::mutex> lock(mu_);
  rollups.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) rollups.push_back(entry.rollup);
  return rollups;  // map order == sorted by key == (algorithm, agg, cache)
}

std::string QueryCostLedger::RenderJson() const {
  const std::vector<Rollup> rollups = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < rollups.size(); ++i) {
    const Rollup& r = rollups[i];
    if (i > 0) out.push_back(',');
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"algorithm\":\"%s\",\"aggregate\":\"%s\",\"cache\":\"%s\","
        "\"queries\":%llu,\"failures\":%llu,\"cpu_micros\":%.1f,"
        "\"bytes_to_silos\":%llu,\"bytes_from_silos\":%llu,"
        "\"silo_rpcs\":%llu,\"queue_wait_micros\":%.1f}",
        r.algorithm.c_str(), r.aggregate.c_str(), r.cache.c_str(),
        static_cast<unsigned long long>(r.queries),
        static_cast<unsigned long long>(r.failures), r.cpu_micros,
        static_cast<unsigned long long>(r.bytes_to_silos),
        static_cast<unsigned long long>(r.bytes_from_silos),
        static_cast<unsigned long long>(r.silo_rpcs), r.queue_wait_micros);
    out.append(buf);
  }
  out.push_back(']');
  return out;
}

}  // namespace fra
