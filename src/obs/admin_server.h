#ifndef FRA_OBS_ADMIN_SERVER_H_
#define FRA_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"

namespace fra {

class EventLoop;
class Reactor;

/// One admin-endpoint response: status line + content type + body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200) {
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
  }
  static HttpResponse Json(std::string body, int status = 200) {
    HttpResponse response;
    response.status = status;
    response.content_type = "application/json";
    response.body = std::move(body);
    return response;
  }
};

/// Minimal embedded HTTP/1.0 admin server — the scrape/debug surface of
/// a deployed federation. Serves GET only, one request per connection
/// (Connection: close).
///
/// All connections are served from an epoll event loop (the same reactor
/// substrate as the TCP transport — pass Options::reactor to share the
/// federation's loops, or leave it null for an internal single-thread
/// reactor): non-blocking reads accumulate the request head, responses
/// are buffered and flushed as the socket accepts them, and a per-
/// connection timer drops clients stalling past io_timeout_ms — a stuck
/// scraper holds one idle connection's state, never a thread.
///
/// Built-in routes:
///   /metrics             Prometheus text exposition of the registry
///   /metrics.json        the same data as JSON
///   /tracez              recorded spans as a Chrome trace-event JSON array
///   /healthz             liveness (overridable via AddHandler)
///   /debug/logz(.json)   the structured-log ring, oldest first
///   /debug/profilez      collapsed profiler stacks; ?seconds=N[&hz=H]
///                        runs a fresh capture (blocking the serving
///                        loop for the window — use short windows, or a
///                        dedicated AdminServer reactor, in production)
///   /debug/profilez.json the same plus counters and the alloc profile
///
/// Every response carries an explicit Content-Type and Cache-Control:
/// no-store — scrapers never guess, caches never serve stale debug
/// state.
///
/// AddHandler registers additional paths (the federation layer installs
/// /healthz and /statusz via InstallFederationAdminHandlers). Handlers
/// run on the event loop serving the connection: they must be thread
/// safe and quick — a handler that blocks stalls every connection on
/// that loop.
class AdminServer {
 public:
  using Handler = std::function<HttpResponse()>;
  /// Handler variant receiving the request target's query string (the
  /// part after '?', possibly empty) — /debug/profilez?seconds=2 uses
  /// this to parametrise the capture.
  using QueryHandler = std::function<HttpResponse(const std::string& query)>;

  struct Options {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    uint16_t port = 0;
    /// Registry served by /metrics and /metrics.json.
    MetricsRegistry* registry = &MetricsRegistry::Default();
    /// Deadline for reading one request and writing its response; a
    /// client stalling past this is dropped. <= 0 disables the bound.
    int io_timeout_ms = 5000;
    /// Serve from this externally owned reactor (e.g. the TcpNetwork's)
    /// instead of an internal single-thread one. Must outlive the
    /// server; call Stop() before stopping a shared reactor.
    Reactor* reactor = nullptr;
  };

  /// Binds, registers with the event loop, and serves until
  /// Stop()/destruction.
  static Result<std::unique_ptr<AdminServer>> Start(const Options& options);
  static Result<std::unique_ptr<AdminServer>> Start() {
    return Start(Options{});
  }

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Stops accepting and closes all connections.
  ~AdminServer();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Registers (or replaces) the handler serving GET `path`. The path
  /// must start with '/'; query strings are stripped before matching
  /// (and handed to QueryHandler registrations).
  void AddHandler(const std::string& path, Handler handler);
  void AddHandler(const std::string& path, QueryHandler handler);

  /// Requests answered so far (any status).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  struct HttpConn;  // per-connection state machine (admin_server.cc)

  AdminServer() = default;

  void OnAcceptReady();
  void AdoptConnection(int fd, EventLoop* loop);
  void OnConnEvent(const std::shared_ptr<HttpConn>& conn, uint32_t events);
  void OnReadable(const std::shared_ptr<HttpConn>& conn);
  void OnWritable(const std::shared_ptr<HttpConn>& conn);
  void CloseConn(const std::shared_ptr<HttpConn>& conn);
  HttpResponse Dispatch(const std::string& method, const std::string& path,
                        const std::string& query);
  void InstallBuiltinHandlers();

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::unique_ptr<Reactor> owned_reactor_;
  Reactor* reactor_ = nullptr;  // owned_reactor_.get() or Options::reactor
  EventLoop* accept_loop_ = nullptr;
  mutable std::mutex conns_mu_;
  std::unordered_set<std::shared_ptr<HttpConn>> conns_;

  mutable std::mutex handlers_mu_;
  std::map<std::string, QueryHandler> handlers_;
};

}  // namespace fra

#endif  // FRA_OBS_ADMIN_SERVER_H_
