#ifndef FRA_OBS_ADMIN_SERVER_H_
#define FRA_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"

namespace fra {

/// One admin-endpoint response: status line + content type + body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200) {
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
  }
  static HttpResponse Json(std::string body, int status = 200) {
    HttpResponse response;
    response.status = status;
    response.content_type = "application/json";
    response.body = std::move(body);
    return response;
  }
};

/// Minimal embedded HTTP/1.0 admin server — the scrape/debug surface of
/// a deployed federation. Serves GET only, one request per connection
/// (Connection: close), each accepted connection on its own thread, all
/// socket I/O poll-bounded so a stuck scraper cannot wedge a worker
/// (same discipline as the TCP transport's deadline handling).
///
/// Built-in routes:
///   /metrics       Prometheus text exposition of the registry
///   /metrics.json  the same data as JSON
///   /tracez        recorded spans as a Chrome trace-event JSON array
///   /healthz       liveness (overridable via AddHandler for readiness)
///
/// AddHandler registers additional paths (the federation layer installs
/// /healthz and /statusz via InstallFederationAdminHandlers). Handlers
/// run on the connection's thread and must be thread safe.
class AdminServer {
 public:
  using Handler = std::function<HttpResponse()>;

  struct Options {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    uint16_t port = 0;
    /// Registry served by /metrics and /metrics.json.
    MetricsRegistry* registry = &MetricsRegistry::Default();
    /// Deadline for reading one request and writing its response; a
    /// client stalling past this is dropped. <= 0 disables the bound.
    int io_timeout_ms = 5000;
  };

  /// Binds, starts the accept loop, and serves until Stop()/destruction.
  static Result<std::unique_ptr<AdminServer>> Start(const Options& options);
  static Result<std::unique_ptr<AdminServer>> Start() {
    return Start(Options{});
  }

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Stops accepting, closes all connections, joins all threads.
  ~AdminServer();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Registers (or replaces) the handler serving GET `path`. The path
  /// must start with '/'; query strings are stripped before matching.
  void AddHandler(const std::string& path, Handler handler);

  /// Requests answered so far (any status).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  AdminServer() = default;

  void AcceptLoop();
  void ServeConnection(int connection_fd);
  HttpResponse Dispatch(const std::string& method, const std::string& path);
  void InstallBuiltinHandlers();

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::mutex workers_mu_;  // guards workers_ and active_fds_
  std::vector<std::thread> workers_;
  // Connection fds currently being served; Stop() shuts them down so
  // workers blocked in recv() wake up and exit.
  std::unordered_set<int> active_fds_;
  mutable std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;
};

}  // namespace fra

#endif  // FRA_OBS_ADMIN_SERVER_H_
