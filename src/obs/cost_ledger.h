#ifndef FRA_OBS_COST_LEDGER_H_
#define FRA_OBS_COST_LEDGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/query_cost.h"

namespace fra {

class Counter;
class Histogram;

/// Aggregates finished queries' costs into per-{algorithm, aggregate,
/// cache-outcome} rollups, mirrored to the fra_query_cost_* metric
/// families and rendered as the /statusz "cost_ledger" section. One
/// Record per query; instruments are resolved once per distinct key.
///
/// The per-query measurement side (QueryCost, QueryCostTracker,
/// QueryCostScope) lives in util/query_cost.h so the data plane — the
/// coalescer charging queue-wait, CallSilo charging bytes — can note
/// costs without depending on this library.
class QueryCostLedger {
 public:
  struct Rollup {
    std::string algorithm;
    std::string aggregate;
    std::string cache;  // "hit", "tile", "miss" or "off"
    uint64_t queries = 0;
    uint64_t failures = 0;
    double cpu_micros = 0.0;
    uint64_t bytes_to_silos = 0;
    uint64_t bytes_from_silos = 0;
    uint64_t silo_rpcs = 0;
    double queue_wait_micros = 0.0;
  };

  QueryCostLedger() = default;
  QueryCostLedger(const QueryCostLedger&) = delete;
  QueryCostLedger& operator=(const QueryCostLedger&) = delete;

  void Record(const std::string& algorithm, const std::string& aggregate,
              const std::string& cache, bool ok, const QueryCost& cost);

  /// All rollups, sorted by (algorithm, aggregate, cache).
  std::vector<Rollup> Snapshot() const;

  /// The rollups as a JSON array (the /statusz "cost_ledger" value).
  std::string RenderJson() const;

 private:
  struct Entry {
    Rollup rollup;
    Counter* rpcs = nullptr;
    Counter* bytes_to_silos = nullptr;
    Counter* bytes_from_silos = nullptr;
    Histogram* cpu = nullptr;
    Histogram* queue_wait = nullptr;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace fra

#endif  // FRA_OBS_COST_LEDGER_H_
