#ifndef FRA_BASELINE_CENTRALIZED_H_
#define FRA_BASELINE_CENTRALIZED_H_

#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "geo/range.h"
#include "index/rtree.h"
#include "util/result.h"

namespace fra {

/// The "no federation constraint" reference: one aggregate R-tree over
/// the pooled union of all partitions, as a conventional centralised
/// spatial database would build. Federated deployments cannot do this
/// (raw rows may not leave their silos — the constraint motivating the
/// whole paper), but it provides the performance ceiling that DESIGN.md's
/// discussion and the throughput bench compare against.
class CentralizedRTree {
 public:
  explicit CentralizedRTree(const std::vector<ObjectSet>& partitions,
                            const RTree::Options& options = RTree::Options());

  AggregateSummary Summarize(const QueryRange& range) const;
  Result<double> Aggregate(const QueryRange& range, AggregateKind kind) const;

  size_t size() const { return tree_.size(); }
  size_t MemoryUsage() const { return tree_.MemoryUsage(); }
  const RTree& tree() const { return tree_; }

 private:
  RTree tree_;
};

}  // namespace fra

#endif  // FRA_BASELINE_CENTRALIZED_H_
