#ifndef FRA_BASELINE_BRUTE_FORCE_H_
#define FRA_BASELINE_BRUTE_FORCE_H_

#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "geo/range.h"
#include "util/result.h"

namespace fra {

/// Linear-scan ground truth over raw object sets, outside the federation
/// abstraction entirely. Tests and the evaluation harness use it to
/// compute the exact answers that relative errors are measured against
/// (Sec. 8.1's RE definition needs the true result).
class BruteForceAggregator {
 public:
  /// Keeps a flattened copy of all partitions.
  explicit BruteForceAggregator(const std::vector<ObjectSet>& partitions);
  explicit BruteForceAggregator(ObjectSet objects);

  /// Summary of all objects inside `range` by exhaustive scan.
  AggregateSummary Summarize(const QueryRange& range) const;

  /// Final aggregate value of `kind` inside `range`.
  Result<double> Aggregate(const QueryRange& range, AggregateKind kind) const;

  size_t size() const { return objects_.size(); }
  const ObjectSet& objects() const { return objects_; }

 private:
  ObjectSet objects_;
};

}  // namespace fra

#endif  // FRA_BASELINE_BRUTE_FORCE_H_
