#include "baseline/brute_force.h"

namespace fra {

BruteForceAggregator::BruteForceAggregator(
    const std::vector<ObjectSet>& partitions) {
  size_t total = 0;
  for (const ObjectSet& partition : partitions) total += partition.size();
  objects_.reserve(total);
  for (const ObjectSet& partition : partitions) {
    objects_.insert(objects_.end(), partition.begin(), partition.end());
  }
}

BruteForceAggregator::BruteForceAggregator(ObjectSet objects)
    : objects_(std::move(objects)) {}

AggregateSummary BruteForceAggregator::Summarize(
    const QueryRange& range) const {
  return SummarizeIf(objects_,
                     [&range](const Point& p) { return range.Contains(p); });
}

Result<double> BruteForceAggregator::Aggregate(const QueryRange& range,
                                               AggregateKind kind) const {
  double value = 0.0;
  FRA_RETURN_NOT_OK(Summarize(range).Finalize(kind, &value));
  return value;
}

}  // namespace fra
