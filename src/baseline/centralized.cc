#include "baseline/centralized.h"

namespace fra {

CentralizedRTree::CentralizedRTree(const std::vector<ObjectSet>& partitions,
                                   const RTree::Options& options) {
  ObjectSet all;
  size_t total = 0;
  for (const ObjectSet& partition : partitions) total += partition.size();
  all.reserve(total);
  for (const ObjectSet& partition : partitions) {
    all.insert(all.end(), partition.begin(), partition.end());
  }
  tree_ = RTree::Build(std::move(all), options);
}

AggregateSummary CentralizedRTree::Summarize(const QueryRange& range) const {
  return tree_.RangeAggregate(range);
}

Result<double> CentralizedRTree::Aggregate(const QueryRange& range,
                                           AggregateKind kind) const {
  double value = 0.0;
  FRA_RETURN_NOT_OK(Summarize(range).Finalize(kind, &value));
  return value;
}

}  // namespace fra
