#ifndef FRA_FRA_H_
#define FRA_FRA_H_

/// Umbrella header: the full public API of the FRA library.
///
/// Typical usage only needs three pieces:
///   * fra::GenerateMobilityData / fra::ReadCsv  — obtain partitions,
///   * fra::Federation::Create                   — assemble the federation,
///   * fra::ServiceProvider::Execute[Batch]      — answer FRA queries.

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "baseline/brute_force.h"
#include "baseline/centralized.h"
#include "cache/answer_cache.h"
#include "cache/provider_cache.h"
#include "cache/tile_cache.h"
#include "core/lsr_forest.h"
#include "data/csv.h"
#include "data/generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/workload.h"
#include "federation/admin.h"
#include "federation/federation.h"
#include "federation/privacy.h"
#include "federation/query.h"
#include "federation/service_provider.h"
#include "federation/silo.h"
#include "federation/silo_health.h"
#include "geo/circle.h"
#include "geo/point.h"
#include "geo/projection.h"
#include "geo/range.h"
#include "geo/rect.h"
#include "index/equi_depth_histogram.h"
#include "index/grid_index.h"
#include "index/rtree.h"
#include "net/message.h"
#include "net/network.h"
#include "net/tcp_network.h"
#include "obs/accuracy_auditor.h"
#include "obs/admin_server.h"
#include "util/random.h"
#include "util/result.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

#endif  // FRA_FRA_H_
