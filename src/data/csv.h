#ifndef FRA_DATA_CSV_H_
#define FRA_DATA_CSV_H_

#include <string>
#include <vector>

#include "agg/spatial_object.h"
#include "util/result.h"
#include "util/status.h"

namespace fra {

/// Writes partitions as CSV with header "silo,x,y,measure" — one row per
/// spatial object, `silo` being the partition index. Lets users round-trip
/// real datasets (e.g. public bike-share dumps projected to km) through
/// the federation.
Status WriteCsv(const std::string& path,
                const std::vector<ObjectSet>& partitions);

/// Reads partitions written by WriteCsv (or hand-made files with the same
/// header). Rows may appear in any order; partition indices must be
/// contiguous from 0.
Result<std::vector<ObjectSet>> ReadCsv(const std::string& path);

}  // namespace fra

#endif  // FRA_DATA_CSV_H_
