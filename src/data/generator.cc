#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/random.h"

namespace fra {
namespace {

struct Hotspot {
  Point center;
  double stddev;
  double weight;  // global popularity
};

// Discrete "carried passengers" distribution: mostly 0-2, tail to 4.
double SampleMeasure(Rng* rng) {
  static constexpr double kWeights[] = {0.35, 0.30, 0.20, 0.10, 0.05};
  double u = rng->NextDouble();
  for (int v = 0; v < 5; ++v) {
    if (u < kWeights[v]) return static_cast<double>(v);
    u -= kWeights[v];
  }
  return 4.0;
}

Point SampleLocation(const Rect& domain, const std::vector<Hotspot>& hotspots,
                     const std::vector<double>& cumulative_weights,
                     double background_fraction, Rng* rng) {
  if (rng->NextBernoulli(background_fraction) || hotspots.empty()) {
    return Point{rng->NextDouble(domain.min.x, domain.max.x),
                 rng->NextDouble(domain.min.y, domain.max.y)};
  }
  // Pick a hotspot by weight, then draw a truncated Gaussian around it.
  const double u = rng->NextDouble() * cumulative_weights.back();
  const size_t h = static_cast<size_t>(
      std::lower_bound(cumulative_weights.begin(), cumulative_weights.end(),
                       u) -
      cumulative_weights.begin());
  const Hotspot& hotspot = hotspots[std::min(h, hotspots.size() - 1)];
  for (int attempt = 0; attempt < 16; ++attempt) {
    const Point p{rng->NextGaussian(hotspot.center.x, hotspot.stddev),
                  rng->NextGaussian(hotspot.center.y, hotspot.stddev)};
    if (domain.Contains(p)) return p;
  }
  // Hotspot hugs the boundary and rejection keeps failing: clamp.
  return Point{std::clamp(hotspot.center.x, domain.min.x, domain.max.x),
               std::clamp(hotspot.center.y, domain.min.y, domain.max.y)};
}

}  // namespace

Result<FederationDataset> GenerateMobilityData(
    const MobilityDataOptions& options) {
  if (options.num_objects == 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  if (!options.domain.IsValid() || options.domain.Area() <= 0.0) {
    return Status::InvalidArgument("domain must have positive area");
  }
  if (options.company_proportions.empty()) {
    return Status::InvalidArgument("need at least one company");
  }
  for (double p : options.company_proportions) {
    if (p <= 0.0) {
      return Status::InvalidArgument("company proportions must be positive");
    }
  }
  if (options.background_fraction < 0.0 || options.background_fraction > 1.0) {
    return Status::InvalidArgument("background_fraction must be in [0, 1]");
  }

  Rng rng(options.seed);

  // Hotspots: centers biased toward the middle half of the domain.
  std::vector<Hotspot> hotspots(options.num_hotspots);
  const Point center = options.domain.Center();
  for (Hotspot& hotspot : hotspots) {
    hotspot.center.x = std::clamp(
        rng.NextGaussian(center.x, options.domain.Width() / 6.0),
        options.domain.min.x, options.domain.max.x);
    hotspot.center.y = std::clamp(
        rng.NextGaussian(center.y, options.domain.Height() / 6.0),
        options.domain.min.y, options.domain.max.y);
    hotspot.stddev = options.hotspot_stddev_km * rng.NextDouble(0.5, 2.0);
    hotspot.weight = rng.NextDouble(0.5, 2.0);
  }

  // Object counts per company, respecting proportions exactly up to
  // rounding (remainder goes to the last company).
  const double proportion_total =
      std::accumulate(options.company_proportions.begin(),
                      options.company_proportions.end(), 0.0);
  const size_t num_companies = options.company_proportions.size();
  std::vector<size_t> counts(num_companies);
  size_t assigned = 0;
  for (size_t c = 0; c + 1 < num_companies; ++c) {
    counts[c] = static_cast<size_t>(
        std::llround(static_cast<double>(options.num_objects) *
                     options.company_proportions[c] / proportion_total));
    assigned += counts[c];
  }
  counts[num_companies - 1] =
      options.num_objects > assigned ? options.num_objects - assigned : 0;

  FederationDataset dataset;
  dataset.domain = options.domain;
  dataset.company_partitions.resize(num_companies);

  for (size_t c = 0; c < num_companies; ++c) {
    Rng company_rng = rng.Fork(c + 1);

    // Company-specific hotspot weights: identical in the IID regime,
    // multiplicatively skewed per company otherwise.
    std::vector<double> cumulative(hotspots.size());
    double acc = 0.0;
    for (size_t h = 0; h < hotspots.size(); ++h) {
      double w = hotspots[h].weight;
      if (options.non_iid) {
        w *= std::exp(options.non_iid_skew *
                      company_rng.NextDouble(-1.0, 1.0));
      }
      acc += w;
      cumulative[h] = acc;
    }

    ObjectSet& partition = dataset.company_partitions[c];
    partition.reserve(counts[c]);
    for (size_t i = 0; i < counts[c]; ++i) {
      SpatialObject object;
      object.location =
          SampleLocation(options.domain, hotspots, cumulative,
                         options.background_fraction, &company_rng);
      object.measure = SampleMeasure(&company_rng);
      partition.push_back(object);
    }
  }
  return dataset;
}

Result<std::vector<ObjectSet>> SplitIntoSilos(
    const std::vector<ObjectSet>& company_partitions, size_t num_silos,
    uint64_t seed) {
  const size_t num_companies = company_partitions.size();
  if (num_companies == 0) {
    return Status::InvalidArgument("no company partitions");
  }
  if (num_silos == 0 || num_silos % num_companies != 0) {
    return Status::InvalidArgument(
        "num_silos must be a positive multiple of the company count (" +
        std::to_string(num_companies) + ")");
  }
  const size_t per_company = num_silos / num_companies;

  std::vector<ObjectSet> silos(num_silos);
  Rng rng(seed);
  for (size_t c = 0; c < num_companies; ++c) {
    ObjectSet shuffled = company_partitions[c];
    // Fisher-Yates: a uniformly random equal split preserves the
    // company's spatial distribution in every derived silo.
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextUint64(i)]);
    }
    const size_t n = shuffled.size();
    for (size_t s = 0; s < per_company; ++s) {
      const size_t begin = n * s / per_company;
      const size_t end = n * (s + 1) / per_company;
      ObjectSet& silo = silos[c * per_company + s];
      silo.assign(shuffled.begin() + begin, shuffled.begin() + end);
    }
  }
  return silos;
}

}  // namespace fra
