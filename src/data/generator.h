#ifndef FRA_DATA_GENERATOR_H_
#define FRA_DATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "agg/spatial_object.h"
#include "geo/rect.h"
#include "util/result.h"

namespace fra {

/// Parameters of the synthetic shared-mobility workload.
///
/// The paper evaluates on 2013 Beijing shared-mobility records held by
/// three companies in 1:1:2 proportion, spanning 39.5-42.0N / 115.5-117.2E
/// (~145 km x 276 km projected). That corpus is proprietary, so we
/// synthesise its relevant structure instead: city data is heavily
/// clustered (hotspots: stations, malls, CBD) over a thin uniform
/// background, and companies either share the spatial distribution (IID
/// across silos) or focus on different districts (Non-IID) — the two
/// regimes the paper's estimators distinguish. The measure attribute
/// mimics "carried passengers" (small non-negative integers).
struct MobilityDataOptions {
  size_t num_objects = 1'000'000;
  uint64_t seed = 201306;

  /// Projected city extent in km (defaults to the paper's Beijing bbox).
  Rect domain = Rect{{0.0, 0.0}, {145.0, 276.0}};

  /// Gaussian mixture hotspots. Centers concentrate in the middle half of
  /// the domain (the urban core); per-hotspot sigma is drawn in
  /// [0.5, 2.0] x hotspot_stddev_km.
  size_t num_hotspots = 24;
  double hotspot_stddev_km = 2.5;

  /// Fraction of objects drawn uniformly over the whole domain.
  double background_fraction = 0.15;

  /// Relative data volume per company (the paper's three companies hold
  /// 1:1:2). One partition is produced per entry.
  std::vector<double> company_proportions = {0.25, 0.25, 0.5};

  /// false: every company samples the same spatial mixture (IID across
  /// silos). true: each company re-weights the hotspot mixture with its
  /// own multiplicative skew (different strategic focus; Non-IID).
  bool non_iid = false;
  /// Strength of the per-company hotspot re-weighting (log-scale).
  double non_iid_skew = 1.5;
};

/// A generated federation corpus: one partition per company plus the
/// generating domain.
struct FederationDataset {
  std::vector<ObjectSet> company_partitions;
  Rect domain;

  size_t TotalObjects() const {
    size_t n = 0;
    for (const ObjectSet& p : company_partitions) n += p.size();
    return n;
  }
};

/// Generates the synthetic corpus. Deterministic given options.seed.
Result<FederationDataset> GenerateMobilityData(
    const MobilityDataOptions& options);

/// The paper's silo-count protocol (Sec. 8.1): each company's records are
/// split uniformly at random into num_silos / companies equal silos.
/// Fails unless num_silos is a positive multiple of the company count.
Result<std::vector<ObjectSet>> SplitIntoSilos(
    const std::vector<ObjectSet>& company_partitions, size_t num_silos,
    uint64_t seed);

}  // namespace fra

#endif  // FRA_DATA_GENERATOR_H_
