#include "data/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace fra {

Status WriteCsv(const std::string& path,
                const std::vector<ObjectSet>& partitions) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << std::setprecision(17);  // round-trip doubles exactly
  out << "silo,x,y,measure\n";
  for (size_t silo = 0; silo < partitions.size(); ++silo) {
    for (const SpatialObject& o : partitions[silo]) {
      out << silo << ',' << o.location.x << ',' << o.location.y << ','
          << o.measure << '\n';
    }
  }
  out.flush();
  if (!out) {
    return Status::IOError("write to " + path + " failed");
  }
  return Status::OK();
}

Result<std::vector<ObjectSet>> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path + " for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError(path + " is empty");
  }
  if (line.rfind("silo,x,y,measure", 0) != 0) {
    return Status::InvalidArgument(path +
                                   ": expected header 'silo,x,y,measure'");
  }

  std::vector<ObjectSet> partitions;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    unsigned long silo = 0;
    SpatialObject object;
    char trailing = 0;
    const int fields =
        std::sscanf(line.c_str(), "%lu,%lf,%lf,%lf%c", &silo,
                    &object.location.x, &object.location.y, &object.measure,
                    &trailing);
    if (fields != 4) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": malformed row '" + line + "'");
    }
    if (silo >= partitions.size()) partitions.resize(silo + 1);
    partitions[silo].push_back(object);
  }
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].empty()) {
      return Status::InvalidArgument(
          path + ": silo indices must be contiguous; silo " +
          std::to_string(i) + " has no rows");
    }
  }
  return partitions;
}

}  // namespace fra
