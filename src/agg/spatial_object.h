#ifndef FRA_AGG_SPATIAL_OBJECT_H_
#define FRA_AGG_SPATIAL_OBJECT_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace fra {

/// A spatial object o = (l_o, a_o): a location plus a scalar measure
/// attribute (paper Def. 1). The measure is application specific — e.g.
/// carried passengers for the paper's shared-mobility records.
struct SpatialObject {
  Point location;
  double measure = 0.0;

  friend bool operator==(const SpatialObject& a, const SpatialObject& b) {
    return a.location == b.location && a.measure == b.measure;
  }
};

/// A silo's horizontal partition P_{s_i} of the federation's objects.
using ObjectSet = std::vector<SpatialObject>;

}  // namespace fra

#endif  // FRA_AGG_SPATIAL_OBJECT_H_
