#include "agg/aggregate.h"

#include <cmath>

namespace fra {

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kSumSqr:
      return "SUM_SQR";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kStdev:
      return "STDEV";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
  }
  return "UNKNOWN";
}

bool IsEstimable(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kSumSqr:
    case AggregateKind::kAvg:
    case AggregateKind::kStdev:
      return true;
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return false;
  }
  return false;
}

Status AggregateSummary::Finalize(AggregateKind kind, double* out) const {
  switch (kind) {
    case AggregateKind::kCount:
      *out = static_cast<double>(count);
      return Status::OK();
    case AggregateKind::kSum:
      *out = sum;
      return Status::OK();
    case AggregateKind::kSumSqr:
      *out = sum_sqr;
      return Status::OK();
    case AggregateKind::kAvg:
      *out = count == 0 ? 0.0 : sum / static_cast<double>(count);
      return Status::OK();
    case AggregateKind::kStdev: {
      if (count == 0) {
        *out = 0.0;
        return Status::OK();
      }
      const double n = static_cast<double>(count);
      const double mean = sum / n;
      // Population standard deviation, per the paper's Sec. 7 formula
      // STDEV = sqrt(SUM_SQR / |P| - AVG^2); clamp to guard rounding.
      *out = std::sqrt(std::max(0.0, sum_sqr / n - mean * mean));
      return Status::OK();
    }
    case AggregateKind::kMin:
      // Infinite sentinels mean the extremum was never tracked (empty
      // set) or was deliberately withheld (DP perturbation).
      if (count == 0 || !std::isfinite(min)) {
        return Status::InvalidArgument("MIN unavailable for this summary");
      }
      *out = min;
      return Status::OK();
    case AggregateKind::kMax:
      if (count == 0 || !std::isfinite(max)) {
        return Status::InvalidArgument("MAX unavailable for this summary");
      }
      *out = max;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

void AggregateSummary::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(count);
  writer->WriteDouble(sum);
  writer->WriteDouble(sum_sqr);
  writer->WriteDouble(min);
  writer->WriteDouble(max);
}

Status AggregateSummary::Deserialize(BinaryReader* reader,
                                     AggregateSummary* out) {
  FRA_RETURN_NOT_OK(reader->ReadU64(&out->count));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&out->sum));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&out->sum_sqr));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&out->min));
  FRA_RETURN_NOT_OK(reader->ReadDouble(&out->max));
  return Status::OK();
}

}  // namespace fra
