#ifndef FRA_AGG_AGGREGATE_H_
#define FRA_AGG_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "agg/spatial_object.h"
#include "util/serialize.h"
#include "util/status.h"

namespace fra {

/// Aggregation functions supported by FRA queries. COUNT and SUM are the
/// paper's primary targets (Sec. 2); AVG / STDEV / SUM_SQR are the Sec. 7
/// extensions; MIN / MAX are supported by exact queries only (extrema are
/// not estimable by rescaled sampling).
enum class AggregateKind : uint8_t {
  kCount = 0,
  kSum = 1,
  kSumSqr = 2,
  kAvg = 3,
  kStdev = 4,
  kMin = 5,
  kMax = 6,
};

/// Stable display name, e.g. "COUNT".
const char* AggregateKindToString(AggregateKind kind);

/// True for aggregates whose value can be estimated by sampling + linear
/// rescaling (COUNT, SUM, SUM_SQR and the derived AVG, STDEV).
bool IsEstimable(AggregateKind kind);

/// The decomposable sketch of a set of measures: every supported aggregate
/// is derivable from it, and two summaries merge losslessly. Grid cells,
/// R-tree nodes, and network responses all carry one of these.
struct AggregateSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double sum_sqr = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Folds one measure into the summary.
  void Add(double measure) {
    ++count;
    sum += measure;
    sum_sqr += measure * measure;
    if (measure < min) min = measure;
    if (measure > max) max = measure;
  }

  void Add(const SpatialObject& o) { Add(o.measure); }

  /// Combines with another summary (set union of disjoint inputs).
  void Merge(const AggregateSummary& other) {
    count += other.count;
    sum += other.sum;
    sum_sqr += other.sum_sqr;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  bool empty() const { return count == 0; }

  /// Rescales the linear components by `factor` (level-sampling estimate:
  /// counts, sums and sums of squares scale; extrema are left untouched
  /// and must not be read from a scaled summary).
  AggregateSummary Scaled(double factor) const {
    AggregateSummary out = *this;
    out.count = static_cast<uint64_t>(static_cast<double>(count) * factor + 0.5);
    out.sum = sum * factor;
    out.sum_sqr = sum_sqr * factor;
    return out;
  }

  /// Final value of `kind` over the summarised set. Empty sets yield 0
  /// for COUNT/SUM/SUM_SQR/AVG/STDEV and an error for MIN/MAX.
  Status Finalize(AggregateKind kind, double* out) const;

  /// Serialised wire size in bytes (fixed).
  static constexpr size_t kWireSize = sizeof(uint64_t) + 4 * sizeof(double);

  void Serialize(BinaryWriter* writer) const;
  static Status Deserialize(BinaryReader* reader, AggregateSummary* out);

  friend bool operator==(const AggregateSummary& a, const AggregateSummary& b) {
    return a.count == b.count && a.sum == b.sum && a.sum_sqr == b.sum_sqr &&
           a.min == b.min && a.max == b.max;
  }
};

/// Brute-force reference: summary of all objects of `objects` lying inside
/// the given predicate. Used as ground truth by tests and the EXACT
/// baseline's correctness checks.
template <typename RangePredicate>
AggregateSummary SummarizeIf(const ObjectSet& objects,
                             const RangePredicate& contains) {
  AggregateSummary summary;
  for (const SpatialObject& o : objects) {
    if (contains(o.location)) summary.Add(o);
  }
  return summary;
}

}  // namespace fra

#endif  // FRA_AGG_AGGREGATE_H_
