#include "cache/tile_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace fra {
namespace {

const std::vector<double>& CoverageBuckets() {
  static const std::vector<double> kBuckets = {0.1, 0.2, 0.3, 0.4, 0.5,
                                               0.6, 0.7, 0.8, 0.9, 1.0};
  return kBuckets;
}

}  // namespace

TileCache::TileCache(size_t rows, size_t cols, const Options& options)
    : options_(options),
      rows_(rows),
      cols_(cols),
      tile_cols_((cols + options.tile_size - 1) / options.tile_size),
      hits_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_hits_total", {{"layer", "tile"}})),
      misses_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_misses_total", {{"layer", "tile"}})),
      evictions_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_evictions_total", {{"layer", "tile"}})),
      invalidations_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_invalidations_total", {{"layer", "tile"}})),
      coverage_histogram_(&MetricsRegistry::Default().GetHistogram(
          "fra_cache_tile_coverage", {}, CoverageBuckets())) {
  FRA_CHECK(options_.tile_size > 0) << "tile_size must be >= 1";
}

size_t TileCache::TileIdOf(size_t cell_id) const {
  const size_t row = cell_id / cols_;
  const size_t col = cell_id % cols_;
  return TileRowOf(row) * tile_cols_ + TileColOf(col);
}

void TileCache::FillTileLocked(size_t tile_id, Tile* tile,
                               const CellSource& source) {
  const size_t t = options_.tile_size;
  const size_t base_row = (tile_id / tile_cols_) * t;
  const size_t base_col = (tile_id % tile_cols_) * t;
  tile->cells.assign(t * t, AggregateSummary());
  for (size_t r = 0; r < t && base_row + r < rows_; ++r) {
    for (size_t c = 0; c < t && base_col + c < cols_; ++c) {
      tile->cells[r * t + c] = source((base_row + r) * cols_ + base_col + c);
    }
  }
  // Tile-local 2-D prefix sums over the linear components: entry (r, c)
  // aggregates the local cell block [0, r) x [0, c), same convention as
  // GridIndex's cumulative arrays.
  const size_t stride = t + 1;
  tile->prefix_count.assign(stride * stride, 0.0);
  tile->prefix_sum.assign(stride * stride, 0.0);
  tile->prefix_sum_sqr.assign(stride * stride, 0.0);
  for (size_t r = 0; r < t; ++r) {
    for (size_t c = 0; c < t; ++c) {
      const AggregateSummary& cell = tile->cells[r * t + c];
      const size_t at = (r + 1) * stride + (c + 1);
      tile->prefix_count[at] = static_cast<double>(cell.count) +
                               tile->prefix_count[at - 1] +
                               tile->prefix_count[at - stride] -
                               tile->prefix_count[at - stride - 1];
      tile->prefix_sum[at] = cell.sum + tile->prefix_sum[at - 1] +
                             tile->prefix_sum[at - stride] -
                             tile->prefix_sum[at - stride - 1];
      tile->prefix_sum_sqr[at] = cell.sum_sqr + tile->prefix_sum_sqr[at - 1] +
                                 tile->prefix_sum_sqr[at - stride] -
                                 tile->prefix_sum_sqr[at - stride - 1];
    }
  }
  tile->valid = true;
}

void TileCache::AddBlockFromTileLocked(const Tile& tile, size_t tile_id,
                                       size_t row0, size_t col0, size_t row1,
                                       size_t col1,
                                       AggregateSummary* out) const {
  const size_t t = options_.tile_size;
  const size_t base_row = (tile_id / tile_cols_) * t;
  const size_t base_col = (tile_id % tile_cols_) * t;
  // Clip the global block to this tile's extent, in local coordinates.
  const size_t lr0 = row0 > base_row ? row0 - base_row : 0;
  const size_t lc0 = col0 > base_col ? col0 - base_col : 0;
  const size_t lr1 = std::min(row1 - base_row, t - 1);
  const size_t lc1 = std::min(col1 - base_col, t - 1);
  const size_t stride = t + 1;
  const auto block = [&](const std::vector<double>& prefix) {
    return prefix[(lr1 + 1) * stride + (lc1 + 1)] -
           prefix[lr0 * stride + (lc1 + 1)] -
           prefix[(lr1 + 1) * stride + lc0] + prefix[lr0 * stride + lc0];
  };
  out->count += static_cast<uint64_t>(block(tile.prefix_count) + 0.5);
  out->sum += block(tile.prefix_sum);
  out->sum_sqr += block(tile.prefix_sum_sqr);
}

TileCache::Plan TileCache::Assemble(bool has_block, size_t row0, size_t col0,
                                    size_t row1, size_t col1,
                                    const std::vector<uint32_t>& boundary_cells,
                                    const CellSource& source) {
  Plan plan;
  // The set of tiles this query needs: those covering the contained
  // block plus those holding each boundary cell.
  std::vector<size_t> required;
  if (has_block) {
    for (size_t tr = TileRowOf(row0); tr <= TileRowOf(row1); ++tr) {
      for (size_t tc = TileColOf(col0); tc <= TileColOf(col1); ++tc) {
        required.push_back(tr * tile_cols_ + tc);
      }
    }
  }
  for (uint32_t cell : boundary_cells) required.push_back(TileIdOf(cell));
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()),
                 required.end());
  plan.tiles_required = required.size();

  std::lock_guard<std::mutex> lock(mu_);
  size_t valid_before = 0;
  for (size_t tile_id : required) {
    const auto it = tiles_.find(tile_id);
    if (it != tiles_.end() && it->second.valid) ++valid_before;
  }
  plan.coverage = required.empty()
                      ? 1.0
                      : static_cast<double>(valid_before) /
                            static_cast<double>(required.size());
  coverage_histogram_->Observe(plan.coverage);
  plan.servable = plan.coverage >= options_.min_coverage;

  // Fill what is missing or stale (warming happens even when the query
  // itself falls through to the normal path) and refresh recency.
  for (size_t tile_id : required) {
    auto it = tiles_.find(tile_id);
    if (it == tiles_.end()) {
      it = tiles_.emplace(tile_id, Tile()).first;
      lru_.push_front(tile_id);
      it->second.lru_it = lru_.begin();
    } else {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
    Tile& tile = it->second;
    if (!tile.valid) {
      FillTileLocked(tile_id, &tile, source);
      ++valid_count_;
      ++plan.tiles_filled;
      ++counters_.misses;
      misses_total_->Increment();
    } else {
      ++counters_.hits;
      hits_total_->Increment();
    }
  }
  // LRU eviction; the required tiles sit at the front, so the tail is
  // always evictable unless the capacity is smaller than one query's
  // working set (then nothing more can be dropped).
  while (tiles_.size() > options_.max_tiles &&
         lru_.size() > required.size()) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    const auto it = tiles_.find(victim);
    if (it->second.valid) --valid_count_;
    tiles_.erase(it);
    ++counters_.evictions;
    evictions_total_->Increment();
  }

  if (has_block) {
    for (size_t tr = TileRowOf(row0); tr <= TileRowOf(row1); ++tr) {
      for (size_t tc = TileColOf(col0); tc <= TileColOf(col1); ++tc) {
        const size_t tile_id = tr * tile_cols_ + tc;
        AddBlockFromTileLocked(tiles_.at(tile_id), tile_id, row0, col0, row1,
                               col1, &plan.interior);
      }
    }
  }
  plan.boundary.reserve(boundary_cells.size());
  const size_t t = options_.tile_size;
  for (uint32_t cell : boundary_cells) {
    const Tile& tile = tiles_.at(TileIdOf(cell));
    const size_t row = cell / cols_;
    const size_t col = cell % cols_;
    plan.boundary.push_back(
        tile.cells[(row % t) * t + (col % t)]);
  }
  return plan;
}

size_t TileCache::Invalidate(const std::vector<size_t>& cells) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t invalidated = 0;
  for (size_t cell : cells) {
    const auto it = tiles_.find(TileIdOf(cell));
    if (it == tiles_.end() || !it->second.valid) continue;
    it->second.valid = false;
    --valid_count_;
    ++invalidated;
  }
  counters_.invalidations += invalidated;
  invalidations_total_->Increment(invalidated);
  return invalidated;
}

TileCache::Counters TileCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t TileCache::cached_tiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tiles_.size();
}

size_t TileCache::valid_tiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return valid_count_;
}

}  // namespace fra
