#include "cache/provider_cache.h"

#include <cmath>

#include "util/serialize.h"

namespace fra {

ProviderCache::ProviderCache(size_t rows, size_t cols, const Options& options)
    : options_(options),
      exact_(options.exact),
      tiles_(rows, cols, options.tiles),
      exact_invalidations_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_invalidations_total", {{"layer", "exact"}})),
      epoch_gauge_(
          &MetricsRegistry::Default().GetGauge("fra_provider_data_epoch")) {
  epoch_gauge_->Set(0.0);
}

void ProviderCache::OnDataChanged(const std::vector<size_t>& changed_cells) {
  exact_invalidations_total_->Increment(exact_.size());
  const uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  epoch_gauge_->Set(static_cast<double>(next));
  tiles_.Invalidate(changed_cells);
}

std::string ProviderCache::MakeKey(const QueryRange& range, uint8_t kind,
                                   uint8_t algorithm, double epsilon,
                                   double delta) const {
  const auto quantize = [this](double v) {
    if (options_.range_quantum <= 0.0) return v;
    return std::round(v / options_.range_quantum) * options_.range_quantum;
  };
  BinaryWriter writer;
  if (range.is_circle()) {
    writer.WriteU8(1);
    writer.WriteDouble(quantize(range.circle().center.x));
    writer.WriteDouble(quantize(range.circle().center.y));
    writer.WriteDouble(quantize(range.circle().radius));
  } else {
    writer.WriteU8(2);
    writer.WriteDouble(quantize(range.rect().min.x));
    writer.WriteDouble(quantize(range.rect().min.y));
    writer.WriteDouble(quantize(range.rect().max.x));
    writer.WriteDouble(quantize(range.rect().max.y));
  }
  writer.WriteU8(kind);
  writer.WriteU8(algorithm);
  writer.WriteDouble(epsilon);
  writer.WriteDouble(delta);
  writer.WriteU64(epoch());
  const std::vector<uint8_t> bytes = writer.Release();
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace fra
