#ifndef FRA_CACHE_ANSWER_CACHE_H_
#define FRA_CACHE_ANSWER_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/metrics.h"

namespace fra {

/// Exact-answer layer of the provider-side cache (docs/caching.md): an
/// LRU map from a canonical query key to the finalised double answer.
///
/// The key (built by ProviderCache::MakeKey) encodes the normalized
/// range, the aggregate function, the algorithm, (epsilon, delta) and
/// the provider's data epoch, so a hit returns the answer the provider
/// would have produced — bit-identical, EXACT included — and entries
/// written before a dynamic update become unreachable the moment the
/// epoch bumps (they age out through normal LRU pressure rather than an
/// explicit flush).
///
/// Thread safe; hits and misses feed
/// `fra_cache_{hits,misses,evictions}_total{layer="exact"}`.
class AnswerCache {
 public:
  struct Options {
    /// Maximum number of cached answers; the least recently used entry is
    /// evicted beyond this.
    size_t capacity = 1024;
  };

  explicit AnswerCache(const Options& options);

  /// Returns the cached answer and refreshes its recency, or nullopt.
  std::optional<double> Lookup(const std::string& key);

  /// Inserts (or refreshes) one answer, evicting the LRU tail if needed.
  void Insert(const std::string& key, double value);

  /// Entries currently held — stale-epoch entries included until evicted.
  size_t size() const;

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Counters counters() const;

  const Options& options() const { return options_; }

 private:
  const Options options_;
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<std::pair<std::string, double>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, double>>::iterator>
      entries_;
  Counters counters_;
  Counter* hits_total_;
  Counter* misses_total_;
  Counter* evictions_total_;
};

}  // namespace fra

#endif  // FRA_CACHE_ANSWER_CACHE_H_
