#include "cache/answer_cache.h"

namespace fra {

AnswerCache::AnswerCache(const Options& options)
    : options_(options),
      hits_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_hits_total", {{"layer", "exact"}})),
      misses_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_misses_total", {{"layer", "exact"}})),
      evictions_total_(&MetricsRegistry::Default().GetCounter(
          "fra_cache_evictions_total", {{"layer", "exact"}})) {}

std::optional<double> AnswerCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    misses_total_->Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  hits_total_->Increment();
  return it->second->second;
}

void AnswerCache::Insert(const std::string& key, double value) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, value);
  entries_.emplace(key, lru_.begin());
  while (entries_.size() > options_.capacity) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++counters_.evictions;
    evictions_total_->Increment();
  }
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

AnswerCache::Counters AnswerCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace fra
