#ifndef FRA_CACHE_TILE_CACHE_H_
#define FRA_CACHE_TILE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "agg/aggregate.h"
#include "util/metrics.h"

namespace fra {

/// Tile layer of the provider-side cache (docs/caching.md): grid-aligned
/// partial aggregates, bookkept in square tiles of `tile_size` x
/// `tile_size` grid cells.
///
/// Each cached tile snapshots the federation-wide per-cell summaries (the
/// provider's merged grid g_0 at fill time) together with a tile-local
/// 2-D prefix-sum array, so the fully contained cell block of a fresh
/// range is assembled in O(tiles) constant-time block reads — no silo is
/// contacted for anything a valid tile already covers; only the boundary
/// cells of the range still need refinement (see
/// ServiceProvider::Options::CacheOptions::BoundaryMode).
///
/// Dynamic updates invalidate affected tiles only (Invalidate), never the
/// whole layer; an invalid tile is refilled from the post-sync grid on
/// its next use, which is what makes cached answers catch up with
/// ingested data instead of going permanently stale.
///
/// Thread safe. Feeds `fra_cache_{hits,misses,evictions,
/// invalidations}_total{layer="tile"}` and the `fra_cache_tile_coverage`
/// histogram (fraction of the tiles a query needed that were already
/// cached and valid).
class TileCache {
 public:
  struct Options {
    /// Grid cells per tile side.
    size_t tile_size = 4;
    /// Maximum cached tiles; least recently used tiles evict beyond this.
    size_t max_tiles = 4096;
    /// Serve a query from tiles only when at least this fraction of the
    /// tiles it needs was already cached and valid; colder queries fall
    /// through to the normal path (and warm the tiles they touched).
    double min_coverage = 1.0;
  };

  /// Supplies the current summary of one grid cell when a tile is filled.
  using CellSource = std::function<AggregateSummary(size_t cell_id)>;

  TileCache(size_t rows, size_t cols, const Options& options);

  struct Plan {
    /// Coverage met — the caller may serve from `interior` + `boundary`.
    bool servable = false;
    /// Valid fraction of the required tiles before this call filled any.
    double coverage = 0.0;
    /// Prefix-sum aggregate of the contained-cell block (count/sum/
    /// sum_sqr only; extrema are not tracked by tiles).
    AggregateSummary interior;
    /// Cached g_0 summary per requested boundary cell, same order.
    std::vector<AggregateSummary> boundary;
    size_t tiles_required = 0;
    size_t tiles_filled = 0;
  };

  /// Assembles a serving plan for a range classified into the contained
  /// block [row0..row1] x [col0..col1] (`has_block` false for an empty
  /// block) plus `boundary_cells`. Missing or invalidated tiles are
  /// (re)filled from `source`; coverage is judged before the fill.
  Plan Assemble(bool has_block, size_t row0, size_t col0, size_t row1,
                size_t col1, const std::vector<uint32_t>& boundary_cells,
                const CellSource& source);

  /// Dynamic-update notification: marks the tiles containing `cells`
  /// invalid. Returns the number of valid tiles invalidated.
  size_t Invalidate(const std::vector<size_t>& cells);

  struct Counters {
    uint64_t hits = 0;           // required tiles found valid
    uint64_t misses = 0;         // required tiles (re)filled
    uint64_t evictions = 0;      // tiles dropped by LRU pressure
    uint64_t invalidations = 0;  // tiles flipped invalid by updates
  };
  Counters counters() const;
  size_t cached_tiles() const;
  size_t valid_tiles() const;

  const Options& options() const { return options_; }

 private:
  struct Tile {
    bool valid = false;
    // Row-major tile_size x tile_size cell summaries (cells past the grid
    // edge stay empty) and the (tile_size+1)^2 prefix arrays over their
    // linear components.
    std::vector<AggregateSummary> cells;
    std::vector<double> prefix_count;
    std::vector<double> prefix_sum;
    std::vector<double> prefix_sum_sqr;
    std::list<size_t>::iterator lru_it;
  };

  size_t TileRowOf(size_t row) const { return row / options_.tile_size; }
  size_t TileColOf(size_t col) const { return col / options_.tile_size; }
  size_t TileIdOf(size_t cell_id) const;
  void FillTileLocked(size_t tile_id, Tile* tile, const CellSource& source);
  // Aggregate of the cell block clipped to one tile, O(1) via the tile's
  // prefix sums.
  void AddBlockFromTileLocked(const Tile& tile, size_t tile_id, size_t row0,
                              size_t col0, size_t row1, size_t col1,
                              AggregateSummary* out) const;

  const Options options_;
  const size_t rows_;
  const size_t cols_;
  const size_t tile_cols_;  // tiles per tile row

  mutable std::mutex mu_;
  std::unordered_map<size_t, Tile> tiles_;
  // Front = most recently used tile id.
  std::list<size_t> lru_;
  size_t valid_count_ = 0;
  Counters counters_;
  Counter* hits_total_;
  Counter* misses_total_;
  Counter* evictions_total_;
  Counter* invalidations_total_;
  Histogram* coverage_histogram_;
};

}  // namespace fra

#endif  // FRA_CACHE_TILE_CACHE_H_
