#ifndef FRA_CACHE_PROVIDER_CACHE_H_
#define FRA_CACHE_PROVIDER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/tile_cache.h"
#include "geo/range.h"
#include "util/metrics.h"

namespace fra {

/// The provider-side semantic answer cache: the exact-answer LRU and the
/// tile layer behind one facade, plus the data epoch that ties both to
/// the dynamic-update path (docs/caching.md).
///
/// The epoch starts at 0 and bumps once per SyncGrids round that applied
/// any silo delta. It is part of every exact-layer key, so answers cached
/// before an update become unreachable the moment the provider learns of
/// it; the tile layer is told which cells changed and invalidates only
/// the tiles covering them. `fra_provider_data_epoch` exports the current
/// value.
class ProviderCache {
 public:
  struct Options {
    AnswerCache::Options exact;
    TileCache::Options tiles;
    /// Disabling the tile layer leaves the exact-answer LRU only.
    bool tile_layer = true;
    /// Coordinates are snapped to multiples of this before keying, so
    /// near-identical ranges share an exact-layer entry; 0 keys on the
    /// exact coordinate bits (no two distinct ranges ever collide).
    double range_quantum = 0.0;
  };

  /// `rows` x `cols` is the federation's grid geometry (the tile layer
  /// mirrors it).
  ProviderCache(size_t rows, size_t cols, const Options& options);

  /// Monotonic data epoch; part of every exact-layer key.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Dynamic-update notification from SyncGrids: bumps the epoch and
  /// invalidates the tiles covering `changed_cells`. The exact layer's
  /// pre-update entries are counted invalidated here (they can no longer
  /// be addressed) but evict lazily through LRU pressure.
  void OnDataChanged(const std::vector<size_t>& changed_cells);

  /// Canonical exact-layer key: the (quantized) range, the aggregate
  /// function, the algorithm, (epsilon, delta) and the current epoch.
  std::string MakeKey(const QueryRange& range, uint8_t kind,
                      uint8_t algorithm, double epsilon, double delta) const;

  AnswerCache& exact() { return exact_; }
  TileCache& tiles() { return tiles_; }
  bool tile_layer_enabled() const { return options_.tile_layer; }

  const Options& options() const { return options_; }

 private:
  const Options options_;
  AnswerCache exact_;
  TileCache tiles_;
  std::atomic<uint64_t> epoch_{0};
  Counter* exact_invalidations_total_;
  Gauge* epoch_gauge_;
};

}  // namespace fra

#endif  // FRA_CACHE_PROVIDER_CACHE_H_
