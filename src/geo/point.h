#ifndef FRA_GEO_POINT_H_
#define FRA_GEO_POINT_H_

#include <cmath>

namespace fra {

/// A location in the 2-D Euclidean plane. Throughout the library
/// coordinates are kilometres in a locally projected plane (see
/// projection.h for mapping GPS coordinates into it).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// Squared Euclidean distance — use when only comparisons are needed.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace fra

#endif  // FRA_GEO_POINT_H_
