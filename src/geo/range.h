#ifndef FRA_GEO_RANGE_H_
#define FRA_GEO_RANGE_H_

#include <variant>

#include "geo/circle.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace fra {

/// The spatial range of an FRA query: either circular or rectangular
/// (paper Def. 2). Provides the geometric predicates every index and
/// estimator needs, dispatching on the held shape.
class QueryRange {
 public:
  QueryRange() : shape_(Rect::Empty()) {}
  explicit QueryRange(const Circle& circle) : shape_(circle) {}
  explicit QueryRange(const Rect& rect) : shape_(rect) {}

  static QueryRange MakeCircle(Point center, double radius) {
    return QueryRange(Circle{center, radius});
  }
  static QueryRange MakeRect(Point min, Point max) {
    return QueryRange(Rect{min, max});
  }

  bool is_circle() const { return std::holds_alternative<Circle>(shape_); }
  bool is_rect() const { return std::holds_alternative<Rect>(shape_); }

  const Circle& circle() const { return std::get<Circle>(shape_); }
  const Rect& rect() const { return std::get<Rect>(shape_); }

  /// True when `p` is within the range, boundary inclusive.
  bool Contains(const Point& p) const {
    if (is_circle()) return circle().Contains(p);
    return rect().Contains(p);
  }

  /// True when the range and `r` share at least one point. Used for
  /// "grid cell intersects R" tests and R-tree descent.
  bool Intersects(const Rect& r) const {
    if (is_circle()) return circle().Intersects(r);
    return rect().Intersects(r);
  }

  /// True when `r` lies entirely within the range. Enables O(1)
  /// contribution of fully covered R-tree subtrees / grid cells.
  bool Contains(const Rect& r) const {
    if (is_circle()) return circle().Contains(r);
    return rect().Contains(r);
  }

  /// Tightest axis-aligned rectangle covering the range.
  Rect BoundingBox() const {
    if (is_circle()) return circle().BoundingBox();
    return rect();
  }

  /// Area of the range.
  double Area() const;

  /// Area of the intersection between this range and rectangle `r`,
  /// computed exactly (circular segments included for circles). Used by
  /// the OPTA histogram baseline's fractional-cell estimation.
  double IntersectionArea(const Rect& r) const;

 private:
  std::variant<Circle, Rect> shape_;
};

/// Exact area of the intersection of `circle` with rectangle `rect`.
double CircleRectIntersectionArea(const Circle& circle, const Rect& rect);

}  // namespace fra

#endif  // FRA_GEO_RANGE_H_
