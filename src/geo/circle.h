#ifndef FRA_GEO_CIRCLE_H_
#define FRA_GEO_CIRCLE_H_

#include "geo/point.h"
#include "geo/rect.h"

namespace fra {

/// A circular query range (center + radius), boundary inclusive.
struct Circle {
  Point center;
  double radius = 0.0;

  bool Contains(const Point& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }

  /// True when the circle and rectangle share at least one point.
  bool Intersects(const Rect& rect) const {
    return rect.IsValid() && rect.SquaredDistanceTo(center) <= radius * radius;
  }

  /// True when the whole rectangle lies inside the circle (all four
  /// corners inside suffices for a convex region).
  bool Contains(const Rect& rect) const {
    if (!rect.IsValid()) return false;
    const double r2 = radius * radius;
    return SquaredDistance(center, rect.min) <= r2 &&
           SquaredDistance(center, rect.max) <= r2 &&
           SquaredDistance(center, Point{rect.min.x, rect.max.y}) <= r2 &&
           SquaredDistance(center, Point{rect.max.x, rect.min.y}) <= r2;
  }

  /// The tightest axis-aligned rectangle covering the circle.
  Rect BoundingBox() const {
    return Rect{{center.x - radius, center.y - radius},
                {center.x + radius, center.y + radius}};
  }

  friend bool operator==(const Circle& a, const Circle& b) {
    return a.center == b.center && a.radius == b.radius;
  }
};

}  // namespace fra

#endif  // FRA_GEO_CIRCLE_H_
