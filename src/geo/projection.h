#ifndef FRA_GEO_PROJECTION_H_
#define FRA_GEO_PROJECTION_H_

#include "geo/point.h"

namespace fra {

/// Equirectangular projection around a reference latitude/longitude.
///
/// Maps GPS coordinates (degrees) to the library's kilometre plane. Over a
/// metropolitan extent (the paper's Beijing data spans ~2.5 degrees of
/// latitude) the distortion of this projection is well under 1%, which is
/// negligible next to the paper's 2-10% approximation errors.
class Projection {
 public:
  /// `ref_lat_deg` / `ref_lon_deg` become the plane origin (0, 0).
  Projection(double ref_lat_deg, double ref_lon_deg);

  /// (lat, lon) in degrees -> kilometre plane.
  Point Forward(double lat_deg, double lon_deg) const;

  /// Kilometre plane -> (lat, lon) in degrees.
  void Inverse(const Point& p, double* lat_deg, double* lon_deg) const;

  double ref_lat_deg() const { return ref_lat_deg_; }
  double ref_lon_deg() const { return ref_lon_deg_; }

 private:
  double ref_lat_deg_;
  double ref_lon_deg_;
  double km_per_deg_lat_;
  double km_per_deg_lon_;
};

}  // namespace fra

#endif  // FRA_GEO_PROJECTION_H_
