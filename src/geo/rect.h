#ifndef FRA_GEO_RECT_H_
#define FRA_GEO_RECT_H_

#include <algorithm>
#include <limits>

#include "geo/point.h"

namespace fra {

/// An axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
/// All containment predicates treat boundaries as inclusive, matching the
/// paper's "within R" semantics.
struct Rect {
  Point min;
  Point max;

  /// An inverted rectangle that is empty and absorbs unions; use as the
  /// identity when accumulating bounding boxes.
  static Rect Empty() {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return Rect{{kInf, kInf}, {-kInf, -kInf}};
  }

  bool IsValid() const { return min.x <= max.x && min.y <= max.y; }

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return IsValid() ? Width() * Height() : 0.0; }

  Point Center() const {
    return Point{(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }

  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  bool Contains(const Rect& other) const {
    return other.IsValid() && other.min.x >= min.x && other.max.x <= max.x &&
           other.min.y >= min.y && other.max.y <= max.y;
  }

  bool Intersects(const Rect& other) const {
    return IsValid() && other.IsValid() && min.x <= other.max.x &&
           other.min.x <= max.x && min.y <= other.max.y && other.min.y <= max.y;
  }

  /// Grows this rectangle to cover `p`.
  void ExpandToInclude(const Point& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// Grows this rectangle to cover `other`.
  void ExpandToInclude(const Rect& other) {
    min.x = std::min(min.x, other.min.x);
    min.y = std::min(min.y, other.min.y);
    max.x = std::max(max.x, other.max.x);
    max.y = std::max(max.y, other.max.y);
  }

  /// Squared distance from `p` to the closest point of this rectangle
  /// (zero when `p` is inside). Core primitive for circle-rect tests and
  /// R-tree pruning.
  double SquaredDistanceTo(const Point& p) const {
    const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return dx * dx + dy * dy;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min == b.min && a.max == b.max;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }
};

/// Intersection of two rectangles; the result is !IsValid() when disjoint.
inline Rect Intersection(const Rect& a, const Rect& b) {
  return Rect{{std::max(a.min.x, b.min.x), std::max(a.min.y, b.min.y)},
              {std::min(a.max.x, b.max.x), std::min(a.max.y, b.max.y)}};
}

}  // namespace fra

#endif  // FRA_GEO_RECT_H_
