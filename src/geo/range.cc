#include "geo/range.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fra {
namespace {

// Antiderivative of sqrt(r^2 - x^2): the area under the upper half-circle.
double HalfCircleIntegral(double r, double x) {
  const double cx = std::clamp(x, -r, r);
  const double root = std::sqrt(std::max(0.0, r * r - cx * cx));
  return 0.5 * (cx * root + r * r * std::asin(std::clamp(cx / r, -1.0, 1.0)));
}

}  // namespace

double CircleRectIntersectionArea(const Circle& circle, const Rect& rect) {
  const double r = circle.radius;
  if (r <= 0.0 || !rect.IsValid()) return 0.0;

  // Translate so the circle is centered at the origin.
  const double x0 = rect.min.x - circle.center.x;
  const double x1 = rect.max.x - circle.center.x;
  const double y0 = rect.min.y - circle.center.y;
  const double y1 = rect.max.y - circle.center.y;

  const double xa = std::max(x0, -r);
  const double xb = std::min(x1, r);
  if (xa >= xb || y0 >= r || y1 <= -r) return 0.0;

  // Within [xa, xb] the vertical slice of the intersection is
  //   [max(y0, -c(x)), min(y1, c(x))] with c(x) = sqrt(r^2 - x^2).
  // The active branch of min/max only changes where c(x) crosses y0 / y1,
  // so split at those abscissae and integrate each piece in closed form.
  std::vector<double> cuts = {xa, xb};
  for (double y : {y0, y1}) {
    if (std::abs(y) < r) {
      const double xc = std::sqrt(r * r - y * y);
      if (xc > xa && xc < xb) cuts.push_back(xc);
      if (-xc > xa && -xc < xb) cuts.push_back(-xc);
    }
  }
  std::sort(cuts.begin(), cuts.end());

  double area = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = cuts[i];
    const double b = cuts[i + 1];
    if (b - a <= 0.0) continue;
    const double xm = 0.5 * (a + b);
    const double cm = std::sqrt(std::max(0.0, r * r - xm * xm));
    const double top_m = std::min(y1, cm);
    const double bottom_m = std::max(y0, -cm);
    if (top_m <= bottom_m) continue;

    // Integrate the top boundary.
    double top_integral;
    if (cm < y1) {
      top_integral = HalfCircleIntegral(r, b) - HalfCircleIntegral(r, a);
    } else {
      top_integral = y1 * (b - a);
    }
    // Integrate the bottom boundary.
    double bottom_integral;
    if (-cm > y0) {
      bottom_integral = -(HalfCircleIntegral(r, b) - HalfCircleIntegral(r, a));
    } else {
      bottom_integral = y0 * (b - a);
    }
    area += top_integral - bottom_integral;
  }
  return std::max(0.0, area);
}

double QueryRange::Area() const {
  if (is_circle()) {
    const double r = circle().radius;
    return M_PI * r * r;
  }
  return rect().Area();
}

double QueryRange::IntersectionArea(const Rect& r) const {
  if (is_circle()) return CircleRectIntersectionArea(circle(), r);
  return Intersection(rect(), r).Area();
}

}  // namespace fra
