#include "geo/projection.h"

#include <cmath>

namespace fra {
namespace {

// Mean length of one degree of latitude on the WGS-84 ellipsoid (km).
constexpr double kKmPerDegreeLat = 110.574;
// Length of one degree of longitude at the equator (km).
constexpr double kKmPerDegreeLonEquator = 111.320;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

Projection::Projection(double ref_lat_deg, double ref_lon_deg)
    : ref_lat_deg_(ref_lat_deg),
      ref_lon_deg_(ref_lon_deg),
      km_per_deg_lat_(kKmPerDegreeLat),
      km_per_deg_lon_(kKmPerDegreeLonEquator *
                      std::cos(ref_lat_deg * kDegToRad)) {}

Point Projection::Forward(double lat_deg, double lon_deg) const {
  return Point{(lon_deg - ref_lon_deg_) * km_per_deg_lon_,
               (lat_deg - ref_lat_deg_) * km_per_deg_lat_};
}

void Projection::Inverse(const Point& p, double* lat_deg,
                         double* lon_deg) const {
  *lon_deg = ref_lon_deg_ + p.x / km_per_deg_lon_;
  *lat_deg = ref_lat_deg_ + p.y / km_per_deg_lat_;
}

}  // namespace fra
