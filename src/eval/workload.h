#ifndef FRA_EVAL_WORKLOAD_H_
#define FRA_EVAL_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "agg/spatial_object.h"
#include "federation/query.h"
#include "util/result.h"

namespace fra {

/// Parameters of a synthetic query stream (paper Sec. 8.1 "Queries").
struct WorkloadOptions {
  size_t num_queries = 150;
  /// Circular ranges of this radius; ignored when rect_ranges is true.
  double radius_km = 2.0;
  /// Generate square ranges of side 2 * radius_km instead of circles.
  bool rect_ranges = false;
  AggregateKind kind = AggregateKind::kCount;
  uint64_t seed = 777;
};

/// Generates FRA queries whose centers are locations sampled uniformly
/// from the dataset (so queries land where data is, as the paper does).
/// Fails if all partitions are empty.
Result<std::vector<FraQuery>> GenerateQueries(
    const std::vector<ObjectSet>& partitions, const WorkloadOptions& options);

}  // namespace fra

#endif  // FRA_EVAL_WORKLOAD_H_
