#include "eval/metrics.h"

#include <cmath>

namespace fra {

double RelativeError(double exact, double approx) {
  if (exact == 0.0) return approx == 0.0 ? 0.0 : 1.0;
  return std::abs(exact - approx) / std::abs(exact);
}

void MreAccumulator::Add(double exact, double approx) {
  stat_.Add(RelativeError(exact, approx));
}

}  // namespace fra
