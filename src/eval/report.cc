#include "eval/report.h"

#include <cinttypes>
#include <cstdio>

namespace fra {

std::string FormatBytes(uint64_t bytes) {
  char buffer[32];
  if (bytes >= 1024ULL * 1024ULL * 1024ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ULL * 1024ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64 " B", bytes);
  }
  return buffer;
}

namespace {

// "algorithm" label value of one histogram instance, or "(all)" when the
// instance carries no algorithm label.
std::string AlgorithmLabel(const MetricLabels& labels) {
  for (const auto& [key, value] : labels) {
    if (key == "algorithm") return value;
  }
  return "(all)";
}

}  // namespace

void PrintQueryLatencyTable(const MetricsRegistry& registry) {
  const auto instances =
      registry.HistogramsNamed("fra_query_latency_microseconds");
  if (instances.empty()) return;
  std::printf("\n=== Query latency (fra_query_latency_microseconds) ===\n");
  std::printf("%-16s %10s %12s %12s %12s %12s\n", "algorithm", "queries",
              "mean(us)", "p50(us)", "p95(us)", "p99(us)");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const auto& [labels, histogram] : instances) {
    std::printf("%-16s %10" PRIu64 " %12.1f %12.1f %12.1f %12.1f\n",
                AlgorithmLabel(labels).c_str(), histogram->Count(),
                histogram->Mean(), histogram->Quantile(0.5),
                histogram->Quantile(0.95), histogram->Quantile(0.99));
  }
  std::fflush(stdout);
}

void PrintMetricsExports(const MetricsRegistry& registry) {
  std::printf("\n=== Prometheus text exposition ===\n%s",
              registry.ExportPrometheus().c_str());
  std::printf("\n=== JSON export ===\n%s\n", registry.ExportJson().c_str());
  std::fflush(stdout);
}

ExperimentTable::ExperimentTable(std::string title, std::string param_name)
    : title_(std::move(title)), param_name_(std::move(param_name)) {}

void ExperimentTable::AddRow(const std::string& param_value,
                             const AlgorithmResult& result) {
  rows_.push_back(Row{param_value, result});
}

void ExperimentTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%-10s %-16s %9s %12s %12s %10s %12s %12s\n",
              param_name_.c_str(), "algorithm", "MRE(%)", "time(s)",
              "qps", "msgs", "comm", "index mem");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (const Row& row : rows_) {
    const AlgorithmResult& r = row.result;
    std::printf("%-10s %-16s %9.3f %12.4f %12.1f %10" PRIu64 " %12s %12s\n",
                row.param_value.c_str(), FraAlgorithmToString(r.algorithm),
                r.mre * 100.0, r.total_time_seconds, r.throughput_qps,
                r.comm_messages, FormatBytes(r.comm_bytes).c_str(),
                FormatBytes(r.index_memory_bytes).c_str());
  }
  std::fflush(stdout);
}

}  // namespace fra
