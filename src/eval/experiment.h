#ifndef FRA_EVAL_EXPERIMENT_H_
#define FRA_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/centralized.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "util/result.h"

namespace fra {

/// One evaluation configuration — the knobs of paper Tab. 2 plus the data
/// regime. Defaults() matches the paper's bold defaults, with |P| scaled
/// down (see EXPERIMENTS.md) so the whole suite runs in minutes;
/// FRA_BENCH_SCALE=paper in the environment restores 3M objects.
struct ExperimentConfig {
  size_t total_objects = 1'000'000;       // paper default: 3,000,000
  size_t num_silos = 6;                   // paper: 3..15, default 6
  double radius_km = 2.0;                 // paper: 1..3, default 2
  size_t num_queries = 150;               // paper: 50..250, default 150
  double epsilon = 0.10;                  // paper: 0.05..0.25, default 0.10
  double delta = 0.01;                    // paper: 0.01..0.05, default 0.01
  double grid_length_km = 1.5;            // paper: 0.5..2.5 km
  bool non_iid = true;                    // companies with skewed focus
  bool rect_ranges = false;               // circular ranges by default
  AggregateKind kind = AggregateKind::kCount;
  uint64_t seed = 201306;

  static ExperimentConfig Defaults();
};

/// Per-algorithm measurements for one configuration — exactly the four
/// panels every figure of Sec. 8.2 reports.
struct AlgorithmResult {
  FraAlgorithm algorithm = FraAlgorithm::kExact;
  double mre = 0.0;                 // (a) mean relative error
  double total_time_seconds = 0.0;  // (b) total running time of the batch
  double throughput_qps = 0.0;      //     derived: nQ / time
  uint64_t comm_bytes = 0;          // (c) total communication cost
  uint64_t comm_messages = 0;
  size_t index_memory_bytes = 0;    // (d) memory of the indices it uses
};

/// Builds one dataset + federation per configuration and runs algorithms
/// over a shared query stream, measuring the paper's four metrics.
///
/// Ground-truth answers come from a centralized aggregate R-tree over the
/// pooled data (exact; equivalence with brute force is covered by tests).
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ExperimentConfig& config)
      : config_(config) {}

  /// Generates data, splits silos, assembles the federation, generates
  /// queries and precomputes exact answers. Must be called once before
  /// RunAlgorithm.
  Status Prepare();

  /// Runs `algorithm` over the whole query stream via ExecuteBatch
  /// (Alg. 4) and returns its measurements.
  Result<AlgorithmResult> RunAlgorithm(FraAlgorithm algorithm);

  const ExperimentConfig& config() const { return config_; }
  const std::vector<FraQuery>& queries() const { return queries_; }
  const std::vector<double>& exact_answers() const { return exact_answers_; }
  Federation& federation() { return *federation_; }

  /// Index memory attributable to `algorithm` (paper panel d): EXACT uses
  /// the silo R-trees; OPTA its histograms; the estimators add the grid
  /// indices; the +LSR variants add the upper forest levels.
  size_t IndexMemoryFor(FraAlgorithm algorithm) const;

 private:
  ExperimentConfig config_;
  std::unique_ptr<Federation> federation_;
  std::vector<FraQuery> queries_;
  std::vector<double> exact_answers_;
  Federation::MemoryReport memory_;
};

/// Applies FRA_BENCH_SCALE=paper (full 3M-object runs) or
/// FRA_BENCH_SCALE=smoke (tiny CI-sized runs) to a config's data volume.
ExperimentConfig ApplyEnvScale(ExperimentConfig config);

}  // namespace fra

#endif  // FRA_EVAL_EXPERIMENT_H_
