#include "eval/workload.h"

#include "util/random.h"

namespace fra {

Result<std::vector<FraQuery>> GenerateQueries(
    const std::vector<ObjectSet>& partitions, const WorkloadOptions& options) {
  size_t total = 0;
  for (const ObjectSet& partition : partitions) total += partition.size();
  if (total == 0) {
    return Status::InvalidArgument("cannot sample query centers: no objects");
  }
  if (options.radius_km <= 0.0) {
    return Status::InvalidArgument("query radius must be positive");
  }

  Rng rng(options.seed);
  std::vector<FraQuery> queries;
  queries.reserve(options.num_queries);
  for (size_t q = 0; q < options.num_queries; ++q) {
    // Index into the virtual concatenation of all partitions.
    uint64_t pick = rng.NextUint64(total);
    const SpatialObject* center_object = nullptr;
    for (const ObjectSet& partition : partitions) {
      if (pick < partition.size()) {
        center_object = &partition[pick];
        break;
      }
      pick -= partition.size();
    }
    const Point center = center_object->location;

    FraQuery query;
    query.kind = options.kind;
    if (options.rect_ranges) {
      query.range = QueryRange::MakeRect(
          Point{center.x - options.radius_km, center.y - options.radius_km},
          Point{center.x + options.radius_km, center.y + options.radius_km});
    } else {
      query.range = QueryRange::MakeCircle(center, options.radius_km);
    }
    queries.push_back(query);
  }
  return queries;
}

}  // namespace fra
