#ifndef FRA_EVAL_METRICS_H_
#define FRA_EVAL_METRICS_H_

#include <cstddef>

#include "util/stats.h"

namespace fra {

/// Relative error |exact - approx| / exact (paper Eq. 2). When the exact
/// result is zero the error is 0 if the approximation is also zero and 1
/// otherwise (a bounded convention so empty-range queries cannot blow up
/// the mean).
double RelativeError(double exact, double approx);

/// Accumulates relative errors over a query set and reports the paper's
/// Mean Relative Error (Eq. 3) plus distribution tails.
class MreAccumulator {
 public:
  void Add(double exact, double approx);

  size_t count() const { return stat_.count(); }
  /// Mean relative error over all added queries.
  double Mre() const { return stat_.mean(); }
  double MaxRe() const { return stat_.max(); }
  double StddevRe() const { return stat_.stddev(); }

 private:
  RunningStat stat_;
};

}  // namespace fra

#endif  // FRA_EVAL_METRICS_H_
