#include "eval/experiment.h"

#include <cstdlib>
#include <string>

#include "baseline/centralized.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace fra {

ExperimentConfig ExperimentConfig::Defaults() { return ExperimentConfig(); }

ExperimentConfig ApplyEnvScale(ExperimentConfig config) {
  const char* scale = std::getenv("FRA_BENCH_SCALE");
  if (scale == nullptr) return config;
  const std::string value(scale);
  if (value == "paper") {
    // Paper Tab. 2 default federation size.
    config.total_objects = 3'000'000;
  } else if (value == "smoke") {
    config.total_objects = 30'000;
    config.num_queries = std::min<size_t>(config.num_queries, 30);
  }
  return config;
}

Status ExperimentRunner::Prepare() {
  // 1. Synthesise the corpus (three companies, 1:1:2) and split silos.
  MobilityDataOptions data_options;
  data_options.num_objects = config_.total_objects;
  data_options.seed = config_.seed;
  data_options.non_iid = config_.non_iid;
  FederationDataset dataset;
  {
    FRA_ASSIGN_OR_RETURN(dataset, GenerateMobilityData(data_options));
  }
  std::vector<ObjectSet> partitions;
  {
    FRA_ASSIGN_OR_RETURN(partitions,
                         SplitIntoSilos(dataset.company_partitions,
                                        config_.num_silos, config_.seed + 1));
  }

  // 2. Queries with centers sampled from the data.
  WorkloadOptions workload;
  workload.num_queries = config_.num_queries;
  workload.radius_km = config_.radius_km;
  workload.rect_ranges = config_.rect_ranges;
  workload.kind = config_.kind;
  workload.seed = config_.seed + 2;
  FRA_ASSIGN_OR_RETURN(queries_, GenerateQueries(partitions, workload));

  // 3. Ground truth from a centralized aggregate R-tree (exact).
  const CentralizedRTree truth(partitions);
  exact_answers_.clear();
  exact_answers_.reserve(queries_.size());
  for (const FraQuery& query : queries_) {
    FRA_ASSIGN_OR_RETURN(const double answer,
                         truth.Aggregate(query.range, query.kind));
    exact_answers_.push_back(answer);
  }

  // 4. Assemble the federation.
  FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = config_.grid_length_km;
  options.provider.epsilon = config_.epsilon;
  options.provider.delta = config_.delta;
  options.provider.seed = config_.seed + 3;
  // The runner measures the paper's communication cost per algorithm and
  // already scores accuracy against the centralized ground truth; the
  // background auditor's EXACT replays would pollute both.
  options.provider.audit_sample_rate = 0.0;
  FRA_ASSIGN_OR_RETURN(federation_,
                       Federation::Create(std::move(partitions), options));
  memory_ = federation_->MemoryUsage();
  return Status::OK();
}

Result<AlgorithmResult> ExperimentRunner::RunAlgorithm(
    FraAlgorithm algorithm) {
  if (federation_ == nullptr) {
    return Status::Internal("ExperimentRunner::Prepare was not called");
  }
  ServiceProvider& provider = federation_->provider();

  const CommStats::Snapshot comm_before = provider.comm();
  Timer timer;
  FRA_ASSIGN_OR_RETURN(std::vector<double> answers,
                       provider.ExecuteBatch(queries_, algorithm));
  const double elapsed = timer.ElapsedSeconds();
  const CommStats::Snapshot comm =
      provider.comm() - comm_before;

  MreAccumulator mre;
  for (size_t i = 0; i < answers.size(); ++i) {
    mre.Add(exact_answers_[i], answers[i]);
  }

  AlgorithmResult result;
  result.algorithm = algorithm;
  result.mre = mre.Mre();
  result.total_time_seconds = elapsed;
  result.throughput_qps =
      elapsed > 0.0 ? static_cast<double>(queries_.size()) / elapsed : 0.0;
  result.comm_bytes = comm.TotalBytes();
  result.comm_messages = comm.messages;
  result.index_memory_bytes = IndexMemoryFor(algorithm);
  return result;
}

size_t ExperimentRunner::IndexMemoryFor(FraAlgorithm algorithm) const {
  switch (algorithm) {
    case FraAlgorithm::kExact:
      return memory_.rtree_bytes;
    case FraAlgorithm::kOpta:
      return memory_.histogram_bytes;
    case FraAlgorithm::kIidEst:
    case FraAlgorithm::kNonIidEst:
      return memory_.rtree_bytes + memory_.provider_grid_bytes +
             memory_.silo_grid_bytes;
    case FraAlgorithm::kIidEstLsr:
    case FraAlgorithm::kNonIidEstLsr:
      return memory_.rtree_bytes + memory_.provider_grid_bytes +
             memory_.silo_grid_bytes + memory_.lsr_extra_bytes;
  }
  return 0;
}

}  // namespace fra
