#ifndef FRA_EVAL_REPORT_H_
#define FRA_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "util/metrics.h"

namespace fra {

/// Formats bytes as a human-readable string ("1.4 MB").
std::string FormatBytes(uint64_t bytes);

/// Prints one row per instance of the registry's
/// `fra_query_latency_microseconds{algorithm=...}` histogram family:
/// query count, mean, p50/p95/p99 in microseconds. The registry replaces
/// the hand-rolled Timer/Quantile aggregation the bench binaries used to
/// carry, so the reported tail latencies and the exported metrics cannot
/// drift apart. No-op (header only) when nothing has been recorded.
void PrintQueryLatencyTable(const MetricsRegistry& registry);

/// Writes both exporter formats to stdout, separated by banner lines —
/// what `examples/metrics_dump` and operators piping to a scrape file
/// consume. Formats are specified in docs/observability.md.
void PrintMetricsExports(const MetricsRegistry& registry);

/// Prints one experiment table in the paper's layout: a header naming the
/// swept parameter, then one row per (parameter value, algorithm) with
/// the four Sec. 8.2 panels as columns — MRE, running time, communication
/// cost, index memory.
class ExperimentTable {
 public:
  /// `title` e.g. "Fig. 3: impact of query radius r (COUNT)",
  /// `param_name` e.g. "r (km)".
  ExperimentTable(std::string title, std::string param_name);

  /// Adds the results of one sweep point.
  void AddRow(const std::string& param_value, const AlgorithmResult& result);

  /// Writes the table to stdout.
  void Print() const;

 private:
  struct Row {
    std::string param_value;
    AlgorithmResult result;
  };
  std::string title_;
  std::string param_name_;
  std::vector<Row> rows_;
};

}  // namespace fra

#endif  // FRA_EVAL_REPORT_H_
