#ifndef FRA_UTIL_BUFFER_H_
#define FRA_UTIL_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace fra {

/// Non-owning read-only view over a contiguous byte range. The bytes
/// stay owned by whoever produced them (a wire frame, a BufferRef, a
/// stack vector); a ConstByteSpan is only valid while that owner lives.
/// Decoders take spans so the silo side of an in-process call can parse
/// the provider's encoded request without copying it first.
class ConstByteSpan {
 public:
  ConstByteSpan() : data_(nullptr), size_(0) {}
  ConstByteSpan(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  // Implicit on purpose: every existing call site holds a vector.
  ConstByteSpan(const std::vector<uint8_t>& bytes)  // NOLINT
      : data_(bytes.data()), size_(bytes.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

  /// Sub-view; clamps to the underlying range.
  ConstByteSpan Subspan(size_t offset, size_t length) const {
    if (offset > size_) offset = size_;
    if (length > size_ - offset) length = size_ - offset;
    return ConstByteSpan(data_ + offset, length);
  }

  /// Materialises an owning copy (the escape hatch for callers that must
  /// outlive the producer).
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

/// Thread-safe pool of reusable byte buffers, size-classed by capacity.
///
/// The data plane allocates one growable vector per frame on every hop
/// (encode, frame queue, decode); at tens of thousands of queries per
/// second that is the dominant allocator load. The pool keeps returned
/// vectors on power-of-two freelists so a warm query path recycles the
/// same slabs instead of round-tripping through malloc.
///
/// Returned buffers keep their size() intact while pooled and have their
/// leading bytes poisoned with 0xDD, so a stale pointer read after
/// Release() sees garbage (and stays within the vector's annotated size
/// under ASan container checks). Acquire() clears the vector before
/// handing it out.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;        // Acquire served from a freelist.
    uint64_t misses = 0;      // Acquire fell through to a fresh allocation.
    uint64_t pooled = 0;      // Release kept the buffer.
    uint64_t discarded = 0;   // Release dropped the buffer (caps/disabled).
    size_t free_bytes = 0;    // Capacity currently parked on freelists.
    size_t free_buffers = 0;  // Buffer count currently parked on freelists.
  };

  /// Process-wide pool used by the wire path (frames, coalescer batches,
  /// pooled BinaryWriter buffers).
  static BufferPool& Default();

  /// Process-wide A/B switch. Disabled: Acquire always allocates fresh
  /// and Release discards, i.e. the pre-pool allocator behaviour —
  /// benches flip this to measure the pool's contribution.
  static void SetEnabled(bool enabled);
  static bool enabled();

  /// Observation hook fired on every Acquire that falls through to a
  /// fresh allocation, with the class-rounded capacity about to be
  /// reserved. The profiler installs one to attribute pool-miss hot
  /// spots by size class (obs/profiler.h); null disables. The hook runs
  /// on the acquiring thread outside the pool lock and must not acquire
  /// from the pool.
  using MissSampleHook = void (*)(size_t reserved_bytes);
  static void SetMissSampleHook(MissSampleHook hook);

  BufferPool();

  /// Returns an empty vector with capacity >= min_capacity, reusing a
  /// pooled buffer when one of a fitting size class is available.
  std::vector<uint8_t> Acquire(size_t min_capacity);

  /// Parks `buf`'s storage for reuse. Oversized or over-cap buffers are
  /// simply dropped (freed). Safe from any thread.
  void Release(std::vector<uint8_t>&& buf);

  Stats stats() const;

 private:
  // Size classes: 256 B .. 4 MiB in power-of-two steps.
  static constexpr size_t kMinClassBytes = 256;
  static constexpr size_t kMaxClassBytes = 4u << 20;
  static constexpr int kNumClasses = 15;  // 2^8 .. 2^22
  // Per-class and total parking caps keep a burst from pinning memory.
  static constexpr size_t kMaxFreePerClass = 64;
  static constexpr size_t kMaxTotalFreeBytes = 64u << 20;

  // Smallest class whose buffers can hold `bytes`; -1 if above the
  // largest class (such buffers are never pooled).
  static int ClassForRequest(size_t bytes);
  // Largest class with class-size <= capacity: the freelist this buffer
  // parks on, so Acquire never hands out a buffer smaller than the
  // class it came from. -1 if below the smallest class.
  static int ClassForRelease(size_t capacity);

  mutable std::mutex mu_;
  std::deque<std::vector<uint8_t>> free_[kNumClasses];
  size_t free_bytes_ = 0;
  size_t free_buffers_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> pooled_{0};
  std::atomic<uint64_t> discarded_{0};
};

/// Refcounted, immutable view over a pooled buffer. Copies share the
/// underlying bytes; when the last reference drops the storage returns
/// to BufferPool::Default(). Slices keep the whole backing buffer alive.
///
/// This is the unit the scatter-gather wire path passes around: the
/// coalescer stages one BufferRef per encoded entry and the frame writer
/// queues them as iovec chunks without ever concatenating.
class BufferRef {
 public:
  BufferRef() = default;

  /// Takes ownership of `bytes`; the storage is released back to the
  /// default pool when the last BufferRef referencing it is destroyed.
  static BufferRef Wrap(std::vector<uint8_t> bytes);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ConstByteSpan span() const { return ConstByteSpan(data_, size_); }

  /// Sub-view sharing ownership of the backing buffer; clamps to bounds.
  BufferRef Slice(size_t offset, size_t length) const;

 private:
  std::shared_ptr<const std::vector<uint8_t>> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fra

#endif  // FRA_UTIL_BUFFER_H_
