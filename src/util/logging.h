#ifndef FRA_UTIL_LOGGING_H_
#define FRA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fra {
namespace internal {

/// Accumulates a fatal message; aborts the process when destroyed.
/// Used by the FRA_CHECK family below — invariant violations are
/// programming errors, not recoverable conditions.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "FRA_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lowers a streamed FatalLogMessage to void so it can sit on the false
/// branch of the ternary in FRA_CHECK (the classic glog "voidify" idiom).
struct Voidify {
  // const& binds both the bare temporary and the reference returned by
  // operator<< chains.
  void operator&(const FatalLogMessage&) {}
};

}  // namespace internal
}  // namespace fra

/// Aborts with a message if `condition` is false; extra context can be
/// streamed in: FRA_CHECK(n > 0) << "n was " << n;
/// Active in all build types: these guard internal invariants whose
/// violation would corrupt query results.
#define FRA_CHECK(condition)             \
  (condition) ? static_cast<void>(0)     \
              : ::fra::internal::Voidify() & ::fra::internal::FatalLogMessage( \
                    __FILE__, __LINE__, #condition)

#define FRA_CHECK_OP_(a, b, op)           \
  ((a)op(b)) ? static_cast<void>(0)       \
             : ::fra::internal::Voidify() & ::fra::internal::FatalLogMessage( \
                   __FILE__, __LINE__, #a " " #op " " #b)

#define FRA_CHECK_EQ(a, b) FRA_CHECK_OP_(a, b, ==)
#define FRA_CHECK_NE(a, b) FRA_CHECK_OP_(a, b, !=)
#define FRA_CHECK_LT(a, b) FRA_CHECK_OP_(a, b, <)
#define FRA_CHECK_LE(a, b) FRA_CHECK_OP_(a, b, <=)
#define FRA_CHECK_GT(a, b) FRA_CHECK_OP_(a, b, >)
#define FRA_CHECK_GE(a, b) FRA_CHECK_OP_(a, b, >=)

/// Aborts if `status_expr` is not OK.
#define FRA_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    ::fra::Status _fra_check_status = (status_expr);                    \
    FRA_CHECK(_fra_check_status.ok()) << _fra_check_status.ToString();  \
  } while (false)

#endif  // FRA_UTIL_LOGGING_H_
