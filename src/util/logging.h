#ifndef FRA_UTIL_LOGGING_H_
#define FRA_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace fra {

/// Structured, trace-correlated logging (docs/observability.md,
/// "Structured logging").
///
/// FRA_LOG(INFO|WARN|ERROR) emits one-line JSON records stamped with the
/// thread's active trace id, so a log line produced deep inside a silo
/// exchange joins the same investigation as the query's spans and flight
/// record. Every record lands in a bounded in-memory ring served at
/// /debug/logz(.json); records at or above the stderr threshold (WARN by
/// default) are additionally written to stderr. A token-bucket rate
/// limiter per call-site keeps a hot error path from melting the sink:
/// suppressed records are counted (fra_log_records_dropped_total{level})
/// and the next admitted record from that site carries the suppressed
/// count.
///
/// FRA_CHECK failures flush through the same sink (level FATAL) before
/// aborting, so the ring's tail shows what the process was doing when an
/// invariant broke.

enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2, kFatal = 3 };

/// "INFO", "WARN", "ERROR", "FATAL".
const char* LogLevelName(LogLevel level);

/// One emitted log record.
struct LogRecord {
  uint64_t sequence = 0;   // assigned by the sink, monotonically increasing
  int64_t unix_nanos = 0;  // CLOCK_REALTIME at emission
  LogLevel level = LogLevel::kInfo;
  const char* file = "";   // call-site basename (string literal)
  int line = 0;
  uint64_t trace_id = 0;   // CurrentTraceId() at emission; 0 = no trace
  uint64_t suppressed = 0; // records rate-limited at this site since the
                           // previous admitted one
  std::string message;

  /// The record as the one-line JSON object written to stderr and served
  /// by /debug/logz.json.
  std::string ToJson() const;
};

/// Process-wide log sink: a bounded ring of the most recent records.
/// Writers claim a slot with one atomic fetch_add (wait-free); the slot
/// payload is guarded by a per-slot latch so concurrent writers that
/// collide on a wrapped slot, and snapshot readers, stay race-free.
class LogSink {
 public:
  static constexpr size_t kRingSlots = 1024;

  static LogSink& Get();

  /// Appends a record (sequence/time/trace stamped here) and mirrors it
  /// to stderr when `level` >= stderr_min_level(). Thread safe.
  void Log(LogLevel level, const char* file, int line, uint64_t suppressed,
           std::string message);

  /// Records currently in the ring, oldest first.
  std::vector<LogRecord> Snapshot() const;

  /// /debug/logz: one human-readable line per record.
  std::string RenderText() const;
  /// /debug/logz.json: {"records": [...]}.
  std::string RenderJson() const;

  /// Minimum level mirrored to stderr (the ring always records). Default
  /// kWarn so chatty INFO diagnostics stay queryable without polluting
  /// test output.
  void set_stderr_min_level(LogLevel level);
  LogLevel stderr_min_level() const;

  /// Total records accepted into the ring since process start.
  uint64_t records_logged() const;

  size_t capacity() const { return kRingSlots; }

  /// Tests only: empties the ring (sequence numbering continues).
  void Clear();

 private:
  LogSink();
  struct Slot;

  Slot* slots_;  // kRingSlots, leaked with the singleton
  std::atomic<uint64_t> next_{0};
};

namespace internal {

/// Per-call-site token bucket: `burst` immediate records, refilling at
/// `per_second`. Admit() is called with a monotonic clock reading so
/// tests can drive it deterministically.
class LogCallSite {
 public:
  explicit LogCallSite(double burst = 10.0, double per_second = 1.0)
      : burst_(burst), per_second_(per_second), tokens_(burst) {}

  /// True if this record may be emitted; on true, *suppressed receives
  /// the number of records rejected since the previous admission (and
  /// the internal count resets). Thread safe.
  bool Admit(uint64_t now_nanos, uint64_t* suppressed);

 private:
  const double burst_;
  const double per_second_;
  std::mutex mu_;
  double tokens_;
  uint64_t last_refill_nanos_ = 0;
  uint64_t suppressed_ = 0;
};

/// Accumulates one FRA_LOG record; hands it to the sink on destruction.
/// When the call site's rate limiter rejects the record, streaming is
/// skipped and only the dropped counter moves.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, LogCallSite* site);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (admitted_) stream_ << value;
    return *this;
  }

 private:
  const LogLevel level_;
  const char* file_;
  const int line_;
  bool admitted_ = false;
  uint64_t suppressed_ = 0;
  std::ostringstream stream_;
};

/// Lowers a streamed message to void (the glog "voidify" idiom), letting
/// the macros below form a single expression statement.
struct LogVoidify {
  void operator&(const LogMessage&) {}
};

/// Accumulates a fatal message; flushes it through the LogSink (so the
/// /debug/logz ring's tail records the abort) and aborts the process
/// when destroyed. Used by the FRA_CHECK family below — invariant
/// violations are programming errors, not recoverable conditions.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  const int line_;
  std::ostringstream stream_;
};

/// Lowers a streamed FatalLogMessage to void so it can sit on the false
/// branch of the ternary in FRA_CHECK.
struct Voidify {
  // const& binds both the bare temporary and the reference returned by
  // operator<< chains.
  void operator&(const FatalLogMessage&) {}
};

// Severity-token mapping for FRA_LOG(INFO) et al.
constexpr LogLevel kLogSeverityINFO = LogLevel::kInfo;
constexpr LogLevel kLogSeverityWARN = LogLevel::kWarn;
constexpr LogLevel kLogSeverityERROR = LogLevel::kError;

}  // namespace internal
}  // namespace fra

/// Emits one structured log record: FRA_LOG(WARN) << "silo " << id
/// << " unreachable";  Severity is INFO, WARN or ERROR (invariant
/// violations use FRA_CHECK). Each textual call site owns a token-bucket
/// rate limiter (10-record burst, 1/s refill); records it rejects are
/// counted, not emitted.
#define FRA_LOG(severity)                                                  \
  ::fra::internal::LogVoidify() &                                          \
      ::fra::internal::LogMessage(                                         \
          ::fra::internal::kLogSeverity##severity, __FILE__, __LINE__, [] { \
            static ::fra::internal::LogCallSite fra_log_site;              \
            return &fra_log_site;                                          \
          }())

/// Aborts with a message if `condition` is false; extra context can be
/// streamed in: FRA_CHECK(n > 0) << "n was " << n;
/// Active in all build types: these guard internal invariants whose
/// violation would corrupt query results.
#define FRA_CHECK(condition)             \
  (condition) ? static_cast<void>(0)     \
              : ::fra::internal::Voidify() & ::fra::internal::FatalLogMessage( \
                    __FILE__, __LINE__, #condition)

#define FRA_CHECK_OP_(a, b, op)           \
  ((a)op(b)) ? static_cast<void>(0)       \
             : ::fra::internal::Voidify() & ::fra::internal::FatalLogMessage( \
                   __FILE__, __LINE__, #a " " #op " " #b)

#define FRA_CHECK_EQ(a, b) FRA_CHECK_OP_(a, b, ==)
#define FRA_CHECK_NE(a, b) FRA_CHECK_OP_(a, b, !=)
#define FRA_CHECK_LT(a, b) FRA_CHECK_OP_(a, b, <)
#define FRA_CHECK_LE(a, b) FRA_CHECK_OP_(a, b, <=)
#define FRA_CHECK_GT(a, b) FRA_CHECK_OP_(a, b, >)
#define FRA_CHECK_GE(a, b) FRA_CHECK_OP_(a, b, >=)

/// Aborts if `status_expr` is not OK.
#define FRA_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    ::fra::Status _fra_check_status = (status_expr);                    \
    FRA_CHECK(_fra_check_status.ok()) << _fra_check_status.ToString();  \
  } while (false)

#endif  // FRA_UTIL_LOGGING_H_
