#ifndef FRA_UTIL_BUILD_INFO_H_
#define FRA_UTIL_BUILD_INFO_H_

#include <string>

namespace fra {

/// The git revision this binary was built from: the FRA_GIT_SHA
/// environment variable when set (CI overrides for dirty trees), else
/// the short sha captured at configure time, else "unknown".
std::string BuildGitSha();

/// CMAKE_BUILD_TYPE at configure time ("unknown" when not stamped).
std::string BuildTypeName();

/// True when FRA_TRACE_SPAN query-path spans were compiled in
/// (FRA_ENABLE_TRACING).
bool BuildTracingCompiled();

/// Registers `fra_build_info` in the default metrics registry: a
/// constant gauge of value 1 whose labels carry the build metadata
/// (git_sha, build_type, tracing), the standard Prometheus idiom for
/// joining build provenance onto any other series. Idempotent; called by
/// AdminServer::Start so every scraped process exposes it.
void RegisterBuildInfoMetric();

}  // namespace fra

#endif  // FRA_UTIL_BUILD_INFO_H_
