#include "util/logging.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/metrics.h"
#include "util/trace.h"

namespace fra {
namespace {

int64_t RealtimeNanos() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

uint64_t MonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

// Call-site paths are compile-time literals like ".../src/net/reactor.cc";
// records carry the basename to keep lines short and build-dir free.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

void AppendJsonEscaped(const std::string& text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

Counter* RecordsCounter(LogLevel level) {
  static Counter* counters[4] = {
      &MetricsRegistry::Default().GetCounter("fra_log_records_total",
                                             {{"level", "INFO"}}),
      &MetricsRegistry::Default().GetCounter("fra_log_records_total",
                                             {{"level", "WARN"}}),
      &MetricsRegistry::Default().GetCounter("fra_log_records_total",
                                             {{"level", "ERROR"}}),
      &MetricsRegistry::Default().GetCounter("fra_log_records_total",
                                             {{"level", "FATAL"}})};
  return counters[static_cast<int>(level)];
}

Counter* DroppedCounter(LogLevel level) {
  static Counter* counters[4] = {
      &MetricsRegistry::Default().GetCounter("fra_log_records_dropped_total",
                                             {{"level", "INFO"}}),
      &MetricsRegistry::Default().GetCounter("fra_log_records_dropped_total",
                                             {{"level", "WARN"}}),
      &MetricsRegistry::Default().GetCounter("fra_log_records_dropped_total",
                                             {{"level", "ERROR"}}),
      &MetricsRegistry::Default().GetCounter("fra_log_records_dropped_total",
                                             {{"level", "FATAL"}})};
  return counters[static_cast<int>(level)];
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "INFO";
}

std::string LogRecord::ToJson() const {
  std::string out;
  out.reserve(message.size() + 128);
  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"ts_unix_nanos\":%lld,\"level\":\"%s\",\"src\":\"%s:%d\","
                "\"trace_id\":\"%016llx\",",
                static_cast<long long>(unix_nanos), LogLevelName(level), file,
                line, static_cast<unsigned long long>(trace_id));
  out.append(head);
  if (suppressed > 0) {
    char sup[48];
    std::snprintf(sup, sizeof(sup), "\"suppressed\":%llu,",
                  static_cast<unsigned long long>(suppressed));
    out.append(sup);
  }
  out.append("\"msg\":\"");
  AppendJsonEscaped(message, &out);
  out.append("\"}");
  return out;
}

/// Ring slot: the claim index is handed out wait-free; this latch only
/// orders the payload copy against a writer that wrapped onto the same
/// slot and against snapshot readers.
struct LogSink::Slot {
  mutable std::mutex mu;
  uint64_t sequence = 0;  // 0 = never written
  LogRecord record;
};

LogSink::LogSink() : slots_(new Slot[kRingSlots]) {}

LogSink& LogSink::Get() {
  static LogSink* sink = new LogSink();
  return *sink;
}

namespace {
std::atomic<int> g_stderr_min_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

void LogSink::set_stderr_min_level(LogLevel level) {
  g_stderr_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel LogSink::stderr_min_level() const {
  return static_cast<LogLevel>(
      g_stderr_min_level.load(std::memory_order_relaxed));
}

namespace {
// Reentrancy guard: a FRA_CHECK that fires inside the metrics registry
// (possibly with its lock held) must not route back through GetCounter.
thread_local bool t_in_log_sink = false;
}  // namespace

void LogSink::Log(LogLevel level, const char* file, int line,
                  uint64_t suppressed, std::string message) {
  if (t_in_log_sink) {
    std::fprintf(stderr, "%s %s:%d %s\n", LogLevelName(level), Basename(file),
                 line, message.c_str());
    return;
  }
  t_in_log_sink = true;
  LogRecord record;
  record.unix_nanos = RealtimeNanos();
  record.level = level;
  record.file = Basename(file);
  record.line = line;
  record.trace_id = CurrentTraceId();
  record.suppressed = suppressed;
  record.message = std::move(message);

  RecordsCounter(level)->Increment();
  if (suppressed > 0) DroppedCounter(level)->Increment(suppressed);

  const uint64_t sequence = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.sequence = sequence;

  if (static_cast<int>(level) >=
      g_stderr_min_level.load(std::memory_order_relaxed)) {
    // One write() per record keeps concurrent lines intact.
    const std::string json = record.ToJson() + "\n";
    const ssize_t ignored = ::write(STDERR_FILENO, json.data(), json.size());
    (void)ignored;
  }

  Slot& slot = slots_[(sequence - 1) % kRingSlots];
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    // A slower writer must not clobber a newer record that already
    // wrapped onto this slot.
    if (slot.sequence < sequence) {
      slot.sequence = sequence;
      slot.record = std::move(record);
    }
  }
  t_in_log_sink = false;
}

uint64_t LogSink::records_logged() const {
  return next_.load(std::memory_order_relaxed);
}

void LogSink::Clear() {
  for (size_t i = 0; i < kRingSlots; ++i) {
    std::lock_guard<std::mutex> lock(slots_[i].mu);
    slots_[i].sequence = 0;
    slots_[i].record = LogRecord();
  }
}

std::vector<LogRecord> LogSink::Snapshot() const {
  std::vector<LogRecord> records;
  records.reserve(kRingSlots);
  for (size_t i = 0; i < kRingSlots; ++i) {
    std::lock_guard<std::mutex> lock(slots_[i].mu);
    if (slots_[i].sequence > 0) records.push_back(slots_[i].record);
  }
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.sequence < b.sequence;
            });
  return records;
}

std::string LogSink::RenderText() const {
  const std::vector<LogRecord> records = Snapshot();
  std::string out;
  out.reserve(records.size() * 96 + 64);
  for (const LogRecord& record : records) {
    char head[128];
    const time_t seconds = record.unix_nanos / 1'000'000'000;
    tm utc{};
    gmtime_r(&seconds, &utc);
    char when[32];
    std::strftime(when, sizeof(when), "%Y-%m-%dT%H:%M:%S", &utc);
    std::snprintf(head, sizeof(head), "%s.%03lldZ %-5s %s:%d",
                  when,
                  static_cast<long long>((record.unix_nanos / 1'000'000) %
                                         1000),
                  LogLevelName(record.level), record.file, record.line);
    out.append(head);
    if (record.trace_id != 0) {
      char trace[32];
      std::snprintf(trace, sizeof(trace), " [trace %016llx]",
                    static_cast<unsigned long long>(record.trace_id));
      out.append(trace);
    }
    out.push_back(' ');
    out.append(record.message);
    if (record.suppressed > 0) {
      out.append(" (");
      out.append(std::to_string(record.suppressed));
      out.append(" similar suppressed)");
    }
    out.push_back('\n');
  }
  if (records.empty()) out = "no log records\n";
  return out;
}

std::string LogSink::RenderJson() const {
  const std::vector<LogRecord> records = Snapshot();
  std::string out = "{\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(records[i].ToJson());
  }
  out.append("]}");
  return out;
}

namespace internal {

bool LogCallSite::Admit(uint64_t now_nanos, uint64_t* suppressed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_refill_nanos_ == 0) last_refill_nanos_ = now_nanos;
  if (now_nanos > last_refill_nanos_) {
    const double elapsed_seconds =
        static_cast<double>(now_nanos - last_refill_nanos_) / 1e9;
    tokens_ = std::min(burst_, tokens_ + elapsed_seconds * per_second_);
    last_refill_nanos_ = now_nanos;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    *suppressed = suppressed_;
    suppressed_ = 0;
    return true;
  }
  ++suppressed_;
  return false;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       LogCallSite* site)
    : level_(level), file_(file), line_(line) {
  admitted_ = site->Admit(MonotonicNanos(), &suppressed_);
  if (!admitted_) DroppedCounter(level)->Increment();
}

LogMessage::~LogMessage() {
  if (!admitted_) return;
  LogSink::Get().Log(level_, file_, line_, suppressed_, stream_.str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "FRA_CHECK failed at " << Basename(file) << ":" << line << ": "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  // Unconditional (no rate limiting): the process is about to die and the
  // message must reach both stderr and the ring tail. kFatal is never
  // below the stderr threshold, so Log() always mirrors it.
  LogSink::Get().Log(LogLevel::kFatal, file_, line_, 0, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace fra
