#ifndef FRA_UTIL_RESULT_H_
#define FRA_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace fra {

/// A value-or-error outcome: either holds a `T` or a non-OK Status.
/// Mirrors arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<GridIndex> r = GridIndex::Build(...);
///   if (!r.ok()) return r.status();
///   GridIndex index = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from an error Status. Constructing from an OK
  /// status is a programming error and aborts.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    FRA_CHECK(!std::get<Status>(rep_).ok())
        << "Result constructed from OK status without a value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// OK if a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Returns the held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    FRA_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    FRA_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T ValueOrDie() && {
    FRA_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value into `out` and returns OK, or returns the error.
  Status Value(T* out) && {
    if (!ok()) return status();
    *out = std::move(std::get<T>(rep_));
    return Status::OK();
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace fra

/// Evaluates `rexpr` (a Result<T> expression); on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define FRA_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  FRA_ASSIGN_OR_RETURN_IMPL_(                                   \
      FRA_CONCAT_(_fra_result_, __COUNTER__), lhs, rexpr)

#define FRA_CONCAT_INNER_(a, b) a##b
#define FRA_CONCAT_(a, b) FRA_CONCAT_INNER_(a, b)
#define FRA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

#endif  // FRA_UTIL_RESULT_H_
