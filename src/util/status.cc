#include "util/status.h"

namespace fra {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace fra
