#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fra {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  FRA_CHECK_GE(q, 0.0);
  FRA_CHECK_LE(q, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace fra
