#ifndef FRA_UTIL_METRICS_H_
#define FRA_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fra {

/// Label set attached to a metric instance, e.g.
/// {{"algorithm", "IID-est"}, {"silo", "3"}}. Stored sorted by key so two
/// permutations of the same labels address the same instance.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter. Updates are lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (silo count, index memory, ...). Lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram. Observations land in the first bucket
/// whose upper bound is >= the value (cumulative counts, Prometheus
/// semantics); an implicit +Inf bucket catches the rest. Updates are
/// lock-free; quantiles are estimated by linear interpolation inside the
/// covering bucket, so their resolution is one bucket width (see
/// docs/observability.md for the error bound).
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bounds (excluding +Inf).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Mean() const {
    const uint64_t n = Count();
    return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
  }

  /// Estimated q-quantile (q in [0, 1]); 0 when empty. Values in the +Inf
  /// bucket clamp to the largest finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

  /// Upper bounds used by every latency histogram in the library:
  /// 1us .. 1s in a 1-2.5-5 ladder (20 finite buckets).
  static const std::vector<double>& DefaultLatencyBucketsMicros();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe registry of named, labeled metrics with Prometheus-text
/// and JSON exporters.
///
/// Get* registers the (name, labels) instance on first use and returns a
/// reference that stays valid for the registry's lifetime, so hot paths
/// can resolve a metric once and update it lock-free afterwards. A name
/// maps to exactly one metric type; mixing types on one name is a
/// programming error (FRA_CHECK).
///
/// The library records into Default(); isolated registries are for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument writes to.
  static MetricsRegistry& Default();

  Counter& GetCounter(const std::string& name,
                      const MetricLabels& labels = {});
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {});
  /// `bounds` applies on first registration of `name` only; later calls
  /// reuse the family's buckets.
  Histogram& GetHistogram(const std::string& name,
                          const MetricLabels& labels = {},
                          const std::vector<double>& bounds =
                              Histogram::DefaultLatencyBucketsMicros());

  /// All instances of one histogram family (empty if none), labels sorted.
  std::vector<std::pair<MetricLabels, const Histogram*>> HistogramsNamed(
      const std::string& name) const;
  std::vector<std::pair<MetricLabels, const Counter*>> CountersNamed(
      const std::string& name) const;
  std::vector<std::pair<MetricLabels, const Gauge*>> GaugesNamed(
      const std::string& name) const;

  /// Help text for `name` on the Prometheus exposition (`# HELP`, once
  /// per family before `# TYPE`). The library's own families carry
  /// built-in help; this overrides it or documents embedder-defined
  /// families. May be called before or after the family is registered.
  void SetHelp(const std::string& name, const std::string& help);

  /// Prometheus text exposition format (families sorted by name,
  /// instances by label value; `# HELP` emitted for families with known
  /// help text).
  std::string ExportPrometheus() const;
  /// The same data as one JSON object with "counters" / "gauges" /
  /// "histograms" arrays; histograms carry p50/p95/p99.
  std::string ExportJson() const;

  /// Zeroes every registered metric; registrations (and the references
  /// handed out) stay valid.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instance {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::vector<double> bounds;  // histograms only
    // Keyed by the canonical label encoding, kept sorted for the export.
    std::map<std::string, Instance> instances;
  };

  Instance& GetInstance(const std::string& name, const MetricLabels& labels,
                        Kind kind, const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::map<std::string, std::string> help_;  // SetHelp overrides
};

}  // namespace fra

#endif  // FRA_UTIL_METRICS_H_
