#include "util/query_cost.h"

#include <time.h>

#include <cstdio>

namespace fra {

double ThreadCpuMicros() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
}

namespace {
thread_local QueryCostTracker* t_current_tracker = nullptr;
}  // namespace

QueryCostTracker::QueryCostTracker() : previous_(t_current_tracker) {
  t_current_tracker = this;
}

QueryCostTracker::~QueryCostTracker() { t_current_tracker = previous_; }

QueryCostTracker* QueryCostTracker::Current() { return t_current_tracker; }

void QueryCostTracker::NoteSiloCall(uint64_t bytes_out, uint64_t bytes_in) {
  std::lock_guard<std::mutex> lock(mu_);
  cost_.bytes_to_silos += bytes_out;
  cost_.bytes_from_silos += bytes_in;
  ++cost_.silo_rpcs;
}

void QueryCostTracker::NoteQueueWait(double micros) {
  std::lock_guard<std::mutex> lock(mu_);
  cost_.queue_wait_micros += micros;
}

void QueryCostTracker::AddCpuMicros(double micros) {
  if (micros <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  cost_.cpu_micros += micros;
}

QueryCost QueryCostTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cost_;
}

QueryCostScope::QueryCostScope(QueryCostTracker* tracker)
    : tracker_(tracker), previous_(t_current_tracker) {
  t_current_tracker = tracker;
  if (tracker_ != nullptr) cpu_start_ = ThreadCpuMicros();
}

QueryCostScope::~QueryCostScope() {
  if (tracker_ != nullptr) {
    tracker_->AddCpuMicros(ThreadCpuMicros() - cpu_start_);
  }
  t_current_tracker = previous_;
}

std::string QueryCostToJson(const QueryCost& cost) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"cpu_micros\":%.1f,\"bytes_to_silos\":%llu,"
                "\"bytes_from_silos\":%llu,\"silo_rpcs\":%u,"
                "\"queue_wait_micros\":%.1f}",
                cost.cpu_micros,
                static_cast<unsigned long long>(cost.bytes_to_silos),
                static_cast<unsigned long long>(cost.bytes_from_silos),
                cost.silo_rpcs, cost.queue_wait_micros);
  return buf;
}

}  // namespace fra
