#ifndef FRA_UTIL_STATUS_H_
#define FRA_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace fra {

/// Error categories used across the library. The public API never throws;
/// fallible operations return a Status (or Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kUnavailable = 5,
  kIOError = 6,
  kInternal = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. OK statuses are cheap (a null pointer);
/// error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status copyable and cheap to propagate; error paths
  // are cold so the allocation is acceptable.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace fra

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is an error.
#define FRA_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::fra::Status _fra_status = (expr);        \
    if (!_fra_status.ok()) return _fra_status; \
  } while (false)

#endif  // FRA_UTIL_STATUS_H_
