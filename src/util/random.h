#ifndef FRA_UTIL_RANDOM_H_
#define FRA_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

namespace fra {

/// A small, fast, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in the library (data generation, silo
/// sampling, LSR level sampling) draws from an explicitly seeded Rng so
/// that experiments and tests are reproducible. Not cryptographically
/// secure; statistical quality is more than sufficient for sampling.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 raw bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's nearly-divisionless rejection method (unbiased).
  uint64_t NextUint64(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal variate (Box–Muller; one value per call, the twin is
  /// cached).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Zero-mean Laplace variate with the given scale b (variance 2 b^2).
  /// The noise primitive of the differential-privacy mechanism.
  double NextLaplace(double scale);

  /// Forks an independent stream: deterministic function of this
  /// generator's current state and `stream_id`. Useful for handing each
  /// silo / worker its own generator.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace fra

#endif  // FRA_UTIL_RANDOM_H_
