#ifndef FRA_UTIL_TRACE_H_
#define FRA_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/metrics.h"

namespace fra {

/// Query-path tracing: every stage of a query wraps itself in a
/// FRA_TRACE_SPAN. Each span always feeds the
/// `fra_span_duration_microseconds{span=...}` histogram of the default
/// registry; when the process-wide Tracer is additionally enabled at
/// runtime AND a trace is active on the thread (non-zero current trace
/// id — the provider samples one in
/// ServiceProvider::Options::trace_sample_every_n queries), the span is
/// also appended to a bounded in-memory buffer
/// tagged with the current trace id, so one query's full path (provider
/// dispatch -> network -> silo-local index work -> rescale) can be read
/// back as an ordered list of timed spans. Trace ids cross the wire in a
/// message envelope (see net/message.h and docs/wire_protocol.md), and
/// silo-side spans travel back as a trailing section on response frames,
/// so a TCP federation stitches both sides into ONE trace: the provider
/// ingests the silo's records under the same trace id with a
/// `silo=<id>` tag (SpanRecord::tag).
///
/// Building with -DFRA_ENABLE_TRACING=OFF compiles every FRA_TRACE_SPAN
/// to nothing; the metrics registry itself is not gated.

/// The trace id active on this thread; 0 = no active trace.
uint64_t CurrentTraceId();

/// Draws a fresh non-zero trace id (process-unique).
uint64_t NewTraceId();

/// RAII: installs `trace_id` as this thread's current trace id, restoring
/// the previous one on destruction. Installing 0 clears the context.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t trace_id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t previous_;
};

/// One completed span.
struct SpanRecord {
  uint64_t trace_id = 0;
  std::string name;
  uint64_t start_nanos = 0;  // steady-clock, comparable within a process
  uint64_t duration_nanos = 0;
  /// Where the span ran: empty for this process, "silo=<id>" for records
  /// ingested from a silo's response frame. Never crosses the wire — the
  /// receiving side tags at ingest, because only it knows which silo the
  /// exchange targeted.
  std::string tag;
};

/// RAII thread-local sink that captures completed spans instead of (not
/// in addition to) the Tracer ring, so a server handler can ship the
/// spans of one request back to its caller. Server transports install
/// one around HandleMessage; a span whose thread has a collector AND a
/// non-zero current trace id goes to the collector — the inbound trace
/// envelope is the propagation signal, no silo-side Tracer toggle
/// needed. Collectors nest (batch entries inside a batch handler); each
/// restores the previous one on destruction.
class SpanCollector {
 public:
  SpanCollector();
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// The collector installed on this thread, or nullptr.
  static SpanCollector* Current();

  void Add(SpanRecord record) {
    if (records_.empty()) records_.reserve(8);  // typical spans per request
    records_.push_back(std::move(record));
  }
  void AddAll(std::vector<SpanRecord> records);
  /// Drains the collected records (the collector stays installed).
  std::vector<SpanRecord> Take();
  size_t size() const { return records_.size(); }

 private:
  SpanCollector* previous_;
  std::vector<SpanRecord> records_;
};

/// Process-wide span buffer, indexed per trace. Disabled by default:
/// recording costs nothing until SetEnabled(true) (spans still update
/// histograms).
class Tracer {
 public:
  static Tracer& Get();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total span budget across all traces (whole oldest traces are
  /// dropped first). Default 8192.
  void SetCapacity(size_t capacity);

  /// Per-trace span cap: a trace id that never stops producing spans (a
  /// leaked ScopedTraceId, a runaway retry loop) drops its own oldest
  /// spans past this instead of evicting every other trace. Default 512.
  void SetPerTraceCapacity(size_t capacity);

  void Record(SpanRecord record);

  /// Bulk entry point for spans shipped from another process (the
  /// trailing span section of a response frame): stamps `tag` on every
  /// record whose tag is still empty, then records them. No-op while the
  /// tracer is disabled, mirroring locally produced spans.
  void Ingest(std::vector<SpanRecord> records, const std::string& tag);

  /// Spans recorded under `trace_id`, in start order. O(spans in that
  /// trace): traces are indexed, not scanned.
  std::vector<SpanRecord> SpansForTrace(uint64_t trace_id) const;
  /// Every buffered span, grouped by trace, oldest trace first.
  std::vector<SpanRecord> AllSpans() const;
  /// Trace ids currently present in the buffer, oldest first.
  std::vector<uint64_t> TraceIds() const;
  void Clear();

  /// The buffer as a Chrome trace-event JSON array (complete "X" events,
  /// one per span, ts/dur in microseconds, one tid per trace id) —
  /// loadable as-is in chrome://tracing or Perfetto. Ingested silo spans
  /// carry their tag in args. Served by the admin server's /tracez and
  /// written by examples/trace_dump.
  std::string ExportChromeTrace() const;

 private:
  Tracer() = default;
  void RecordLocked(SpanRecord record);
  void EvictLocked();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_ = 8192;
  size_t per_trace_capacity_ = 512;
  size_t total_spans_ = 0;
  // Insertion-ordered per-trace index: order_ lists trace ids oldest
  // first; spans_by_trace_ holds each trace's spans in record order.
  std::deque<uint64_t> order_;
  std::unordered_map<uint64_t, std::deque<SpanRecord>> spans_by_trace_;
};

/// RAII stopwatch behind FRA_TRACE_SPAN. `name` must outlive the span
/// (every call site passes a string literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fra

#if defined(FRA_ENABLE_TRACING) && FRA_ENABLE_TRACING
#define FRA_TRACE_CONCAT_INNER(a, b) a##b
#define FRA_TRACE_CONCAT(a, b) FRA_TRACE_CONCAT_INNER(a, b)
/// Times the enclosing scope as one span named `name` (a string literal).
#define FRA_TRACE_SPAN(name) \
  ::fra::TraceSpan FRA_TRACE_CONCAT(fra_trace_span_, __LINE__)(name)
#else
#define FRA_TRACE_SPAN(name) \
  do {                       \
  } while (false)
#endif

#endif  // FRA_UTIL_TRACE_H_
