#ifndef FRA_UTIL_TRACE_H_
#define FRA_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace fra {

/// Query-path tracing: every stage of a query wraps itself in a
/// FRA_TRACE_SPAN. Each span always feeds the
/// `fra_span_duration_microseconds{span=...}` histogram of the default
/// registry; when the process-wide Tracer is additionally enabled at
/// runtime, the span is also appended to a bounded in-memory ring buffer
/// tagged with the current trace id, so one query's full path (provider
/// dispatch -> network -> silo-local index work -> rescale) can be read
/// back as an ordered list of timed spans. Trace ids cross the wire in a
/// message envelope (see net/message.h and docs/wire_protocol.md), so a
/// TCP federation records correlated spans on both sides.
///
/// Building with -DFRA_ENABLE_TRACING=OFF compiles every FRA_TRACE_SPAN
/// to nothing; the metrics registry itself is not gated.

/// The trace id active on this thread; 0 = no active trace.
uint64_t CurrentTraceId();

/// Draws a fresh non-zero trace id (process-unique).
uint64_t NewTraceId();

/// RAII: installs `trace_id` as this thread's current trace id, restoring
/// the previous one on destruction. Installing 0 clears the context.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t trace_id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t previous_;
};

/// One completed span in the ring buffer.
struct SpanRecord {
  uint64_t trace_id = 0;
  std::string name;
  uint64_t start_nanos = 0;  // steady-clock, comparable within a process
  uint64_t duration_nanos = 0;
};

/// Process-wide span ring buffer. Disabled by default: recording costs
/// nothing until SetEnabled(true) (spans still update histograms).
class Tracer {
 public:
  static Tracer& Get();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ring capacity (oldest spans are dropped first). Default 8192.
  void SetCapacity(size_t capacity);

  void Record(SpanRecord record);

  /// Spans recorded under `trace_id`, in start order.
  std::vector<SpanRecord> SpansForTrace(uint64_t trace_id) const;
  std::vector<SpanRecord> AllSpans() const;
  /// Trace ids currently present in the buffer, oldest first.
  std::vector<uint64_t> TraceIds() const;
  void Clear();

  /// The buffer as a Chrome trace-event JSON array (complete "X" events,
  /// one per span, ts/dur in microseconds, one tid per trace id) —
  /// loadable as-is in chrome://tracing or Perfetto. Served by the admin
  /// server's /tracez and written by examples/trace_dump.
  std::string ExportChromeTrace() const;

 private:
  Tracer() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_ = 8192;
  std::deque<SpanRecord> spans_;
};

/// RAII stopwatch behind FRA_TRACE_SPAN. `name` must outlive the span
/// (every call site passes a string literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fra

#if defined(FRA_ENABLE_TRACING) && FRA_ENABLE_TRACING
#define FRA_TRACE_CONCAT_INNER(a, b) a##b
#define FRA_TRACE_CONCAT(a, b) FRA_TRACE_CONCAT_INNER(a, b)
/// Times the enclosing scope as one span named `name` (a string literal).
#define FRA_TRACE_SPAN(name) \
  ::fra::TraceSpan FRA_TRACE_CONCAT(fra_trace_span_, __LINE__)(name)
#else
#define FRA_TRACE_SPAN(name) \
  do {                       \
  } while (false)
#endif

#endif  // FRA_UTIL_TRACE_H_
