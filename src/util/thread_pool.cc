#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace fra {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    FRA_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
  return future;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ is set and no work remains.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = pool->num_threads();
  const size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    futures.push_back(pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace fra
