#ifndef FRA_UTIL_THREAD_POOL_H_
#define FRA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fra {

/// A fixed-size worker pool with a FIFO task queue.
///
/// The federation's query framework (paper Alg. 4) dispatches each FRA
/// query to its sampled silo through a pool like this, so that queries
/// landing on different silos execute in parallel — the source of the
/// paper's throughput gains.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  /// Enqueues `fn`; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) across `pool`, blocking until all complete.
/// Work is split into contiguous chunks, one per worker.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace fra

#endif  // FRA_UTIL_THREAD_POOL_H_
