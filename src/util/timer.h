#ifndef FRA_UTIL_TIMER_H_
#define FRA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fra {

/// A steady-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed whole nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fra

#endif  // FRA_UTIL_TIMER_H_
