#include "util/buffer.h"

#include <cstring>
#include <utility>

#include "util/metrics.h"

namespace fra {
namespace {

std::atomic<bool> g_pool_enabled{true};
std::atomic<BufferPool::MissSampleHook> g_miss_hook{nullptr};

struct PoolInstruments {
  Counter* acquire_hit;
  Counter* acquire_miss;
  Counter* release_pooled;
  Counter* release_discarded;
  Gauge* free_bytes;
  Gauge* free_buffers;
};

PoolInstruments& Instruments() {
  static PoolInstruments* instruments = [] {
    auto& registry = MetricsRegistry::Default();
    auto* i = new PoolInstruments{
        &registry.GetCounter("fra_bufpool_acquires_total",
                             {{"result", "hit"}}),
        &registry.GetCounter("fra_bufpool_acquires_total",
                             {{"result", "miss"}}),
        &registry.GetCounter("fra_bufpool_releases_total",
                             {{"result", "pooled"}}),
        &registry.GetCounter("fra_bufpool_releases_total",
                             {{"result", "discarded"}}),
        &registry.GetGauge("fra_bufpool_free_bytes"),
        &registry.GetGauge("fra_bufpool_free_buffers"),
    };
    return i;
  }();
  return *instruments;
}

}  // namespace

BufferPool& BufferPool::Default() {
  static BufferPool* pool = new BufferPool();
  return *pool;
}

void BufferPool::SetEnabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

bool BufferPool::enabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

BufferPool::BufferPool() = default;

int BufferPool::ClassForRequest(size_t bytes) {
  size_t cls_bytes = kMinClassBytes;
  for (int cls = 0; cls < kNumClasses; ++cls, cls_bytes <<= 1) {
    if (bytes <= cls_bytes) return cls;
  }
  return -1;
}

int BufferPool::ClassForRelease(size_t capacity) {
  // Outside the classed range — tiny vectors and giant one-off payloads
  // (full grid snapshots) — is never parked: pooling the former is
  // pointless, pooling the latter pins megabytes per slot.
  if (capacity < kMinClassBytes || capacity > kMaxClassBytes) return -1;
  size_t cls_bytes = kMinClassBytes;
  int best = -1;
  for (int cls = 0; cls < kNumClasses; ++cls, cls_bytes <<= 1) {
    if (cls_bytes <= capacity) best = cls;
  }
  return best;
}

std::vector<uint8_t> BufferPool::Acquire(size_t min_capacity) {
  if (enabled()) {
    const int first_cls = ClassForRequest(min_capacity);
    if (first_cls >= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      // Scan upward from the fitting class: a larger pooled buffer is
      // still a hit, just with slack capacity.
      for (int cls = first_cls; cls < kNumClasses; ++cls) {
        if (free_[cls].empty()) continue;
        std::vector<uint8_t> buf = std::move(free_[cls].back());
        free_[cls].pop_back();
        free_bytes_ -= buf.capacity();
        --free_buffers_;
        auto& instruments = Instruments();
        instruments.free_bytes->Set(static_cast<double>(free_bytes_));
        instruments.free_buffers->Set(static_cast<double>(free_buffers_));
        hits_.fetch_add(1, std::memory_order_relaxed);
        instruments.acquire_hit->Increment();
        buf.clear();
        return buf;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Instruments().acquire_miss->Increment();
  std::vector<uint8_t> fresh;
  // Round the fresh allocation up to its size class so the buffer is
  // poolable on Release: reserving the raw request (say 64 bytes) would
  // yield a capacity below the smallest class and the slab would be
  // discarded forever — a permanently cold pool for small frames.
  // (Disabled pool = the pre-pool allocator: reserve exactly what was
  // asked.)
  const int cls = enabled() ? ClassForRequest(min_capacity) : -1;
  const size_t reserved = cls >= 0 ? (kMinClassBytes << cls) : min_capacity;
  if (MissSampleHook hook = g_miss_hook.load(std::memory_order_acquire)) {
    hook(reserved);
  }
  fresh.reserve(reserved);
  return fresh;
}

void BufferPool::SetMissSampleHook(MissSampleHook hook) {
  g_miss_hook.store(hook, std::memory_order_release);
}

void BufferPool::Release(std::vector<uint8_t>&& buf) {
  std::vector<uint8_t> victim = std::move(buf);
  const int cls = enabled() ? ClassForRelease(victim.capacity()) : -1;
  if (cls >= 0) {
    // Poison the leading bytes so a use-after-release reads 0xDD instead
    // of the old frame. size() stays intact while pooled (cleared on
    // Acquire), which keeps both the poisoning write and any stale read
    // inside the vector's ASan-annotated region.
    std::memset(victim.data(), 0xDD, victim.size() < 64 ? victim.size() : 64);
    std::lock_guard<std::mutex> lock(mu_);
    if (free_[cls].size() < kMaxFreePerClass &&
        free_bytes_ + victim.capacity() <= kMaxTotalFreeBytes) {
      free_bytes_ += victim.capacity();
      ++free_buffers_;
      free_[cls].push_back(std::move(victim));
      auto& instruments = Instruments();
      instruments.free_bytes->Set(static_cast<double>(free_bytes_));
      instruments.free_buffers->Set(static_cast<double>(free_buffers_));
      pooled_.fetch_add(1, std::memory_order_relaxed);
      instruments.release_pooled->Increment();
      return;
    }
  }
  discarded_.fetch_add(1, std::memory_order_relaxed);
  Instruments().release_discarded->Increment();
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.pooled = pooled_.load(std::memory_order_relaxed);
  s.discarded = discarded_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.free_bytes = free_bytes_;
  s.free_buffers = free_buffers_;
  return s;
}

BufferRef BufferRef::Wrap(std::vector<uint8_t> bytes) {
  BufferRef ref;
  auto* owned = new std::vector<uint8_t>(std::move(bytes));
  ref.owner_ = std::shared_ptr<const std::vector<uint8_t>>(
      owned, [](const std::vector<uint8_t>* v) {
        BufferPool::Default().Release(
            std::move(*const_cast<std::vector<uint8_t>*>(v)));
        delete v;
      });
  ref.data_ = ref.owner_->data();
  ref.size_ = ref.owner_->size();
  return ref;
}

BufferRef BufferRef::Slice(size_t offset, size_t length) const {
  BufferRef out;
  out.owner_ = owner_;
  if (offset > size_) offset = size_;
  if (length > size_ - offset) length = size_ - offset;
  out.data_ = data_ + offset;
  out.size_ = length;
  return out;
}

}  // namespace fra
