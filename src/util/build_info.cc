#include "util/build_info.h"

#include <cstdlib>

#include "util/metrics.h"

namespace fra {

std::string BuildGitSha() {
  const char* env = std::getenv("FRA_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
#ifdef FRA_GIT_SHA
  return FRA_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string BuildTypeName() {
#ifdef FRA_BUILD_TYPE
  return FRA_BUILD_TYPE;
#else
  return "unknown";
#endif
}

bool BuildTracingCompiled() {
#if defined(FRA_ENABLE_TRACING) && FRA_ENABLE_TRACING
  return true;
#else
  return false;
#endif
}

void RegisterBuildInfoMetric() {
  MetricsRegistry::Default()
      .GetGauge("fra_build_info",
                {{"git_sha", BuildGitSha()},
                 {"build_type", BuildTypeName()},
                 {"tracing", BuildTracingCompiled() ? "on" : "off"}})
      .Set(1.0);
}

}  // namespace fra
