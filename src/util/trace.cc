#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>

namespace fra {
namespace {

thread_local uint64_t t_current_trace_id = 0;
std::atomic<uint64_t> g_next_trace_id{1};

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

uint64_t NowNanos(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

uint64_t CurrentTraceId() { return t_current_trace_id; }

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceId::ScopedTraceId(uint64_t trace_id)
    : previous_(t_current_trace_id) {
  t_current_trace_id = trace_id;
}

ScopedTraceId::~ScopedTraceId() { t_current_trace_id = previous_; }

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  while (spans_.size() > capacity_) spans_.pop_front();
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) spans_.pop_front();
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SpanRecord& span : spans_) {
      if (span.trace_id == trace_id) out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_nanos < b.start_nanos;
            });
  return out;
}

std::vector<SpanRecord> Tracer::AllSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

std::vector<uint64_t> Tracer::TraceIds() const {
  std::vector<uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& span : spans_) {
    if (std::find(out.begin(), out.end(), span.trace_id) == out.end()) {
      out.push_back(span.trace_id);
    }
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string Tracer::ExportChromeTrace() const {
  const std::vector<SpanRecord> spans = AllSpans();
  std::ostringstream out;
  // Fixed notation: span starts are steady-clock nanoseconds, large
  // enough that default formatting would go scientific and drop the
  // sub-microsecond digits the viewer sorts by.
  out << std::fixed << std::setprecision(3);
  out << "[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    // Complete ("X") events; ts/dur are microseconds by the format's
    // definition. One synthetic tid per trace id lines every trace up as
    // its own track in the viewer.
    out << "\n  {\"name\": \"" << EscapeJson(span.name)
        << "\", \"cat\": \"fra\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << span.trace_id << ", \"ts\": "
        << static_cast<double>(span.start_nanos) / 1e3 << ", \"dur\": "
        << static_cast<double>(span.duration_nanos) / 1e3
        << ", \"args\": {\"trace_id\": " << span.trace_id << "}}";
  }
  out << "\n]\n";
  return out.str();
}

TraceSpan::~TraceSpan() {
  const auto end = std::chrono::steady_clock::now();
  const uint64_t duration_nanos = NowNanos(end) - NowNanos(start_);
  MetricsRegistry::Default()
      .GetHistogram("fra_span_duration_microseconds", {{"span", name_}})
      .Observe(static_cast<double>(duration_nanos) / 1e3);
  Tracer& tracer = Tracer::Get();
  if (tracer.enabled()) {
    SpanRecord record;
    record.trace_id = CurrentTraceId();
    record.name = name_;
    record.start_nanos = NowNanos(start_);
    record.duration_nanos = duration_nanos;
    tracer.Record(std::move(record));
  }
}

}  // namespace fra
