#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>
#include <utility>

namespace fra {
namespace {

thread_local uint64_t t_current_trace_id = 0;
thread_local SpanCollector* t_current_collector = nullptr;
std::atomic<uint64_t> g_next_trace_id{1};

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

uint64_t NowNanos(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

uint64_t CurrentTraceId() { return t_current_trace_id; }

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceId::ScopedTraceId(uint64_t trace_id)
    : previous_(t_current_trace_id) {
  t_current_trace_id = trace_id;
}

ScopedTraceId::~ScopedTraceId() { t_current_trace_id = previous_; }

SpanCollector::SpanCollector() : previous_(t_current_collector) {
  t_current_collector = this;
}

SpanCollector::~SpanCollector() { t_current_collector = previous_; }

SpanCollector* SpanCollector::Current() { return t_current_collector; }

void SpanCollector::AddAll(std::vector<SpanRecord> records) {
  if (records_.empty()) {
    records_ = std::move(records);
    return;
  }
  records_.reserve(records_.size() + records.size());
  for (SpanRecord& record : records) records_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanCollector::Take() {
  std::vector<SpanRecord> out;
  out.swap(records_);
  return out;
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  EvictLocked();
}

void Tracer::SetPerTraceCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  per_trace_capacity_ = capacity > 0 ? capacity : 1;
  for (auto& [trace_id, spans] : spans_by_trace_) {
    while (spans.size() > per_trace_capacity_) {
      spans.pop_front();
      --total_spans_;
    }
  }
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(std::move(record));
}

void Tracer::Ingest(std::vector<SpanRecord> records, const std::string& tag) {
  if (!enabled() || records.empty()) return;
  if (!tag.empty()) {
    for (SpanRecord& record : records) {
      if (record.tag.empty()) record.tag = tag;
    }
  }
  // A thread batching spans for an active trace (ServiceProvider wraps
  // each query in a collector) takes the ring lock once at drain time
  // instead of once per ingested response.
  SpanCollector* collector = SpanCollector::Current();
  if (collector != nullptr && CurrentTraceId() != 0) {
    collector->AddAll(std::move(records));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (SpanRecord& record : records) {
    RecordLocked(std::move(record));
  }
}

void Tracer::RecordLocked(SpanRecord record) {
  auto it = spans_by_trace_.find(record.trace_id);
  if (it == spans_by_trace_.end()) {
    it = spans_by_trace_.emplace(record.trace_id, std::deque<SpanRecord>())
             .first;
    order_.push_back(record.trace_id);
  }
  std::deque<SpanRecord>& spans = it->second;
  if (spans.size() >= per_trace_capacity_) {
    // A trace that never completes bounds only itself: drop ITS oldest
    // span rather than growing without limit or starving other traces.
    spans.pop_front();
    --total_spans_;
  }
  spans.push_back(std::move(record));
  ++total_spans_;
  EvictLocked();
}

void Tracer::EvictLocked() {
  while (total_spans_ > capacity_) {
    if (order_.size() <= 1) {
      // Only one trace buffered: trim its front instead of wiping it.
      std::deque<SpanRecord>& spans = spans_by_trace_.begin()->second;
      while (total_spans_ > capacity_ && !spans.empty()) {
        spans.pop_front();
        --total_spans_;
      }
      return;
    }
    const uint64_t oldest = order_.front();
    order_.pop_front();
    const auto it = spans_by_trace_.find(oldest);
    total_spans_ -= it->second.size();
    spans_by_trace_.erase(it);
  }
}

std::vector<SpanRecord> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = spans_by_trace_.find(trace_id);
    if (it != spans_by_trace_.end()) {
      out.assign(it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_nanos < b.start_nanos;
            });
  return out;
}

std::vector<SpanRecord> Tracer::AllSpans() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(total_spans_);
  for (const uint64_t trace_id : order_) {
    const auto it = spans_by_trace_.find(trace_id);
    if (it == spans_by_trace_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<uint64_t> Tracer::TraceIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<uint64_t>(order_.begin(), order_.end());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_by_trace_.clear();
  order_.clear();
  total_spans_ = 0;
}

std::string Tracer::ExportChromeTrace() const {
  const std::vector<SpanRecord> spans = AllSpans();
  std::ostringstream out;
  // Fixed notation: span starts are steady-clock nanoseconds, large
  // enough that default formatting would go scientific and drop the
  // sub-microsecond digits the viewer sorts by.
  out << std::fixed << std::setprecision(3);
  out << "[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    // Complete ("X") events; ts/dur are microseconds by the format's
    // definition. One synthetic tid per trace id lines every trace up as
    // its own track in the viewer.
    out << "\n  {\"name\": \"" << EscapeJson(span.name)
        << "\", \"cat\": \"fra\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << span.trace_id << ", \"ts\": "
        << static_cast<double>(span.start_nanos) / 1e3 << ", \"dur\": "
        << static_cast<double>(span.duration_nanos) / 1e3
        << ", \"args\": {\"trace_id\": " << span.trace_id;
    if (!span.tag.empty()) {
      out << ", \"origin\": \"" << EscapeJson(span.tag) << "\"";
    }
    out << "}}";
  }
  out << "\n]\n";
  return out.str();
}

namespace {

// Span names are string literals, so their addresses identify the call
// site: resolve the histogram once per (thread, site) and update
// lock-free afterwards instead of paying a label allocation plus the
// registry lock on every span destruction.
Histogram& SpanHistogram(const char* name) {
  thread_local std::unordered_map<const void*, Histogram*> cache;
  auto [it, inserted] = cache.try_emplace(name, nullptr);
  if (inserted) {
    it->second = &MetricsRegistry::Default().GetHistogram(
        "fra_span_duration_microseconds", {{"span", name}});
  }
  return *it->second;
}

}  // namespace

TraceSpan::~TraceSpan() {
  const auto end = std::chrono::steady_clock::now();
  const uint64_t duration_nanos = NowNanos(end) - NowNanos(start_);
  SpanHistogram(name_).Observe(static_cast<double>(duration_nanos) / 1e3);
  SpanCollector* collector = SpanCollector::Current();
  const uint64_t trace_id = CurrentTraceId();
  Tracer& tracer = Tracer::Get();
  if (collector != nullptr && trace_id != 0) {
    // Inside a server handler serving a traced request: the span belongs
    // to the caller's trace, not this process's ring.
    SpanRecord record;
    record.trace_id = trace_id;
    record.name = name_;
    record.start_nanos = NowNanos(start_);
    record.duration_nanos = duration_nanos;
    collector->Add(std::move(record));
  } else if (trace_id != 0 && tracer.enabled()) {
    SpanRecord record;
    record.trace_id = trace_id;
    record.name = name_;
    record.start_nanos = NowNanos(start_);
    record.duration_nanos = duration_nanos;
    tracer.Record(std::move(record));
  }
}

}  // namespace fra
