#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace fra {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // consecutive zeros, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  FRA_CHECK_GT(bound, 0ULL);
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double resolution.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  FRA_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  FRA_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLaplace(double scale) {
  FRA_CHECK_GT(scale, 0.0);
  // Inverse CDF on u in (-1/2, 1/2): -b * sgn(u) * ln(1 - 2|u|).
  double u = NextDouble() - 0.5;
  while (u == 0.5 || u == -0.5) u = NextDouble() - 0.5;
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the child id with fresh output so sibling forks are independent.
  const uint64_t base = NextUint64();
  uint64_t sm = base ^ (stream_id * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL);
  return Rng(SplitMix64(&sm));
}

}  // namespace fra
