#ifndef FRA_UTIL_QUERY_COST_H_
#define FRA_UTIL_QUERY_COST_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace fra {

/// Per-query resource attribution (docs/observability.md, "Query cost
/// ledger"): where one query's resources actually went, measured at the
/// points where they are spent.
///
///   cpu_micros        CLOCK_THREAD_CPUTIME_ID deltas summed over every
///                     thread that worked on the query (the Execute
///                     thread plus each fan-out leg; in-process silo
///                     handlers run on those same threads, so their CPU
///                     is attributed too).
///   bytes_to_silos    encoded request payload bytes shipped to silos.
///   bytes_from_silos  response payload bytes received back.
///   silo_rpcs         data-plane exchanges (a coalesced entry counts as
///                     one RPC — it is one answered request).
///   queue_wait_micros time the query's requests sat staged in the
///                     coalescer before their batch flushed.
struct QueryCost {
  double cpu_micros = 0.0;
  uint64_t bytes_to_silos = 0;
  uint64_t bytes_from_silos = 0;
  uint32_t silo_rpcs = 0;
  double queue_wait_micros = 0.0;
};

/// This thread's consumed CPU time (CLOCK_THREAD_CPUTIME_ID), in
/// microseconds. Deltas of this clock measure work, not waiting.
double ThreadCpuMicros();

/// Per-query scratch accumulating one query's cost while it executes,
/// installed as a thread-local stack exactly like QueryFlightLog
/// (obs/flight_recorder.h): the provider's Execute constructs one, and
/// every cost-bearing point on a thread where a tracker is current notes
/// into it. Note* methods are thread safe (fan-out legs are concurrent,
/// and a coalescer flush reports queue-wait from its own thread);
/// install/uninstall follow RAII nesting per thread.
class QueryCostTracker {
 public:
  QueryCostTracker();
  ~QueryCostTracker();

  QueryCostTracker(const QueryCostTracker&) = delete;
  QueryCostTracker& operator=(const QueryCostTracker&) = delete;

  /// The innermost tracker installed on this thread, or nullptr.
  static QueryCostTracker* Current();

  void NoteSiloCall(uint64_t bytes_out, uint64_t bytes_in);
  void NoteQueueWait(double micros);
  void AddCpuMicros(double micros);

  QueryCost Snapshot() const;

 private:
  QueryCostTracker* previous_;
  mutable std::mutex mu_;
  QueryCost cost_;
};

/// Re-installs an existing tracker as this thread's current one (fan-out
/// legs run on pool threads) and attributes the scope's thread-CPU delta
/// to it on destruction. A null tracker is fine — the scope then just
/// masks any outer tracker and measures nothing.
class QueryCostScope {
 public:
  explicit QueryCostScope(QueryCostTracker* tracker);
  ~QueryCostScope();

  QueryCostScope(const QueryCostScope&) = delete;
  QueryCostScope& operator=(const QueryCostScope&) = delete;

 private:
  QueryCostTracker* tracker_;
  QueryCostTracker* previous_;
  double cpu_start_ = 0.0;
};

/// Renders a QueryCost as the compact JSON object embedded in flight
/// records and statusz.
std::string QueryCostToJson(const QueryCost& cost);

}  // namespace fra

#endif  // FRA_UTIL_QUERY_COST_H_
