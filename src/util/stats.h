#ifndef FRA_UTIL_STATS_H_
#define FRA_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fra {

/// Single-pass mean/variance accumulator (Welford's algorithm).
/// Numerically stable for long streams of relative errors / latencies.
class RunningStat {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (Chan's parallel formula).
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  /// Sample variance (divides by n - 1); 0 for fewer than two samples.
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0, 1]) of `samples` using linear
/// interpolation between order statistics. Copies and sorts; intended for
/// end-of-run reporting, not hot paths. Returns 0 for an empty vector.
double Quantile(std::vector<double> samples, double q);

}  // namespace fra

#endif  // FRA_UTIL_STATS_H_
