#ifndef FRA_UTIL_SERIALIZE_H_
#define FRA_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace fra {

/// Appends fixed-width little-endian primitives to a growable buffer.
///
/// The federation layer serialises every provider<->silo message through
/// this writer so that communication cost is measured on real encoded
/// bytes, mirroring how the paper reports transferred volume.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Size hint: pre-allocates room for `additional_bytes` more bytes on
  /// top of what is already buffered. Serializers that know their encoded
  /// size up front (grid payloads, batch frames, cell lists) reserve once
  /// instead of growing the buffer through repeated reallocation.
  void Reserve(size_t additional_bytes) {
    buffer_.reserve(buffer_.size() + additional_bytes);
  }

  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    AppendRaw(s.data(), s.size());
  }

  /// Length-prefixed (u32) vector of doubles.
  void WriteDoubleVector(const std::vector<double>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(double));
  }

  void AppendRaw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + len);
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

  /// Releases the underlying buffer.
  std::vector<uint8_t> Release() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads primitives written by BinaryWriter. Every read is bounds-checked
/// and returns OutOfRange on truncated input, so malformed messages are
/// rejected instead of read out of bounds.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    FRA_RETURN_NOT_OK(ReadU32(&len));
    if (len > Remaining()) {
      return Status::OutOfRange("truncated string payload");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  /// Reads exactly `len` raw bytes (bounds-checked) into `out`.
  Status ReadBytes(size_t len, std::vector<uint8_t>* out) {
    if (len > Remaining()) {
      return Status::OutOfRange("truncated byte payload");
    }
    out->assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return Status::OK();
  }

  Status ReadDoubleVector(std::vector<double>* out) {
    uint32_t len = 0;
    FRA_RETURN_NOT_OK(ReadU32(&len));
    if (static_cast<size_t>(len) * sizeof(double) > Remaining()) {
      return Status::OutOfRange("truncated double vector payload");
    }
    out->resize(len);
    if (len > 0) {
      std::memcpy(out->data(), data_ + pos_, len * sizeof(double));
      pos_ += len * sizeof(double);
    }
    return Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status ReadRaw(void* out, size_t len) {
    if (len > Remaining()) {
      return Status::OutOfRange("truncated message: need " +
                                std::to_string(len) + " bytes, have " +
                                std::to_string(Remaining()));
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fra

#endif  // FRA_UTIL_SERIALIZE_H_
