#ifndef FRA_UTIL_SERIALIZE_H_
#define FRA_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fra {

/// Appends fixed-width little-endian primitives to a growable buffer.
///
/// The federation layer serialises every provider<->silo message through
/// this writer so that communication cost is measured on real encoded
/// bytes, mirroring how the paper reports transferred volume.
///
/// Writers come in two flavours: the default constructor allocates a
/// fresh heap buffer; `Pooled()` draws the backing storage from
/// BufferPool::Default() so hot-path serialisers (grid payloads, batch
/// frames, span sections) recycle slabs instead of hitting malloc per
/// frame. Either way Release() hands the caller the vector — pooled
/// buffers return to the pool once the consumer releases them (e.g. via
/// BufferRef::Wrap or an explicit BufferPool Release).
class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Arena-backed writer: the buffer comes from BufferPool::Default()
  /// with at least `capacity_hint` bytes of capacity.
  static BinaryWriter Pooled(size_t capacity_hint = 0) {
    BinaryWriter w;
    w.buffer_ = BufferPool::Default().Acquire(capacity_hint);
    return w;
  }

  /// Size hint: pre-allocates room for `additional_bytes` more bytes on
  /// top of what is already buffered. Serializers that know their encoded
  /// size up front (grid payloads, batch frames, cell lists) reserve once
  /// instead of growing the buffer through repeated reallocation.
  void Reserve(size_t additional_bytes) {
    buffer_.reserve(buffer_.size() + additional_bytes);
  }

  void WriteU8(uint8_t v) {
    if (failed_) return;
    buffer_.push_back(v);
  }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }

  /// True when `element_count` fits the wire format's u32 length prefix.
  static bool FitsLengthPrefix(size_t element_count) {
    return element_count <= std::numeric_limits<uint32_t>::max();
  }

  /// Length-prefixed (u32) byte string. A string whose size does not fit
  /// the u32 prefix poisons the writer (see status()) instead of silently
  /// wrapping the length.
  void WriteString(const std::string& s) {
    WriteLengthPrefixed(s.data(), s.size());
  }

  /// Length-prefixed (u32 element count) vector of doubles.
  void WriteDoubleVector(const std::vector<double>& v) {
    if (!FitsLengthPrefix(v.size())) {
      Poison("double vector of " + std::to_string(v.size()) +
             " elements overflows the u32 length prefix");
      return;
    }
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(double));
  }

  /// u32 length prefix followed by `len` raw bytes. Validates the length
  /// before touching `data`, so an overflowing encode fails fast with a
  /// Status instead of wrapping the prefix mod 2^32.
  void WriteLengthPrefixed(const void* data, size_t len) {
    if (!FitsLengthPrefix(len)) {
      Poison("byte string of " + std::to_string(len) +
             " bytes overflows the u32 length prefix");
      return;
    }
    WriteU32(static_cast<uint32_t>(len));
    AppendRaw(data, len);
  }

  void AppendRaw(const void* data, size_t len) {
    if (failed_) return;
    const auto* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + len);
  }

  /// Overwrites 4 previously written bytes at `offset` with `v`
  /// (little-endian). Used to backpatch a length prefix once the framed
  /// payload has been serialised in place, avoiding an encode-then-copy.
  void PatchU32(size_t offset, uint32_t v) {
    if (failed_ || offset + sizeof(v) > buffer_.size()) return;
    std::memcpy(buffer_.data() + offset, &v, sizeof(v));
  }

  /// OK until a write overflowed a length prefix; once failed, every
  /// subsequent write is a no-op so a poisoned buffer never reaches the
  /// wire half-encoded.
  const Status& status() const { return status_; }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

  /// Releases the underlying buffer.
  std::vector<uint8_t> Release() { return std::move(buffer_); }

 private:
  void Poison(const std::string& message) {
    if (failed_) return;
    failed_ = true;
    status_ = Status::InvalidArgument(message);
  }

  std::vector<uint8_t> buffer_;
  bool failed_ = false;
  Status status_ = Status::OK();
};

/// Reads primitives written by BinaryWriter. Every read is bounds-checked
/// and returns OutOfRange on truncated input, so malformed messages are
/// rejected instead of read out of bounds.
///
/// A reader never owns its input: constructing one from a ConstByteSpan
/// (or raw pointer) parses borrowed bytes in place, which is how the
/// in-process transport decodes a provider request with zero copies.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}
  explicit BinaryReader(ConstByteSpan span)
      : BinaryReader(span.data(), span.size()) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    FRA_RETURN_NOT_OK(ReadU32(&len));
    if (len > Remaining()) {
      return Status::OutOfRange("truncated string payload");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  /// Reads exactly `len` raw bytes (bounds-checked) into `out`.
  Status ReadBytes(size_t len, std::vector<uint8_t>* out) {
    if (len > Remaining()) {
      return Status::OutOfRange("truncated byte payload");
    }
    out->assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return Status::OK();
  }

  /// Borrowed-view variant of ReadBytes: `out` aliases the reader's
  /// input and is only valid while that input lives.
  Status ReadBytesView(size_t len, ConstByteSpan* out) {
    if (len > Remaining()) {
      return Status::OutOfRange("truncated byte payload");
    }
    *out = ConstByteSpan(data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status ReadDoubleVector(std::vector<double>* out) {
    uint32_t len = 0;
    FRA_RETURN_NOT_OK(ReadU32(&len));
    if (static_cast<size_t>(len) * sizeof(double) > Remaining()) {
      return Status::OutOfRange("truncated double vector payload");
    }
    out->resize(len);
    if (len > 0) {
      std::memcpy(out->data(), data_ + pos_, len * sizeof(double));
      pos_ += len * sizeof(double);
    }
    return Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status ReadRaw(void* out, size_t len) {
    if (len > Remaining()) {
      return Status::OutOfRange("truncated message: need " +
                                std::to_string(len) + " bytes, have " +
                                std::to_string(Remaining()));
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fra

#endif  // FRA_UTIL_SERIALIZE_H_
