#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace fra {
namespace {

// Shortest float formatting that round-trips typical bucket bounds and
// sums without scientific noise ("1", "2.5", "1000000").
std::string FormatNumber(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", v);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%g", v);
  }
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// {a="x",b="y"} including braces; "" for an empty label set.
std::string PrometheusLabels(const MetricLabels& labels,
                             const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonLabels(const MetricLabels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += JsonString(key) + ":" + JsonString(value);
  }
  out.push_back('}');
  return out;
}

// Prometheus HELP escaping: only backslash and newline are special on a
// HELP line (label-value escaping additionally quotes '"').
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Help text for every metric family the library itself registers, so the
// exposition carries `# HELP` without every call site threading a string
// through Get*. Families created by embedders pick theirs up via
// MetricsRegistry::SetHelp. Returns "" for unknown names.
const char* BuiltinHelp(const std::string& name) {
  static const std::map<std::string, const char*> kHelp = {
      {"fra_audit_failures_total",
       "Background accuracy audits whose EXACT replay failed"},
      {"fra_audits_total", "Background accuracy audits by outcome"},
      {"fra_batch_flushes_total",
       "Coalescer batch flushes by trigger (size/deadline/shutdown)"},
      {"fra_batch_size", "Requests per flushed coalescer batch"},
      {"fra_build_info",
       "Constant 1; build metadata (git sha, build type, tracing) as labels"},
      {"fra_bufpool_acquires_total",
       "Buffer-pool acquires by result (hit=reused slab, miss=fresh alloc)"},
      {"fra_bufpool_free_buffers", "Buffers currently parked on pool freelists"},
      {"fra_bufpool_free_bytes",
       "Capacity in bytes currently parked on pool freelists"},
      {"fra_bufpool_releases_total",
       "Buffer-pool releases by result (pooled=kept, discarded=freed)"},
      {"fra_cache_evictions_total", "Provider cache LRU evictions by layer"},
      {"fra_cache_hits_total", "Provider cache hits by layer"},
      {"fra_cache_invalidations_total",
       "Tile-cache invalidations from data-epoch bumps"},
      {"fra_cache_misses_total", "Provider cache misses by layer"},
      {"fra_cache_tile_coverage",
       "Fraction of needed tiles already cached per tile-served query"},
      {"fra_coalescer_staged_requests",
       "Requests currently staged in per-silo coalescing buffers"},
      {"fra_comm_bytes_total",
       "Application payload bytes exchanged with silos by direction"},
      {"fra_comm_messages_total", "Messages exchanged with silos"},
      {"fra_estimate_relative_error",
       "Relative error of audited approximate answers"},
      {"fra_federation_silos", "Silos registered with the provider"},
      {"fra_frame_bytes_total",
       "Frame-layer bytes moved by the reactor transport by direction"},
      {"fra_guarantee_violations_total",
       "Audited answers exceeding the (eps, delta) error bound"},
      {"fra_log_records_dropped_total",
       "Log records suppressed by per-call-site rate limiting, by level"},
      {"fra_log_records_total", "Log records accepted into the ring by level"},
      {"fra_profile_alloc_samples_total",
       "Buffer-pool miss stacks sampled by the profiler, by size class"},
      {"fra_profile_overruns_total",
       "Profiler samples lost to ring overruns between drains"},
      {"fra_profile_running_hz",
       "Sampling rate of the continuous profiler (0 while stopped)"},
      {"fra_profile_samples_total", "Stack samples captured by the profiler"},
      {"fra_provider_data_epoch",
       "Data epoch of the provider cache (bumped by SyncGrids)"},
      {"fra_provider_grid_memory_bytes",
       "Provider-side grid index memory (g_0 plus retained silo grids)"},
      {"fra_queries_total", "FRA queries executed by algorithm and result"},
      {"fra_query_cost_bytes_total",
       "Wire payload bytes attributed to queries by class and direction"},
      {"fra_query_cost_cpu_microseconds",
       "Thread-CPU time attributed per query by class"},
      {"fra_query_cost_queue_wait_microseconds",
       "Coalescer staging wait attributed per query by class"},
      {"fra_query_cost_silo_cpu_microseconds",
       "Silo-side CPU time per handled message, by silo"},
      {"fra_query_cost_silo_rpcs_total",
       "Data-plane silo exchanges attributed to queries by class"},
      {"fra_query_latency_microseconds",
       "End-to-end FRA query latency by algorithm"},
      {"fra_reactor_dispatch_microseconds",
       "Time an event loop spends running handlers, tasks and timers per "
       "wakeup"},
      {"fra_reactor_epoll_wait_microseconds",
       "Time an event loop spends blocked in epoll_wait per iteration"},
      {"fra_reactor_loop_lag_microseconds",
       "Delay between submitting a task to an event loop and running it"},
      {"fra_reactor_pending_timers",
       "Timers pending on an event loop's timer wheel"},
      {"fra_reactor_timer_drift_microseconds",
       "How late timer-wheel callbacks fire past their deadline"},
      {"fra_silo_health_state",
       "Health tracker state per silo (0=up 1=degraded 2=down 3=probing)"},
      {"fra_silo_latency_ewma_micros",
       "EWMA of per-silo request latency from the health tracker"},
      {"fra_silo_requests_total", "Provider-to-silo requests by outcome"},
      {"fra_silo_timeouts_total", "Provider-to-silo requests that timed out"},
      {"fra_span_duration_microseconds", "Trace span durations by span name"},
      {"fra_tcp_backpressure_bytes",
       "Unsent bytes buffered toward each silo on the reactor client"},
      {"fra_tcp_batch_frames_total",
       "Coalesced batch frames shipped per silo"},
      {"fra_tcp_inflight_batches", "Batch frames awaiting a silo response"},
      {"fra_tcp_pipeline_depth",
       "Requests in flight on one client connection when another is "
       "pipelined"},
      {"fra_tcp_pool_busy_connections",
       "Connections of a silo pool currently carrying a request"},
      {"fra_tcp_pool_open_connections", "Open connections per silo pool"},
      {"fra_tcp_server_backpressure_bytes",
       "Unsent response bytes buffered across silo-server connections"},
      {"fra_tcp_server_pipeline_depth",
       "Requests in flight on one silo-server connection when another "
       "arrives"},
  };
  const auto it = kHelp.find(name);
  return it != kHelp.end() ? it->second : "";
}

MetricLabels SortedLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Canonical instance key: "k1=v1\x1fk2=v2" over sorted labels.
std::string LabelKey(const MetricLabels& sorted) {
  std::string key;
  for (const auto& [k, v] : sorted) {
    key += k;
    key.push_back('=');
    key += v;
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  FRA_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  FRA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be increasing";
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based ceil, matching "q of the
  // observations are <= the answer").
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // Target lies in bucket i: interpolate between its bounds.
    if (i == bounds_.size()) return bounds_.back();  // +Inf bucket: clamp
    const double hi = bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double within = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
    return lo + (hi - lo) * within;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

const std::vector<double>& Histogram::DefaultLatencyBucketsMicros() {
  static const std::vector<double>* kBuckets = new std::vector<double>{
      1,    2.5,   5,     10,     25,     50,     100,     250,     500,
      1000, 2500,  5000,  10000,  25000,  50000,  100000,  250000,  500000,
      1e6,  2.5e6};
  return *kBuckets;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instance& MetricsRegistry::GetInstance(
    const std::string& name, const MetricLabels& labels, Kind kind,
    const std::vector<double>* bounds) {
  const MetricLabels sorted = SortedLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.instances.empty()) {
    family.kind = kind;
    if (bounds != nullptr) family.bounds = *bounds;
  }
  FRA_CHECK(family.kind == kind)
      << "metric '" << name << "' registered with a different type";
  auto [it, inserted] = family.instances.try_emplace(LabelKey(sorted));
  Instance& instance = it->second;
  if (inserted) {
    instance.labels = sorted;
    switch (kind) {
      case Kind::kCounter:
        instance.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        instance.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        instance.histogram = std::make_unique<Histogram>(family.bounds);
        break;
    }
  }
  return instance;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  return *GetInstance(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  return *GetInstance(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         const std::vector<double>& bounds) {
  return *GetInstance(name, labels, Kind::kHistogram, &bounds).histogram;
}

std::vector<std::pair<MetricLabels, const Histogram*>>
MetricsRegistry::HistogramsNamed(const std::string& name) const {
  std::vector<std::pair<MetricLabels, const Histogram*>> out;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kHistogram) {
    return out;
  }
  for (const auto& [key, instance] : it->second.instances) {
    out.emplace_back(instance.labels, instance.histogram.get());
  }
  return out;
}

std::vector<std::pair<MetricLabels, const Counter*>>
MetricsRegistry::CountersNamed(const std::string& name) const {
  std::vector<std::pair<MetricLabels, const Counter*>> out;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) {
    return out;
  }
  for (const auto& [key, instance] : it->second.instances) {
    out.emplace_back(instance.labels, instance.counter.get());
  }
  return out;
}

std::vector<std::pair<MetricLabels, const Gauge*>>
MetricsRegistry::GaugesNamed(const std::string& name) const {
  std::vector<std::pair<MetricLabels, const Gauge*>> out;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kGauge) {
    return out;
  }
  for (const auto& [key, instance] : it->second.instances) {
    out.emplace_back(instance.labels, instance.gauge.get());
  }
  return out;
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = help;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    const auto override_it = help_.find(name);
    const std::string help =
        override_it != help_.end() ? override_it->second : BuiltinHelp(name);
    if (!help.empty()) {
      out << "# HELP " << name << " " << EscapeHelp(help) << "\n";
    }
    switch (family.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        for (const auto& [key, instance] : family.instances) {
          out << name << PrometheusLabels(instance.labels) << " "
              << instance.counter->Value() << "\n";
        }
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [key, instance] : family.instances) {
          out << name << PrometheusLabels(instance.labels) << " "
              << FormatNumber(instance.gauge->Value()) << "\n";
        }
        break;
      case Kind::kHistogram:
        out << "# TYPE " << name << " histogram\n";
        for (const auto& [key, instance] : family.instances) {
          const Histogram& h = *instance.histogram;
          const std::vector<uint64_t> counts = h.BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            const std::string le =
                i < h.bounds().size() ? FormatNumber(h.bounds()[i]) : "+Inf";
            out << name << "_bucket"
                << PrometheusLabels(instance.labels, "le=\"" + le + "\"")
                << " " << cumulative << "\n";
          }
          out << name << "_sum" << PrometheusLabels(instance.labels) << " "
              << FormatNumber(h.Sum()) << "\n";
          out << name << "_count" << PrometheusLabels(instance.labels) << " "
              << h.Count() << "\n";
        }
        break;
    }
  }
  return out.str();
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, instance] : family.instances) {
      switch (family.kind) {
        case Kind::kCounter:
          counters << (first_counter ? "" : ",") << "\n    {\"name\":"
                   << JsonString(name)
                   << ",\"labels\":" << JsonLabels(instance.labels)
                   << ",\"value\":" << instance.counter->Value() << "}";
          first_counter = false;
          break;
        case Kind::kGauge:
          gauges << (first_gauge ? "" : ",") << "\n    {\"name\":"
                 << JsonString(name)
                 << ",\"labels\":" << JsonLabels(instance.labels)
                 << ",\"value\":" << FormatNumber(instance.gauge->Value())
                 << "}";
          first_gauge = false;
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instance.histogram;
          histograms << (first_histogram ? "" : ",") << "\n    {\"name\":"
                     << JsonString(name)
                     << ",\"labels\":" << JsonLabels(instance.labels)
                     << ",\"count\":" << h.Count()
                     << ",\"sum\":" << FormatNumber(h.Sum())
                     << ",\"p50\":" << FormatNumber(h.Quantile(0.5))
                     << ",\"p95\":" << FormatNumber(h.Quantile(0.95))
                     << ",\"p99\":" << FormatNumber(h.Quantile(0.99))
                     << ",\"buckets\":[";
          const std::vector<uint64_t> counts = h.BucketCounts();
          for (size_t i = 0; i < counts.size(); ++i) {
            const std::string le =
                i < h.bounds().size()
                    ? FormatNumber(h.bounds()[i])
                    : std::string("\"+Inf\"");
            histograms << (i == 0 ? "" : ",") << "{\"le\":" << le
                       << ",\"count\":" << counts[i] << "}";
          }
          histograms << "]}";
          first_histogram = false;
          break;
        }
      }
    }
  }
  std::ostringstream out;
  out << "{\n  \"counters\": [" << counters.str()
      << (first_counter ? "" : "\n  ") << "],\n  \"gauges\": ["
      << gauges.str() << (first_gauge ? "" : "\n  ")
      << "],\n  \"histograms\": [" << histograms.str()
      << (first_histogram ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, instance] : family.instances) {
      if (instance.counter) instance.counter->Reset();
      if (instance.gauge) instance.gauge->Reset();
      if (instance.histogram) instance.histogram->Reset();
    }
  }
}

}  // namespace fra
