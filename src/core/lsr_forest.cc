#include "core/lsr_forest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/trace.h"

namespace fra {

LsrForest LsrForest::Build(const ObjectSet& objects, const Options& options) {
  LsrForest forest;
  if (objects.empty()) return forest;

  int max_level =
      static_cast<int>(std::floor(std::log2(static_cast<double>(objects.size()))));
  if (options.max_levels > 0) {
    max_level = std::min(max_level, options.max_levels - 1);
  }
  forest.trees_.reserve(static_cast<size_t>(max_level) + 1);

  Rng rng(options.seed);
  ObjectSet level_objects = objects;  // P^0 = P
  forest.trees_.push_back(RTree::Build(level_objects, options.rtree));
  for (int level = 1; level <= max_level; ++level) {
    // P^i: keep each object of P^{i-1} with probability 1/2 (Alg. 5).
    ObjectSet sampled;
    sampled.reserve(level_objects.size() / 2 + 1);
    for (const SpatialObject& o : level_objects) {
      if (rng.NextBernoulli(0.5)) sampled.push_back(o);
    }
    level_objects = std::move(sampled);
    forest.trees_.push_back(RTree::Build(level_objects, options.rtree));
  }
  return forest;
}

int LsrForest::SelectLevel(double epsilon, double delta, double sum0,
                           int max_level) {
  FRA_CHECK_GT(epsilon, 0.0);
  FRA_CHECK_GT(delta, 0.0);
  FRA_CHECK_LT(delta, 1.0);
  if (sum0 <= 0.0 || max_level <= 0) return 0;
  const double budget = epsilon * epsilon * sum0 / (3.0 * std::log(2.0 / delta));
  if (budget <= 1.0) return 0;
  const int level = static_cast<int>(std::floor(std::log2(budget)));
  return std::clamp(level, 0, max_level);
}

AggregateSummary LsrForest::ApproximateRangeAggregate(
    const QueryRange& range, double epsilon, double delta, double sum0,
    int* level_used, RTree::QueryStats* stats) const {
  FRA_TRACE_SPAN("lsr.approx_query");
  if (trees_.empty()) {
    if (level_used != nullptr) *level_used = 0;
    return AggregateSummary();
  }
  const int level = SelectLevel(epsilon, delta, sum0, max_level());
  if (level_used != nullptr) *level_used = level;
  return AggregateAtLevel(range, level, stats);
}

AggregateSummary LsrForest::AggregateAtLevel(const QueryRange& range,
                                             int level,
                                             RTree::QueryStats* stats) const {
  if (trees_.empty()) return AggregateSummary();
  const int l = std::clamp(level, 0, max_level());
  const AggregateSummary raw = trees_[l].RangeAggregate(range, stats);
  if (l == 0) return raw;
  return raw.Scaled(std::ldexp(1.0, l));  // res_l * 2^l (Alg. 6 line 3)
}

AggregateSummary LsrForest::AggregateAtLevelClipped(
    const Rect& clip, const QueryRange& range, int level,
    RTree::QueryStats* stats) const {
  if (trees_.empty()) return AggregateSummary();
  const int l = std::clamp(level, 0, max_level());
  const AggregateSummary raw =
      trees_[l].RangeAggregateClipped(clip, range, stats);
  if (l == 0) return raw;
  return raw.Scaled(std::ldexp(1.0, l));
}

AggregateSummary LsrForest::ExactRangeAggregate(const QueryRange& range) const {
  if (trees_.empty()) return AggregateSummary();
  return trees_[0].RangeAggregate(range);
}

size_t LsrForest::MemoryUsage() const {
  size_t bytes = 0;
  for (const RTree& tree : trees_) bytes += tree.MemoryUsage();
  return bytes;
}

}  // namespace fra
