#ifndef FRA_CORE_LSR_FOREST_H_
#define FRA_CORE_LSR_FOREST_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "agg/spatial_object.h"
#include "geo/range.h"
#include "index/rtree.h"
#include "util/random.h"

namespace fra {

/// The paper's LSR-Forest (Level Sampling R-tree Forest, Sec. 5): a stack
/// of aggregate R-trees T_0 … T_L where T_0 indexes the silo's full
/// partition and each T_i indexes an independent 1/2 subsample of
/// T_{i-1}'s objects, so level i retains each object with probability
/// 2^-i.
///
/// A local range aggregation query picks the level from the accuracy
/// budget (Lemma 1), answers on the small tree T_l, and rescales by 2^l
/// (Alg. 6) — cutting the average local query time to O(log 1/eps),
/// independent of the partition size.
class LsrForest {
 public:
  struct Options {
    RTree::Options rtree;
    /// Seed for the level-sampling coin flips (Alg. 5 line 4).
    uint64_t seed = 0x5A17F0E57ULL;
    /// Caps the number of levels; -1 builds the full 1 + log2(n) stack.
    /// 1 yields just T_0 (a plain aggregate R-tree).
    int max_levels = -1;
  };

  LsrForest() = default;

  /// Alg. 5: builds T_0 over `objects` and log2(n) successively halved
  /// levels above it.
  static LsrForest Build(const ObjectSet& objects, const Options& options);
  static LsrForest Build(const ObjectSet& objects) {
    return Build(objects, Options());
  }

  /// Lemma 1 level choice: l = floor(log2(eps^2 * sum0 / (3 ln(2/delta)))),
  /// clamped to [0, max_level]. `sum0` is a rough estimate of the query
  /// result (the aggregation over grid cells intersecting the range).
  static int SelectLevel(double epsilon, double delta, double sum0,
                         int max_level);

  /// Alg. 6: picks level l per Lemma 1, answers on T_l, rescales by 2^l.
  /// `level_used`, when non-null, receives the chosen level; `stats`
  /// collects R-tree traversal counters.
  AggregateSummary ApproximateRangeAggregate(
      const QueryRange& range, double epsilon, double delta, double sum0,
      int* level_used = nullptr, RTree::QueryStats* stats = nullptr) const;

  /// Answers on an explicitly chosen level (rescaled by 2^level); used by
  /// the level-choice ablation. `level` is clamped to the forest height.
  AggregateSummary AggregateAtLevel(const QueryRange& range, int level,
                                    RTree::QueryStats* stats = nullptr) const;

  /// Clipped variant of AggregateAtLevel: objects must lie in both `clip`
  /// and `range`. Used for per-grid-cell contributions under LSR.
  AggregateSummary AggregateAtLevelClipped(
      const Rect& clip, const QueryRange& range, int level,
      RTree::QueryStats* stats = nullptr) const;

  /// Exact local answer from T_0.
  AggregateSummary ExactRangeAggregate(const QueryRange& range) const;

  /// Number of levels (trees); 0 for an empty forest.
  int num_levels() const { return static_cast<int>(trees_.size()); }
  int max_level() const { return num_levels() - 1; }

  const RTree& tree(int level) const { return trees_[level]; }

  /// Objects in the silo's full partition (|T_0|).
  size_t size() const { return trees_.empty() ? 0 : trees_[0].size(); }

  /// Heap bytes across all levels; by the geometric level sizes this is
  /// ~2x a single R-tree over the partition.
  size_t MemoryUsage() const;

 private:
  std::vector<RTree> trees_;
};

}  // namespace fra

#endif  // FRA_CORE_LSR_FOREST_H_
