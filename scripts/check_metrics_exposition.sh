#!/usr/bin/env bash
# Boots the admin scrape target, scrapes every admin endpoint over real
# HTTP, and lints the Prometheus text exposition: family structure
# (`# HELP` immediately followed by its `# TYPE`, no duplicate families),
# sample/family membership (histogram `_bucket`/`_sum`/`_count`
# suffixes), label syntax, and the exposition escaping rules (label
# values may contain only `\\`, `\"` and `\n` escapes — never a raw
# quote or newline). JSON endpoints must parse. This is the
# `metrics-lint` stage of scripts/ci.sh.
#
#   scripts/check_metrics_exposition.sh <path-to-admin_scrape_target>

set -euo pipefail

if [[ $# -ne 1 || ! -x "$1" ]]; then
  echo "usage: $0 <path-to-admin_scrape_target>" >&2
  exit 2
fi
TARGET="$1"

WORK_DIR="$(mktemp -d)"
TARGET_PID=""
cleanup() {
  [[ -n "${TARGET_PID}" ]] && kill "${TARGET_PID}" 2>/dev/null || true
  [[ -n "${TARGET_PID}" ]] && wait "${TARGET_PID}" 2>/dev/null || true
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

echo "--- booting scrape target"
"${TARGET}" 120 > "${WORK_DIR}/stdout" 2> "${WORK_DIR}/stderr" &
TARGET_PID=$!

# The target runs a small workload before binding; wait for the port line.
PORT=""
for _ in $(seq 1 240); do
  if ! kill -0 "${TARGET_PID}" 2>/dev/null; then
    echo "scrape target exited before serving:" >&2
    cat "${WORK_DIR}/stderr" >&2
    exit 1
  fi
  PORT="$(sed -n 's/^ADMIN_PORT=//p' "${WORK_DIR}/stdout" | head -1)"
  [[ -n "${PORT}" ]] && break
  sleep 0.5
done
if [[ -z "${PORT}" ]]; then
  echo "scrape target never printed ADMIN_PORT=" >&2
  exit 1
fi
echo "--- admin server on 127.0.0.1:${PORT}"

BASE="http://127.0.0.1:${PORT}"
scrape() {
  local path="$1" out="$2"
  if ! curl -fsS --max-time 10 "${BASE}${path}" -o "${out}"; then
    echo "scrape of ${path} failed" >&2
    exit 1
  fi
  echo "    GET ${path}: $(wc -c < "${out}") bytes"
}

scrape /metrics "${WORK_DIR}/metrics.txt"
scrape /metrics.json "${WORK_DIR}/metrics.json"
scrape /statusz "${WORK_DIR}/statusz.json"
scrape /healthz "${WORK_DIR}/healthz.txt"
scrape /tracez "${WORK_DIR}/tracez.json"
scrape /debug/flightz "${WORK_DIR}/flightz.txt"
scrape /debug/flightz.json "${WORK_DIR}/flightz.json"
scrape /debug/logz "${WORK_DIR}/logz.txt"
scrape /debug/logz.json "${WORK_DIR}/logz.json"
scrape /debug/profilez "${WORK_DIR}/profilez.txt"
scrape /debug/profilez.json "${WORK_DIR}/profilez.json"

echo "--- checking response headers"
curl -fsS --max-time 10 -D "${WORK_DIR}/metrics_headers.txt" \
  "${BASE}/metrics" -o /dev/null
if ! grep -qi '^Cache-Control: no-store' "${WORK_DIR}/metrics_headers.txt"; then
  echo "/metrics response missing Cache-Control: no-store" >&2
  exit 1
fi
if ! grep -qi '^Content-Type:' "${WORK_DIR}/metrics_headers.txt"; then
  echo "/metrics response missing an explicit Content-Type" >&2
  exit 1
fi
echo "    /metrics: explicit Content-Type + Cache-Control: no-store"

echo "--- linting /metrics exposition"
python3 - "${WORK_DIR}/metrics.txt" <<'PYEOF'
import re
import sys

path = sys.argv[1]
errors = []
NAME = re.compile(r'[a-zA-Z_:][a-zA-Z0-9_:]*')
LABEL_KEY = re.compile(r'[a-zA-Z_][a-zA-Z0-9_]*')
# A label value between the quotes: only \\, \" and \n escapes; no raw
# quote, backslash or newline.
VALUE_CHARS = re.compile(r'(?:\\[\\n"]|[^"\\])*')
NUMBER = re.compile(r'[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN)$')

def parse_labels(text, lineno):
    """Parses `key="value",...}` starting after `{`; returns chars consumed."""
    pos = 0
    while True:
        m = LABEL_KEY.match(text, pos)
        if not m:
            errors.append(f'line {lineno}: bad label key at ...{text[pos:pos+20]!r}')
            return None
        pos = m.end()
        if not text.startswith('="', pos):
            errors.append(f'line {lineno}: label missing =\"')
            return None
        pos += 2
        m = VALUE_CHARS.match(text, pos)
        pos = m.end()
        if pos >= len(text) or text[pos] != '"':
            errors.append(f'line {lineno}: unterminated/illegal label value')
            return None
        pos += 1
        if pos < len(text) and text[pos] == ',':
            pos += 1
            continue
        if pos < len(text) and text[pos] == '}':
            return pos + 1
        errors.append(f'line {lineno}: expected , or }} after label value')
        return None

family = None
ftype = None
pending_help = None
seen = {}
samples = 0
families = 0

with open(path, encoding='utf-8') as fh:
    for lineno, raw in enumerate(fh, 1):
        line = raw.rstrip('\n')
        if not line:
            continue
        if line.startswith('# HELP '):
            parts = line.split(' ', 3)
            if len(parts) < 4 or not parts[3].strip():
                errors.append(f'line {lineno}: HELP without text')
                continue
            pending_help = parts[2]
            continue
        if line.startswith('# TYPE '):
            parts = line.split(' ')
            if len(parts) != 4:
                errors.append(f'line {lineno}: malformed TYPE line')
                continue
            name, mtype = parts[2], parts[3]
            if pending_help is not None and pending_help != name:
                errors.append(f'line {lineno}: HELP {pending_help} not followed by its TYPE')
            # Every family the library itself registers carries help text
            # (BuiltinHelp in util/metrics.cc); embedder families may not.
            if pending_help is None and name.startswith('fra_'):
                errors.append(f'line {lineno}: builtin family {name} has no # HELP')
            pending_help = None
            if mtype not in ('counter', 'gauge', 'histogram'):
                errors.append(f'line {lineno}: unknown type {mtype!r} for {name}')
            if name in seen:
                errors.append(f'line {lineno}: duplicate family {name}')
            seen[name] = mtype
            family, ftype = name, mtype
            families += 1
            continue
        if line.startswith('#'):
            errors.append(f'line {lineno}: unexpected comment {line!r}')
            continue
        if pending_help is not None:
            errors.append(f'line {lineno}: HELP {pending_help} not followed by its TYPE')
            pending_help = None
        m = NAME.match(line)
        if not m:
            errors.append(f'line {lineno}: unparseable sample {line!r}')
            continue
        name = m.group(0)
        rest = line[m.end():]
        if family is None:
            errors.append(f'line {lineno}: sample before any family')
            continue
        allowed = {family}
        if ftype == 'histogram':
            allowed |= {family + '_bucket', family + '_sum', family + '_count'}
        if name not in allowed:
            errors.append(f'line {lineno}: sample {name} outside family {family}')
        if rest.startswith('{'):
            consumed = parse_labels(rest[1:], lineno)
            if consumed is None:
                continue
            rest = rest[1 + consumed:]
        if not rest.startswith(' '):
            errors.append(f'line {lineno}: missing space before value')
            continue
        value = rest[1:]
        if not NUMBER.match(value):
            errors.append(f'line {lineno}: bad sample value {value!r}')
        samples += 1

if pending_help is not None:
    errors.append(f'trailing HELP {pending_help} without TYPE')

def require_family(name, mtype):
    if seen.get(name) != mtype:
        errors.append(f'expected {mtype} family {name!r} in the exposition')

# Families the scrape target is guaranteed to populate: build
# provenance, the query path, the reactor loops of the admin server
# itself, the cost ledger's per-query-class rollups, the structured-log
# sink, and the continuous profiler (the target runs it).
require_family('fra_build_info', 'gauge')
require_family('fra_queries_total', 'counter')
require_family('fra_query_latency_microseconds', 'histogram')
require_family('fra_span_duration_microseconds', 'histogram')
require_family('fra_reactor_loop_lag_microseconds', 'histogram')
require_family('fra_query_cost_silo_rpcs_total', 'counter')
require_family('fra_query_cost_bytes_total', 'counter')
require_family('fra_query_cost_cpu_microseconds', 'histogram')
require_family('fra_log_records_total', 'counter')
require_family('fra_profile_samples_total', 'counter')
require_family('fra_profile_running_hz', 'gauge')

if samples == 0:
    errors.append('no samples in the exposition')

if errors:
    for error in errors:
        print(f'FAIL: {error}', file=sys.stderr)
    sys.exit(1)
print(f'    {families} families, {samples} samples: exposition well-formed')
PYEOF

echo "--- validating JSON endpoints"
for json_file in metrics.json statusz.json tracez.json flightz.json \
                 logz.json profilez.json; do
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "${WORK_DIR}/${json_file}"; then
    echo "${json_file} is not valid JSON" >&2
    exit 1
  fi
  echo "    ${json_file}: valid JSON"
done

echo "--- checking /healthz and /debug/flightz content"
if ! grep -q "ok" "${WORK_DIR}/healthz.txt"; then
  echo "/healthz did not report ok:" >&2
  cat "${WORK_DIR}/healthz.txt" >&2
  exit 1
fi
if ! grep -q "^flight recorder:" "${WORK_DIR}/flightz.txt"; then
  echo "/debug/flightz missing flight recorder header" >&2
  exit 1
fi
if ! grep -q "spans:" "${WORK_DIR}/flightz.txt"; then
  echo "/debug/flightz has no captured spans (threshold 0 should record every query)" >&2
  exit 1
fi
if ! grep -q "cost:" "${WORK_DIR}/flightz.txt"; then
  echo "/debug/flightz records carry no cost breakdown" >&2
  exit 1
fi

echo "--- checking /debug/logz and /statusz content"
if ! grep -q "scrape target serving" "${WORK_DIR}/logz.txt"; then
  echo "/debug/logz missing the target's own startup record" >&2
  exit 1
fi
if ! python3 -c "
import json, sys
records = json.load(open('$WORK_DIR/logz.json'))['records']
sys.exit(0 if any('scrape target serving' in r.get('msg', '')
                  for r in records) else 1)"; then
  echo "/debug/logz.json missing the startup record" >&2
  exit 1
fi
if ! python3 -c "
import json, sys
status = json.load(open('$WORK_DIR/statusz.json'))
ledger = status.get('cost_ledger')
sys.exit(0 if isinstance(ledger, list) and len(ledger) > 0 else 1)"; then
  echo "/statusz cost_ledger section empty (the workload ran queries)" >&2
  exit 1
fi

kill "${TARGET_PID}" 2>/dev/null || true
wait "${TARGET_PID}" 2>/dev/null || true
TARGET_PID=""

echo "metrics exposition lint: OK"
