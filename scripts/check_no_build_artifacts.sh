#!/bin/sh
# Fails when build artifacts are tracked by git — specifically any
# CMakeCache.txt under a build*/ directory, the telltale of a committed
# build tree. Registered as a tier-1 ctest (see tests/CMakeLists.txt) so
# the regression that once committed ~900 build-notrace/ files cannot
# recur unnoticed.
#
# Usage: check_no_build_artifacts.sh [repo_root]
set -u

repo_root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$repo_root" || exit 1

if ! command -v git >/dev/null 2>&1; then
  echo "SKIP: git not available"
  exit 0
fi
if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "SKIP: not a git work tree (tarball build?)"
  exit 0
fi

tracked=$(git ls-files -- 'build*/CMakeCache.txt' '*/build*/CMakeCache.txt')
if [ -n "$tracked" ]; then
  echo "FAIL: build artifacts are tracked by git:"
  echo "$tracked"
  echo "Remove them (git rm -r --cached <dir>) and check .gitignore."
  exit 1
fi

echo "OK: no build*/CMakeCache.txt tracked by git"
exit 0
