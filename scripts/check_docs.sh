#!/usr/bin/env bash
# Docs link-and-drift check (the `docs-check` CI stage).
#
#   scripts/check_docs.sh [repo_root]
#
# Three guards over docs/*.md + README.md, all pure grep/awk — no build:
#
#   1. Internal markdown links resolve: every `[text](target)` whose
#      target is not an external URL must name an existing file
#      (relative to the linking document), and a `#fragment` — same-file
#      or cross-file — must match a heading's GitHub-style anchor slug.
#   2. No phantom identifiers: every `fra_[a-z0-9_]+` token mentioned in
#      the docs (metric families, CMake targets, helper functions) must
#      appear somewhere in src/, tests/, bench/, or a CMakeLists.txt —
#      a doc naming a metric the code no longer registers fails here.
#   3. No undocumented metrics: every "fra_..." string literal the code
#      registers must be mentioned in at least one checked document —
#      new metric families must land with their docs.
set -uo pipefail

REPO_ROOT="${1:-$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)}"
cd "${REPO_ROOT}"

DOCS=(README.md docs/*.md)
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# GitHub-style anchor slug of a markdown heading: lower-case, drop
# everything but alphanumerics/spaces/hyphens, spaces become hyphens.
anchors_of() {
  sed -n 's/^#\{1,6\} //p' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

echo "== docs-check: internal links =="
for doc in "${DOCS[@]}"; do
  dir="$(dirname "${doc}")"
  # One markdown link target per line; inline code spans are stripped
  # first so `foo](bar)` inside backticks cannot fake a link.
  while IFS= read -r target; do
    case "${target}" in
      http://*|https://*|mailto:*) continue ;;
    esac
    file="${target%%#*}"
    fragment=""
    [[ "${target}" == *#* ]] && fragment="${target#*#}"
    if [[ -z "${file}" ]]; then
      anchor_file="${doc}"                      # same-file #fragment
    else
      anchor_file="${dir}/${file}"
      if [[ ! -e "${anchor_file}" ]]; then
        fail "${doc}: broken link target '${target}'"
        continue
      fi
    fi
    if [[ -n "${fragment}" ]]; then
      if ! anchors_of "${anchor_file}" | grep -qx "${fragment}"; then
        fail "${doc}: link '#${fragment}' matches no heading in ${anchor_file}"
      fi
    fi
  done < <(sed 's/`[^`]*`//g' "${doc}" | grep -oE '\]\([^)]+\)' \
             | sed -e 's/^](//' -e 's/)$//')
done

echo "== docs-check: fra_* identifiers in docs exist in code =="
code_tokens="$(grep -rhoE 'fra_[a-z0-9_]+' src tests bench CMakeLists.txt \
                 --include='*.h' --include='*.cc' --include='CMakeLists.txt' \
                 2>/dev/null | sort -u)"
doc_tokens="$(grep -hoE 'fra_[a-z0-9_]+' "${DOCS[@]}" | sort -u)"
while IFS= read -r token; do
  [[ -z "${token}" ]] && continue
  grep -qx "${token}" <<<"${code_tokens}" && continue
  # Prometheus exposition suffixes on a real family are fine
  # (fra_query_latency_microseconds_bucket, …_sum, …_count).
  base="${token%_bucket}"; base="${base%_sum}"; base="${base%_count}"
  [[ "${base}" != "${token}" ]] && grep -qx "${base}" <<<"${code_tokens}" \
    && continue
  # Brace shorthand like fra_tcp_pool_{open,busy}_connections leaves a
  # trailing-underscore stem; accept it when a real token extends it.
  [[ "${token}" == *_ ]] && grep -q "^${token}" <<<"${code_tokens}" && continue
  fail "docs mention '${token}' but it appears nowhere in src/tests/bench"
done <<<"${doc_tokens}"

echo "== docs-check: registered metrics are documented =="
registered="$(grep -rhoE '"fra_[a-z0-9_]+"' src | tr -d '"' | sort -u)"
while IFS= read -r metric; do
  [[ -z "${metric}" ]] && continue
  if ! grep -qx "${metric}" <<<"${doc_tokens}"; then
    fail "metric '${metric}' is registered in src/ but documented nowhere"
  fi
done <<<"${registered}"

echo "== docs-check: buffer-pool metric families documented =="
# The fra_bufpool_* families are the observable surface of the zero-copy
# data plane; they must stay documented where operators look for them
# (guard 3 accepts any doc — these are pinned to observability.md).
for family in fra_bufpool_acquires_total fra_bufpool_releases_total \
              fra_bufpool_free_bytes fra_bufpool_free_buffers; do
  grep -q "${family}" docs/observability.md \
    || fail "buffer-pool family '${family}' missing from docs/observability.md"
done

if [[ ${failures} -gt 0 ]]; then
  echo "docs-check: ${failures} failure(s)" >&2
  exit 1
fi
echo "docs-check: OK"
