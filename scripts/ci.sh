#!/usr/bin/env bash
# CI entry point. Three build/test stages, selectable by argument:
#
#   scripts/ci.sh tracing-on    # default build (FRA_ENABLE_TRACING=ON), full ctest
#   scripts/ci.sh tracing-off   # spans compiled out, full ctest
#   scripts/ci.sh sanitize      # ASan+UBSan, observability-labeled tests
#   scripts/ci.sh               # all three stages in sequence
#
# Each stage uses its own build tree under build-ci/ so stages cannot
# poison one another's CMake cache.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_stage() {
  local stage="$1"
  local build_dir="${REPO_ROOT}/build-ci/${stage}"
  local -a cmake_args=(-DCMAKE_BUILD_TYPE=Release)
  local -a ctest_args=(--output-on-failure -j "${JOBS}")

  case "${stage}" in
    tracing-on)
      cmake_args+=(-DFRA_ENABLE_TRACING=ON)
      ;;
    tracing-off)
      cmake_args+=(-DFRA_ENABLE_TRACING=OFF)
      ;;
    sanitize)
      cmake_args+=(
        -DFRA_ENABLE_TRACING=ON
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
        "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=address,undefined"
      )
      # The sanitized stage concentrates on the concurrency-heavy
      # observability surface (registry races, admin server, health
      # tracker, TCP transport); the plain stages run everything.
      ctest_args+=(-L observability)
      ;;
    *)
      echo "unknown stage: ${stage}" >&2
      echo "usage: $0 [tracing-on|tracing-off|sanitize]" >&2
      exit 2
      ;;
  esac

  echo "=== stage ${stage}: configure ==="
  cmake -S "${REPO_ROOT}" -B "${build_dir}" "${cmake_args[@]}"
  echo "=== stage ${stage}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== stage ${stage}: test ==="
  (cd "${build_dir}" && ctest "${ctest_args[@]}")
  echo "=== stage ${stage}: OK ==="
}

if [[ $# -eq 0 ]]; then
  for stage in tracing-on tracing-off sanitize; do
    run_stage "${stage}"
  done
else
  for stage in "$@"; do
    run_stage "${stage}"
  done
fi
