#!/usr/bin/env bash
# CI entry point. Three build/test stages, selectable by argument:
#
#   scripts/ci.sh tracing-on      # default build (FRA_ENABLE_TRACING=ON), full ctest
#   scripts/ci.sh tracing-off     # spans compiled out, full ctest
#   scripts/ci.sh sanitize        # ASan+UBSan, observability-labeled tests
#   scripts/ci.sh sanitize-thread # TSan, net-labeled tests (reactor/TCP/coalescer)
#   scripts/ci.sh bench-smoke     # bench harnesses at smoke scale + BENCH_*.json
#   scripts/ci.sh alloc-smoke     # warm-path allocation budget (buffer pool)
#   scripts/ci.sh profiler-smoke  # bench_throughput under SIGPROF sampling:
#                                 # usable stacks, qps tax under 5%
#   scripts/ci.sh metrics-lint    # boot an AdminServer, scrape + lint /metrics
#   scripts/ci.sh docs-check      # docs link + metric-drift check (no build)
#   scripts/ci.sh                 # all nine stages in sequence
#
# Each stage uses its own build tree under build-ci/ so stages cannot
# poison one another's CMake cache.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_stage() {
  local stage="$1"

  # docs-check is pure text analysis — no configure/build/test cycle.
  if [[ "${stage}" == "docs-check" ]]; then
    echo "=== stage ${stage}: docs link + drift check ==="
    "${REPO_ROOT}/scripts/check_docs.sh" "${REPO_ROOT}"
    echo "=== stage ${stage}: OK ==="
    return
  fi

  # metrics-lint builds one binary and exercises the live admin surface
  # over HTTP — no ctest cycle.
  if [[ "${stage}" == "metrics-lint" ]]; then
    local build_dir="${REPO_ROOT}/build-ci/${stage}"
    echo "=== stage ${stage}: configure ==="
    cmake -S "${REPO_ROOT}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release \
      -DFRA_ENABLE_TRACING=ON
    echo "=== stage ${stage}: build ==="
    cmake --build "${build_dir}" -j "${JOBS}" --target admin_scrape_target
    echo "=== stage ${stage}: scrape + lint ==="
    "${REPO_ROOT}/scripts/check_metrics_exposition.sh" \
      "${build_dir}/examples/admin_scrape_target"
    echo "=== stage ${stage}: OK ==="
    return
  fi

  # alloc-smoke builds the micro-net bench and runs only its allocation
  # section: the warm pooled path must stay under the pinned
  # FRA_ALLOC_BUDGET (allocator calls per query) and the pool-on/off
  # EXACT answers must be bit-identical. Catches anyone reintroducing a
  # per-frame copy or malloc on the zero-copy data plane.
  if [[ "${stage}" == "alloc-smoke" ]]; then
    local build_dir="${REPO_ROOT}/build-ci/${stage}"
    echo "=== stage ${stage}: configure ==="
    cmake -S "${REPO_ROOT}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release \
      -DFRA_ENABLE_TRACING=ON
    echo "=== stage ${stage}: build ==="
    cmake --build "${build_dir}" -j "${JOBS}" --target bench_micro_net
    echo "=== stage ${stage}: allocation budget ==="
    (cd "${build_dir}" &&
     FRA_ALLOC_BUDGET=0.5 \
       ./bench/bench_micro_net --benchmark_filter='^$')
    echo "=== stage ${stage}: OK ==="
    return
  fi

  # profiler-smoke runs the throughput bench twice — profiler off, then
  # sampling at the default 19 Hz — interleaved best-of-two per config so
  # a noisy CI neighbour doesn't decide the comparison. The profiled run
  # must produce non-empty collapsed stacks and cost < 5% qps.
  if [[ "${stage}" == "profiler-smoke" ]]; then
    local build_dir="${REPO_ROOT}/build-ci/${stage}"
    echo "=== stage ${stage}: configure ==="
    cmake -S "${REPO_ROOT}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release \
      -DFRA_ENABLE_TRACING=ON
    echo "=== stage ${stage}: build ==="
    cmake --build "${build_dir}" -j "${JOBS}" --target bench_throughput
    echo "=== stage ${stage}: off/on qps comparison ==="
    local qps_off=0 qps_on=0 samples=0
    local pass qps
    for pass in 1 2; do
      (cd "${build_dir}" && FRA_BENCH_SCALE=smoke FRA_PROFILE_HZ=0 \
         ./bench/bench_throughput > "bench_throughput_off_${pass}.log")
      qps="$(python3 -c "
import json
data = json.load(open('${build_dir}/BENCH_throughput.json'))
print(max(row['qps'] for row in data['in_process']))")"
      qps_off="$(python3 -c "print(max(${qps_off}, ${qps}))")"
      (cd "${build_dir}" && FRA_BENCH_SCALE=smoke FRA_PROFILE_HZ=19 \
         ./bench/bench_throughput > "bench_throughput_on_${pass}.log")
      qps="$(python3 -c "
import json
data = json.load(open('${build_dir}/BENCH_throughput.json'))
print(max(row['qps'] for row in data['in_process']))")"
      qps_on="$(python3 -c "print(max(${qps_on}, ${qps}))")"
      samples="$(sed -n 's/^PROFILER_SAMPLES=//p' \
                   "${build_dir}/bench_throughput_on_${pass}.log" | head -1)"
    done
    echo "    qps off=${qps_off} on=${qps_on} samples=${samples}"
    if [[ ! -s "${build_dir}/PROFILE_bench_throughput.folded" ]]; then
      echo "profiled run wrote no collapsed stacks" >&2
      exit 1
    fi
    if ! grep -q ';' "${build_dir}/PROFILE_bench_throughput.folded"; then
      echo "collapsed output has no multi-frame stacks" >&2
      exit 1
    fi
    if [[ -z "${samples}" || "${samples}" -lt 1 ]]; then
      echo "profiled run captured no samples" >&2
      exit 1
    fi
    python3 - "${qps_off}" "${qps_on}" <<'PYEOF'
import sys
off, on = float(sys.argv[1]), float(sys.argv[2])
delta = (off - on) / off * 100.0 if off > 0 else 0.0
print(f'    profiler qps tax: {delta:+.2f}%')
if delta >= 5.0:
    print(f'FAIL: profiler costs {delta:.2f}% qps (bar: < 5%)',
          file=sys.stderr)
    sys.exit(1)
PYEOF
    echo "=== stage ${stage}: OK ==="
    return
  fi

  local build_dir="${REPO_ROOT}/build-ci/${stage}"
  local -a cmake_args=(-DCMAKE_BUILD_TYPE=Release)
  local -a ctest_args=(--output-on-failure -j "${JOBS}")

  case "${stage}" in
    tracing-on)
      cmake_args+=(-DFRA_ENABLE_TRACING=ON)
      ;;
    tracing-off)
      cmake_args+=(-DFRA_ENABLE_TRACING=OFF)
      ;;
    sanitize)
      cmake_args+=(
        -DFRA_ENABLE_TRACING=ON
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
        "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=address,undefined"
      )
      # The sanitized stage concentrates on the concurrency-heavy
      # surfaces (registry races, admin server, health tracker, the
      # reactor and TCP transport); the plain stages run everything.
      # -L is a regex: this selects both label families.
      ctest_args+=(-L 'observability|net')
      ;;
    sanitize-thread)
      cmake_args+=(
        -DFRA_ENABLE_TRACING=ON
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-omit-frame-pointer"
        "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread"
      )
      # TSan over the event-loop surface: reactor internals, the TCP
      # transport's client/server state machines, and the coalescer's
      # reactor-timer flush path. These are the tests where a
      # cross-thread ordering bug would actually live.
      ctest_args+=(-L net)
      ;;
    bench-smoke)
      # Bench harnesses at FRA_BENCH_SCALE=smoke (the label sets the env
      # var): guards the coalescing throughput path end to end and that
      # the machine-readable BENCH_*.json artifacts keep being written.
      cmake_args+=(-DFRA_ENABLE_TRACING=ON)
      ctest_args+=(-L bench_smoke)
      ;;
    *)
      echo "unknown stage: ${stage}" >&2
      echo "usage: $0 [tracing-on|tracing-off|sanitize|sanitize-thread|bench-smoke|alloc-smoke|profiler-smoke|metrics-lint|docs-check]" >&2
      exit 2
      ;;
  esac

  echo "=== stage ${stage}: configure ==="
  cmake -S "${REPO_ROOT}" -B "${build_dir}" "${cmake_args[@]}"
  echo "=== stage ${stage}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== stage ${stage}: test ==="
  (cd "${build_dir}" && ctest "${ctest_args[@]}")
  if [[ "${stage}" == "bench-smoke" ]]; then
    echo "=== stage ${stage}: bench artifacts ==="
    local -a artifacts
    mapfile -t artifacts < <(find "${build_dir}" -maxdepth 2 -name 'BENCH_*.json')
    if [[ ${#artifacts[@]} -eq 0 ]]; then
      echo "no BENCH_*.json artifacts written" >&2
      exit 1
    fi
    ls -l "${artifacts[@]}"
  fi
  echo "=== stage ${stage}: OK ==="
}

if [[ $# -eq 0 ]]; then
  for stage in docs-check tracing-on tracing-off sanitize sanitize-thread bench-smoke alloc-smoke profiler-smoke metrics-lint; do
    run_stage "${stage}"
  done
else
  for stage in "$@"; do
    run_stage "${stage}"
  done
fi
