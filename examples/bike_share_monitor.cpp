// Bike-share monitor: the paper's motivating application (Sec. 1).
//
// A real-time service ("how many shared bikes within r km of this subway
// station?") receives bursts of ~150 queries per second in rush hour. This
// example replays one simulated rush-hour second per algorithm and reports
// whether each algorithm sustains real-time response, reproducing the
// paper's claim that single-silo sampling + LSR-Forest exceeds 250 q/s
// while exact fan-out saturates far earlier.
//
//   ./build/examples/bike_share_monitor [num_objects]

#include <cstdio>
#include <cstdlib>

#include "data/generator.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  size_t num_objects = 400000;
  if (argc > 1) num_objects = static_cast<size_t>(std::atoll(argv[1]));

  std::printf("Simulating a federation of 6 bike-share silos over %zu "
              "bikes...\n", num_objects);

  fra::MobilityDataOptions data_options;
  data_options.num_objects = num_objects;
  data_options.seed = 7;
  data_options.non_iid = true;
  auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();
  auto partitions =
      fra::SplitIntoSilos(dataset.company_partitions, 6, 11).ValueOrDie();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;
  // A realistic metropolitan-network round trip: ~200 microseconds.
  options.latency.fixed_micros = 200.0;
  auto federation =
      fra::Federation::Create(std::move(partitions), options).ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  // One rush-hour second: 150 "bikes near the station" queries, centers
  // drawn from real bike locations, radius 2 km.
  fra::WorkloadOptions workload;
  workload.num_queries = 150;
  workload.radius_km = 2.0;
  workload.kind = fra::AggregateKind::kCount;
  workload.seed = 99;
  const auto queries =
      fra::GenerateQueries(dataset.company_partitions, workload).ValueOrDie();

  std::printf("\nReplaying %zu queries (one rush-hour second, paper [14])\n",
              queries.size());
  std::printf("%-16s %10s %12s %14s %10s\n", "algorithm", "time(s)",
              "queries/s", "real-time?", "avg msgs");

  for (fra::FraAlgorithm algorithm :
       {fra::FraAlgorithm::kExact, fra::FraAlgorithm::kOpta,
        fra::FraAlgorithm::kIidEstLsr, fra::FraAlgorithm::kNonIidEstLsr}) {
    const fra::CommStats::Snapshot before = provider.comm();
    fra::Timer timer;
    auto results = provider.ExecuteBatch(queries, algorithm);
    const double elapsed = timer.ElapsedSeconds();
    if (!results.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   results.status().ToString().c_str());
      return 1;
    }
    const fra::CommStats::Snapshot comm = provider.comm() - before;
    const double qps = static_cast<double>(queries.size()) / elapsed;
    std::printf("%-16s %10.3f %12.1f %14s %10.1f\n",
                fra::FraAlgorithmToString(algorithm), elapsed, qps,
                qps >= 150.0 ? "yes (>150/s)" : "NO",
                static_cast<double>(comm.messages) /
                    static_cast<double>(queries.size()));
  }

  std::printf(
      "\nThe sampling algorithms answer each query from ONE silo, so the\n"
      "150-query burst spreads across all 6 silos in parallel; EXACT\n"
      "occupies every silo for every query and pays 6x the round trips.\n");
  return 0;
}
