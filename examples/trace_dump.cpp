// Traces a short query workload and writes the span buffer as a Chrome
// trace document — the same JSON /tracez serves — so it can be loaded in
// chrome://tracing or https://ui.perfetto.dev.
//
//   ./build/examples/trace_dump > trace.json
//   ./build/examples/trace_dump trace.json

#include <cstdio>
#include <string>
#include <vector>

#include "data/generator.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  fra::Tracer::Get().SetEnabled(true);

  fra::MobilityDataOptions data_options;
  data_options.num_objects = 20000;
  data_options.seed = 7;
  auto dataset_result = fra::GenerateMobilityData(data_options);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  fra::FederationDataset dataset = std::move(dataset_result).ValueOrDie();

  fra::WorkloadOptions workload;
  workload.num_queries = 20;
  workload.radius_km = 2.0;
  auto queries_result =
      fra::GenerateQueries(dataset.company_partitions, workload);
  if (!queries_result.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 queries_result.status().ToString().c_str());
    return 1;
  }
  const std::vector<fra::FraQuery> queries =
      std::move(queries_result).ValueOrDie();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;  // km
  auto federation_result =
      fra::Federation::Create(std::move(dataset.company_partitions), options);
  if (!federation_result.ok()) {
    std::fprintf(stderr, "federation setup failed: %s\n",
                 federation_result.status().ToString().c_str());
    return 1;
  }
  auto federation = std::move(federation_result).ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  for (fra::FraAlgorithm algorithm :
       {fra::FraAlgorithm::kExact, fra::FraAlgorithm::kIidEst,
        fra::FraAlgorithm::kNonIidEstLsr}) {
    auto batch = provider.ExecuteBatch(queries, algorithm);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s batch failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   batch.status().ToString().c_str());
      return 1;
    }
  }

  const std::string document = fra::Tracer::Get().ExportChromeTrace();
  if (document.find("\"ph\"") == std::string::npos) {
    std::fprintf(stderr,
                 "warning: no spans recorded — built with "
                 "FRA_ENABLE_TRACING=OFF? Emitting an empty document.\n");
  }

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[1]);
      return 1;
    }
    std::fwrite(document.data(), 1, document.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "wrote %zu bytes of Chrome trace JSON to %s\n",
                 document.size(), argv[1]);
  } else {
    std::fwrite(document.data(), 1, document.size(), stdout);
  }
  return 0;
}
