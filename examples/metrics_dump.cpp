// Runs a 1000-query ExecuteBatch per algorithm against a synthetic
// federation with the accuracy auditor sampling 10% of approximate
// answers, then dumps everything the observability layer collected:
// per-algorithm latency histograms (p50/p95/p99), per-silo query counts,
// communication byte counters, the audited relative-error distribution
// against the (eps, delta) guarantee, the full Prometheus-text and JSON
// exports, and the spans of one traced query. Every metric and span name
// printed here is documented in docs/observability.md.
//
//   ./build/examples/metrics_dump

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "data/generator.h"
#include "eval/report.h"
#include "eval/workload.h"
#include "federation/federation.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

// One line per label set of a counter family, e.g. per-silo request
// counts or per-direction comm bytes.
void PrintCounterFamily(const char* heading, const char* name,
                        bool bytes_family) {
  const auto instances = fra::MetricsRegistry::Default().CountersNamed(name);
  if (instances.empty()) return;
  std::printf("\n=== %s (%s) ===\n", heading, name);
  for (const auto& [labels, counter] : instances) {
    std::string label_text;
    for (const auto& [key, value] : labels) {
      if (!label_text.empty()) label_text += ", ";
      label_text += key + "=" + value;
    }
    if (label_text.empty()) label_text = "(no labels)";
    if (bytes_family) {
      std::printf("  %-40s %12" PRIu64 "  (%s)\n", label_text.c_str(),
                  counter->Value(), fra::FormatBytes(counter->Value()).c_str());
    } else {
      std::printf("  %-40s %12" PRIu64 "\n", label_text.c_str(),
                  counter->Value());
    }
  }
}

// The spans of one traced query, indented by start time — the worked
// example walked through in docs/observability.md.
void PrintOneTrace() {
  const std::vector<uint64_t> ids = fra::Tracer::Get().TraceIds();
  if (ids.empty()) {
    std::printf("\n(no traces recorded — built with FRA_ENABLE_TRACING=OFF?)\n");
    return;
  }
  const uint64_t trace_id = ids.back();
  std::vector<fra::SpanRecord> spans =
      fra::Tracer::Get().SpansForTrace(trace_id);
  std::sort(spans.begin(), spans.end(),
            [](const fra::SpanRecord& a, const fra::SpanRecord& b) {
              return a.start_nanos < b.start_nanos;
            });
  std::printf("\n=== Spans of trace %" PRIu64 " ===\n", trace_id);
  std::printf("%-28s %14s %14s\n", "span", "start(us)", "duration(us)");
  const uint64_t origin = spans.front().start_nanos;
  for (const fra::SpanRecord& span : spans) {
    std::printf("%-28s %14.1f %14.1f\n", span.name.c_str(),
                static_cast<double>(span.start_nanos - origin) / 1e3,
                static_cast<double>(span.duration_nanos) / 1e3);
  }
}

// The auditor's verdict: one row per audited estimator with the relative
// error distribution, plus the guarantee check the (eps, delta) contract
// promises — p-quantile error <= eps for all but a delta fraction.
void PrintAuditReport(const fra::ServiceProvider& provider) {
  const fra::AccuracyAuditor* auditor = provider.auditor();
  if (auditor == nullptr) {
    std::printf("\n(auditing disabled — audit_sample_rate == 0)\n");
    return;
  }
  const fra::AccuracyAuditor::Snapshot snapshot = auditor->snapshot();
  std::printf("\n=== Accuracy audit (eps=%.3f, delta=%.3f, sample rate %.0f%%) ===\n",
              provider.options().epsilon, provider.options().delta,
              100.0 * auditor->options().sample_rate);
  std::printf("approximate answers considered %" PRIu64
              ", audited %" PRIu64 ", replay failures %" PRIu64 "\n",
              snapshot.considered, snapshot.audited, snapshot.failures);
  const auto errors = fra::MetricsRegistry::Default().HistogramsNamed(
      "fra_estimate_relative_error");
  if (!errors.empty()) {
    std::printf("%-16s %8s %10s %10s %10s %10s\n", "algorithm", "audits",
                "mean", "p50", "p95", "p99");
    for (const auto& [labels, histogram] : errors) {
      std::string algorithm = "?";
      for (const auto& [key, value] : labels) {
        if (key == "algorithm") algorithm = value;
      }
      std::printf("%-16s %8" PRIu64 " %10.4f %10.4f %10.4f %10.4f\n",
                  algorithm.c_str(), histogram->Count(), histogram->Mean(),
                  histogram->Quantile(0.50), histogram->Quantile(0.95),
                  histogram->Quantile(0.99));
    }
  }
  std::printf("guarantee violations (relative error > eps): %" PRIu64
              " of %" PRIu64 " audited (delta allows %.1f)\n",
              snapshot.violations, snapshot.audited,
              provider.options().delta * static_cast<double>(snapshot.audited));
}

}  // namespace

int main() {
  // Record spans (the metrics registry is always on; tracing is opt-in).
  fra::Tracer::Get().SetEnabled(true);

  fra::MobilityDataOptions data_options;
  data_options.num_objects = 100000;
  data_options.seed = 42;
  data_options.non_iid = false;
  auto dataset_result = fra::GenerateMobilityData(data_options);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  fra::FederationDataset dataset = std::move(dataset_result).ValueOrDie();

  fra::WorkloadOptions workload;
  workload.num_queries = 1000;
  workload.radius_km = 8.0;
  auto queries_result =
      fra::GenerateQueries(dataset.company_partitions, workload);
  if (!queries_result.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 queries_result.status().ToString().c_str());
    return 1;
  }
  const std::vector<fra::FraQuery> queries =
      std::move(queries_result).ValueOrDie();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;  // km
  options.provider.epsilon = 0.1;
  options.provider.delta = 0.01;
  // Average three independent silo samples per query (Sec. 4 variance
  // knob) so the estimates sit inside the audited guarantee below.
  options.provider.silos_per_query = 3;
  // Audit 10% of approximate answers: re-run them EXACT in the background
  // and score the estimate against the (eps, delta) guarantee.
  options.provider.audit_sample_rate = 0.1;
  auto federation_result =
      fra::Federation::Create(std::move(dataset.company_partitions), options);
  if (!federation_result.ok()) {
    std::fprintf(stderr, "federation setup failed: %s\n",
                 federation_result.status().ToString().c_str());
    return 1;
  }
  auto federation = std::move(federation_result).ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  for (fra::FraAlgorithm algorithm :
       {fra::FraAlgorithm::kExact, fra::FraAlgorithm::kOpta,
        fra::FraAlgorithm::kIidEst, fra::FraAlgorithm::kIidEstLsr,
        fra::FraAlgorithm::kNonIidEst, fra::FraAlgorithm::kNonIidEstLsr}) {
    auto batch = provider.ExecuteBatch(queries, algorithm);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s batch failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   batch.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s answered %zu queries\n",
                fra::FraAlgorithmToString(algorithm), batch->size());
  }

  // Let the background EXACT replays drain before reading their metrics.
  provider.WaitForAudits();

  const fra::MetricsRegistry& registry = fra::MetricsRegistry::Default();
  fra::PrintQueryLatencyTable(registry);
  PrintAuditReport(provider);
  PrintCounterFamily("Per-silo query counts", "fra_silo_requests_total",
                     /*bytes_family=*/false);
  PrintCounterFamily("Communication bytes", "fra_comm_bytes_total",
                     /*bytes_family=*/true);
  PrintCounterFamily("Communication messages", "fra_comm_messages_total",
                     /*bytes_family=*/false);
  PrintOneTrace();
  fra::PrintMetricsExports(registry);
  return 0;
}
