// TCP federation: the paper's deployment shape on one machine.
//
// Spins up three silo servers on real loopback sockets (in production
// each would be a separate process on the data provider's machine),
// points a TcpNetwork-backed service provider at them, and answers
// queries over actual TCP round trips — demonstrating that the provider
// stack is transport agnostic.
//
//   ./build/examples/tcp_federation

#include <cstdio>

#include "data/generator.h"
#include "federation/service_provider.h"
#include "federation/silo.h"
#include "net/tcp_network.h"
#include "util/timer.h"

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 150000;
  data_options.seed = 17;
  data_options.non_iid = true;
  auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();

  fra::Silo::Options silo_options;
  silo_options.grid_spec.domain = dataset.domain;
  silo_options.grid_spec.cell_length = 1.5;

  // Launch one TCP server per company silo.
  std::vector<std::unique_ptr<fra::Silo>> silos;
  std::vector<std::unique_ptr<fra::TcpSiloServer>> servers;
  fra::TcpNetwork network;
  for (size_t s = 0; s < dataset.company_partitions.size(); ++s) {
    auto silo = fra::Silo::Create(static_cast<int>(s),
                                  std::move(dataset.company_partitions[s]),
                                  silo_options)
                    .ValueOrDie();
    auto server = fra::TcpSiloServer::Start(silo.get()).ValueOrDie();
    std::printf("silo %zu serving %zu objects on 127.0.0.1:%u\n", s,
                silo->size(), server->port());
    FRA_CHECK_OK(network.AddSilo(static_cast<int>(s), server->port()));
    silos.push_back(std::move(silo));
    servers.push_back(std::move(server));
  }

  // Alg. 1 (grid collection) now happens over the wire.
  fra::Timer setup_timer;
  auto provider = fra::ServiceProvider::Create(&network).ValueOrDie();
  const fra::CommStats::Snapshot setup_comm = provider->comm();
  std::printf("provider ready in %.1f ms; Alg. 1 transferred %.1f KB over "
              "TCP\n\n",
              setup_timer.ElapsedMillis(),
              static_cast<double>(setup_comm.TotalBytes()) / 1024.0);

  const fra::FraQuery query{
      fra::QueryRange::MakeCircle(dataset.domain.Center(), 2.5),
      fra::AggregateKind::kCount};
  std::printf("%-16s %12s %10s %12s\n", "algorithm", "answer", "msgs",
              "round-trip");
  for (fra::FraAlgorithm algorithm :
       {fra::FraAlgorithm::kExact, fra::FraAlgorithm::kIidEstLsr,
        fra::FraAlgorithm::kNonIidEstLsr}) {
    const fra::CommStats::Snapshot before = provider->comm();
    fra::Timer timer;
    const double answer = provider->Execute(query, algorithm).ValueOrDie();
    const double ms = timer.ElapsedMillis();
    const fra::CommStats::Snapshot comm = provider->comm() - before;
    std::printf("%-16s %12.0f %10llu %10.2fms\n",
                fra::FraAlgorithmToString(algorithm), answer,
                static_cast<unsigned long long>(comm.messages), ms);
  }

  uint64_t served = 0;
  for (const auto& server : servers) served += server->requests_served();
  std::printf("\ntotal requests served over TCP: %llu\n",
              static_cast<unsigned long long>(served));
  return 0;
}
