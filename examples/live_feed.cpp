// Live feed: a federation under continuous ingest.
//
// Simulates a morning in a bike-share federation: every "minute" each
// company's silo ingests a batch of fresh records (new trips around the
// stations), the provider periodically pulls grid deltas, and a monitoring
// query tracks the fleet density around the central station in near real
// time — showing the estimator catching up with the stream after each
// sync.
//
//   ./build/examples/live_feed

#include <cstdio>

#include "data/generator.h"
#include "federation/federation.h"
#include "util/random.h"

int main() {
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 150000;
  data_options.seed = 88;
  data_options.non_iid = true;
  auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();
  const fra::Point station = dataset.domain.Center();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;
  options.silo.compact_fraction = 0.05;
  auto federation =
      fra::Federation::Create(std::move(dataset.company_partitions), options)
          .ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  const fra::FraQuery monitor{fra::QueryRange::MakeCircle(station, 2.0),
                              fra::AggregateKind::kCount};

  std::printf("monitoring bikes within 2 km of the central station\n");
  std::printf("%-8s %12s %14s %14s %12s\n", "minute", "exact",
              "estimate", "stale est.", "sync bytes");

  fra::Rng rng(99);
  for (int minute = 1; minute <= 10; ++minute) {
    // Each company receives a burst of new trips near the station area.
    for (size_t s = 0; s < federation->num_silos(); ++s) {
      fra::ObjectSet batch;
      const size_t arrivals = 200 + rng.NextUint64(400);
      for (size_t i = 0; i < arrivals; ++i) {
        batch.push_back(
            {{rng.NextGaussian(station.x, 1.2),
              rng.NextGaussian(station.y, 1.2)},
             static_cast<double>(rng.NextInt64(0, 4))});
      }
      federation->silo(s).Ingest(batch);
    }

    // Estimate BEFORE syncing: the provider's grids are stale, so the
    // single-silo estimator lags the stream...
    const double stale =
        provider.Execute(monitor, fra::FraAlgorithm::kNonIidEst)
            .ValueOrDie();

    // ...then pull the grid deltas and estimate again.
    const fra::CommStats::Snapshot before = provider.comm();
    FRA_CHECK_OK(provider.SyncGrids());
    const uint64_t sync_bytes = (provider.comm() - before).TotalBytes();
    const double fresh =
        provider.Execute(monitor, fra::FraAlgorithm::kNonIidEst)
            .ValueOrDie();
    const double exact =
        provider.Execute(monitor, fra::FraAlgorithm::kExact).ValueOrDie();

    std::printf("%-8d %12.0f %14.0f %14.0f %12llu\n", minute, exact, fresh,
                stale, static_cast<unsigned long long>(sync_bytes));
  }

  std::printf("\nEach sync ships only the grid cells the new trips touched;\n"
              "silos auto-compact their tree indexes in the background\n"
              "(threshold: 5%% of the base partition).\n");
  return 0;
}
