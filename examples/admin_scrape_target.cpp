// Boots a small traced federation, runs a workload so every metric
// family has samples, then serves the admin endpoints until killed (or
// for argv[1] seconds, default 30). Prints `ADMIN_PORT=<port>` on
// stdout once the server is up, so scripts can discover the ephemeral
// port. This is the scrape target behind `scripts/ci.sh metrics-lint`
// (scripts/check_metrics_exposition.sh).
//
//   ./build/examples/admin_scrape_target [serve_seconds]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "eval/workload.h"
#include "federation/admin.h"
#include "federation/federation.h"
#include "obs/admin_server.h"
#include "util/logging.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  int serve_seconds = 30;
  if (argc > 1) serve_seconds = std::atoi(argv[1]);
  if (serve_seconds <= 0) serve_seconds = 30;

  fra::Tracer::Get().SetEnabled(true);

  fra::MobilityDataOptions data_options;
  data_options.num_objects = 20000;
  data_options.seed = 11;
  auto dataset_result = fra::GenerateMobilityData(data_options);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  fra::FederationDataset dataset = std::move(dataset_result).ValueOrDie();

  fra::WorkloadOptions workload;
  workload.num_queries = 20;
  workload.radius_km = 2.0;
  auto queries_result =
      fra::GenerateQueries(dataset.company_partitions, workload);
  if (!queries_result.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 queries_result.status().ToString().c_str());
    return 1;
  }
  const std::vector<fra::FraQuery> queries =
      std::move(queries_result).ValueOrDie();

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;  // km
  // Capture everything: the lint script asserts /debug/flightz has
  // records, and CI queries are far faster than the 50 ms default.
  options.provider.flight_recorder.slow_threshold_micros = 0.0;
  // Run the continuous profiler so the fra_profile_* families (and
  // /debug/profilez) have real content to lint.
  options.provider.profiling.enabled = true;
  auto federation_result =
      fra::Federation::Create(std::move(dataset.company_partitions), options);
  if (!federation_result.ok()) {
    std::fprintf(stderr, "federation setup failed: %s\n",
                 federation_result.status().ToString().c_str());
    return 1;
  }
  auto federation = std::move(federation_result).ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  for (fra::FraAlgorithm algorithm :
       {fra::FraAlgorithm::kExact, fra::FraAlgorithm::kIidEst}) {
    auto batch = provider.ExecuteBatch(queries, algorithm);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s batch failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   batch.status().ToString().c_str());
      return 1;
    }
  }

  auto server_result = fra::AdminServer::Start();
  if (!server_result.ok()) {
    std::fprintf(stderr, "admin server failed to start: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_result).ValueOrDie();
  fra::InstallFederationAdminHandlers(server.get(), &provider);

  // One structured record so /debug/logz and fra_log_records_total have
  // content to lint.
  FRA_LOG(INFO) << "scrape target serving " << queries.size()
                << "-query workload results on port " << server->port();

  std::printf("ADMIN_PORT=%u\n", static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  server->Stop();
  return 0;
}
