// City planner: district-level statistics over a non-IID federation.
//
// A mobility-planning team wants, for every district of the city, the
// vehicle density and the AVG / STDEV of carried passengers — without any
// company revealing its raw trips. This exercises rectangular ranges, the
// Sec. 7 AVG/STDEV extensions, and NonIID-est on skewed company data.
//
//   ./build/examples/city_planner

#include <cstdio>

#include "baseline/brute_force.h"
#include "data/generator.h"
#include "federation/federation.h"

int main() {
  // Companies with strongly different district focus (non-IID).
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 300000;
  data_options.seed = 2024;
  data_options.non_iid = true;
  data_options.non_iid_skew = 2.0;
  auto dataset = fra::GenerateMobilityData(data_options).ValueOrDie();
  const fra::BruteForceAggregator truth(dataset.company_partitions);

  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;
  auto federation =
      fra::Federation::Create(std::move(dataset.company_partitions), options)
          .ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  // Divide the city into a 3x3 grid of planning districts.
  constexpr int kDistricts = 3;
  const fra::Rect domain = dataset.domain;
  const double dw = domain.Width() / kDistricts;
  const double dh = domain.Height() / kDistricts;

  std::printf("District survey via NonIID-est (federated, 1 silo/query)\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "district", "vehicles",
              "err(%)", "AVG pax", "STDEV pax");

  for (int row = 0; row < kDistricts; ++row) {
    for (int col = 0; col < kDistricts; ++col) {
      const fra::QueryRange district = fra::QueryRange::MakeRect(
          {domain.min.x + col * dw, domain.min.y + row * dh},
          {domain.min.x + (col + 1) * dw, domain.min.y + (row + 1) * dh});

      const double count =
          provider
              .Execute({district, fra::AggregateKind::kCount},
                       fra::FraAlgorithm::kNonIidEst)
              .ValueOrDie();
      const double avg =
          provider
              .Execute({district, fra::AggregateKind::kAvg},
                       fra::FraAlgorithm::kNonIidEst)
              .ValueOrDie();
      const double stdev =
          provider
              .Execute({district, fra::AggregateKind::kStdev},
                       fra::FraAlgorithm::kNonIidEst)
              .ValueOrDie();
      const double exact_count =
          truth.Aggregate(district, fra::AggregateKind::kCount).ValueOrDie();
      const double error =
          exact_count > 0
              ? 100.0 * std::abs(count - exact_count) / exact_count
              : 0.0;

      char name[16];
      std::snprintf(name, sizeof(name), "D%d-%d", row + 1, col + 1);
      std::printf("%-10s %12.0f %12.2f %12.3f %12.3f\n", name, count, error,
                  avg, stdev);
    }
  }

  // Compare aggregate accuracy: IID-est vs NonIID-est on the hotspots.
  std::printf("\nWhy NonIID-est? On skewed company data, global rescaling\n"
              "(IID-est) mis-extrapolates the sampled silo:\n\n");
  std::printf("%-24s %14s %14s %14s\n", "hotspot query", "exact",
              "IID-est", "NonIID-est");
  for (int q = 0; q < 5; ++q) {
    // Probe around the densest areas.
    const fra::Point center{
        domain.min.x + domain.Width() * (0.3 + 0.1 * q),
        domain.min.y + domain.Height() * (0.35 + 0.08 * q)};
    const fra::QueryRange range = fra::QueryRange::MakeCircle(center, 3.0);
    const double exact =
        truth.Aggregate(range, fra::AggregateKind::kCount).ValueOrDie();
    if (exact < 50) continue;
    const double iid =
        provider
            .ExecuteWithSilo({range, fra::AggregateKind::kCount},
                             fra::FraAlgorithm::kIidEst, q % 3)
            .ValueOrDie();
    const double non_iid =
        provider
            .ExecuteWithSilo({range, fra::AggregateKind::kCount},
                             fra::FraAlgorithm::kNonIidEst, q % 3)
            .ValueOrDie();
    char label[32];
    std::snprintf(label, sizeof(label), "circle@(%.0f,%.0f) r=3", center.x,
                  center.y);
    std::printf("%-24s %14.0f %14.0f %14.0f\n", label, exact, iid, non_iid);
  }
  return 0;
}
