// federation_cli: drive a federation from the command line.
//
// Subcommands:
//   generate <path.csv> [objects] [seed] [--iid]
//       Synthesise a mobility corpus (3 companies, 1:1:2) and write it as
//       CSV ("silo,x,y,measure", km coordinates).
//   query <path.csv> <x> <y> <radius_km> [F] [algorithm]
//       Load the CSV as a federation and answer one circular FRA query.
//       F in {COUNT, SUM, AVG, STDEV}; algorithm in
//       {exact, opta, iid, iid+lsr, noniid, noniid+lsr, auto}.
//   stats <path.csv>
//       Print federation statistics (per-silo sizes, domain,
//       heterogeneity, recommended estimator).
//
// Examples:
//   federation_cli generate /tmp/city.csv 200000
//   federation_cli query /tmp/city.csv 70 140 2.5 COUNT noniid+lsr
//   federation_cli stats /tmp/city.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/csv.h"
#include "data/generator.h"
#include "federation/federation.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  federation_cli generate <path.csv> [objects] [seed] "
               "[--iid]\n"
               "  federation_cli query <path.csv> <x> <y> <radius_km> "
               "[COUNT|SUM|AVG|STDEV] [exact|opta|iid|iid+lsr|noniid|"
               "noniid+lsr|auto]\n"
               "  federation_cli stats <path.csv>\n");
  return 2;
}

bool ParseKind(const std::string& name, fra::AggregateKind* kind) {
  if (name == "COUNT") *kind = fra::AggregateKind::kCount;
  else if (name == "SUM") *kind = fra::AggregateKind::kSum;
  else if (name == "AVG") *kind = fra::AggregateKind::kAvg;
  else if (name == "STDEV") *kind = fra::AggregateKind::kStdev;
  else return false;
  return true;
}

bool ParseAlgorithm(const std::string& name, fra::FraAlgorithm* algorithm,
                    bool* auto_mode) {
  *auto_mode = false;
  if (name == "exact") *algorithm = fra::FraAlgorithm::kExact;
  else if (name == "opta") *algorithm = fra::FraAlgorithm::kOpta;
  else if (name == "iid") *algorithm = fra::FraAlgorithm::kIidEst;
  else if (name == "iid+lsr") *algorithm = fra::FraAlgorithm::kIidEstLsr;
  else if (name == "noniid") *algorithm = fra::FraAlgorithm::kNonIidEst;
  else if (name == "noniid+lsr") *algorithm = fra::FraAlgorithm::kNonIidEstLsr;
  else if (name == "auto") *auto_mode = true;
  else return false;
  return true;
}

fra::Result<std::unique_ptr<fra::Federation>> LoadFederation(
    const std::string& path) {
  FRA_ASSIGN_OR_RETURN(std::vector<fra::ObjectSet> partitions,
                       fra::ReadCsv(path));
  fra::FederationOptions options;
  options.silo.grid_spec.cell_length = 1.5;
  return fra::Federation::Create(std::move(partitions), options);
}

int Generate(int argc, char** argv) {
  if (argc < 3) return Usage();
  fra::MobilityDataOptions options;
  options.num_objects = argc > 3 ? static_cast<size_t>(std::atoll(argv[3]))
                                 : 100000;
  options.seed = argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 1;
  options.non_iid = true;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iid") == 0) options.non_iid = false;
  }
  auto dataset = fra::GenerateMobilityData(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const fra::Status written =
      fra::WriteCsv(argv[2], dataset->company_partitions);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu objects (%zu silos, %s) to %s\n",
              dataset->TotalObjects(), dataset->company_partitions.size(),
              options.non_iid ? "non-IID" : "IID", argv[2]);
  return 0;
}

int Query(int argc, char** argv) {
  if (argc < 6) return Usage();
  auto federation = LoadFederation(argv[2]);
  if (!federation.ok()) {
    std::fprintf(stderr, "%s\n", federation.status().ToString().c_str());
    return 1;
  }

  fra::FraQuery query;
  query.range = fra::QueryRange::MakeCircle(
      {std::atof(argv[3]), std::atof(argv[4])}, std::atof(argv[5]));
  query.kind = fra::AggregateKind::kCount;
  if (argc > 6 && !ParseKind(argv[6], &query.kind)) return Usage();

  fra::FraAlgorithm algorithm = fra::FraAlgorithm::kNonIidEstLsr;
  bool auto_mode = false;
  if (argc > 7 && !ParseAlgorithm(argv[7], &algorithm, &auto_mode)) {
    return Usage();
  }

  fra::ServiceProvider& provider = (*federation)->provider();
  if (auto_mode) algorithm = provider.RecommendAlgorithm(/*use_lsr=*/true);

  const fra::CommStats::Snapshot before = provider.comm();
  auto answer = provider.Execute(query, algorithm);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  const fra::CommStats::Snapshot comm = provider.comm() - before;
  std::printf("%s(%s) within %.2f km of (%.2f, %.2f) = %.4f\n",
              fra::AggregateKindToString(query.kind),
              fra::FraAlgorithmToString(algorithm), std::atof(argv[5]),
              std::atof(argv[3]), std::atof(argv[4]), *answer);
  std::printf("communication: %llu message(s), %llu bytes\n",
              static_cast<unsigned long long>(comm.messages),
              static_cast<unsigned long long>(comm.TotalBytes()));
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto federation = LoadFederation(argv[2]);
  if (!federation.ok()) {
    std::fprintf(stderr, "%s\n", federation.status().ToString().c_str());
    return 1;
  }
  fra::ServiceProvider& provider = (*federation)->provider();
  const fra::Rect domain = provider.merged_grid().spec().domain;
  std::printf("federation: %zu silos, %llu objects\n",
              (*federation)->num_silos(),
              static_cast<unsigned long long>(
                  provider.merged_grid().total().count));
  for (size_t s = 0; s < (*federation)->num_silos(); ++s) {
    std::printf("  silo %zu: %zu objects\n", s,
                (*federation)->silo(s).size());
  }
  std::printf("domain: (%.2f, %.2f) - (%.2f, %.2f) km\n", domain.min.x,
              domain.min.y, domain.max.x, domain.max.y);
  std::printf("heterogeneity: %.4f -> recommended estimator: %s\n",
              provider.MeasureHeterogeneity(),
              fra::FraAlgorithmToString(provider.RecommendAlgorithm(true)));
  const fra::Federation::MemoryReport memory = (*federation)->MemoryUsage();
  std::printf("index memory: %.2f MB total\n",
              static_cast<double>(memory.TotalBytes()) / (1024.0 * 1024.0));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "query") return Query(argc, argv);
  if (command == "stats") return Stats(argc, argv);
  return Usage();
}
