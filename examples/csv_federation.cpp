// CSV federation: plug your own dataset into the library.
//
// Demonstrates the on-disk interchange format: each row is
// `silo,x,y,measure` with coordinates in km (use fra::Projection to map
// GPS coordinates into the plane). The example writes a synthetic corpus
// to CSV, reads it back as an untrusted input would be, validates it, and
// serves queries over the loaded federation.
//
//   ./build/examples/csv_federation [path.csv]

#include <cstdio>
#include <string>

#include "data/csv.h"
#include "data/generator.h"
#include "federation/federation.h"
#include "geo/projection.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/fra_example_federation.csv";

  // Stage 1: produce a CSV (stand-in for a public bike-share dump that was
  // projected to km with fra::Projection).
  {
    fra::MobilityDataOptions options;
    options.num_objects = 50000;
    options.seed = 5;
    auto dataset = fra::GenerateMobilityData(options).ValueOrDie();
    const fra::Status status =
        fra::WriteCsv(path, dataset.company_partitions);
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu objects across %zu silos to %s\n",
                dataset.TotalObjects(), dataset.company_partitions.size(),
                path.c_str());
  }

  // Stage 2: load it back (errors — missing file, bad header, malformed
  // rows — surface as Status, never exceptions).
  auto loaded = fra::ReadCsv(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::vector<fra::ObjectSet> partitions = std::move(loaded).ValueOrDie();
  std::printf("loaded %zu partitions\n", partitions.size());

  // Stage 3: build the federation; the grid domain is inferred from the
  // data when left unset.
  fra::FederationOptions options;
  options.silo.grid_spec.cell_length = 1.5;
  auto federation =
      fra::Federation::Create(std::move(partitions), options).ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  // Show how a GPS query would be projected into the plane. The synthetic
  // corpus spans the paper's Beijing bbox starting at (39.5 N, 115.5 E).
  const fra::Projection projection(39.5, 115.5);
  const fra::Point center = projection.Forward(40.2, 116.3);
  std::printf("query center (40.2 N, 116.3 E) -> (%.1f km, %.1f km)\n",
              center.x, center.y);

  const fra::FraQuery query{fra::QueryRange::MakeCircle(center, 5.0),
                            fra::AggregateKind::kCount};
  const double estimate =
      provider.Execute(query, fra::FraAlgorithm::kNonIidEstLsr).ValueOrDie();
  const double exact =
      provider.Execute(query, fra::FraAlgorithm::kExact).ValueOrDie();
  std::printf("objects within 5 km: NonIID-est+LSR=%.0f, EXACT=%.0f\n",
              estimate, exact);

  std::remove(path.c_str());
  return 0;
}
