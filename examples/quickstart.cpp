// Quickstart: build a 3-silo federation over synthetic city data and
// answer one FRA query with each of the paper's six algorithms.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "baseline/brute_force.h"
#include "data/generator.h"
#include "federation/federation.h"

int main() {
  // 1. Synthesise a small shared-mobility corpus: three companies holding
  //    data in 1:1:2 proportion over a Beijing-like extent.
  fra::MobilityDataOptions data_options;
  data_options.num_objects = 200000;
  data_options.seed = 42;
  data_options.non_iid = true;  // companies focus on different districts
  auto dataset_result = fra::GenerateMobilityData(data_options);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  fra::FederationDataset dataset = std::move(dataset_result).ValueOrDie();

  // Keep a pooled copy for ground truth (a real federation could not!).
  const fra::BruteForceAggregator truth(dataset.company_partitions);

  // 2. Assemble the federation: one silo per company, a simulated network
  //    that meters every byte, and the service provider (which runs
  //    Alg. 1 to collect and merge the silo grid indices).
  fra::FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = 1.5;  // km
  options.provider.epsilon = 0.1;
  options.provider.delta = 0.01;
  auto federation_result =
      fra::Federation::Create(std::move(dataset.company_partitions), options);
  if (!federation_result.ok()) {
    std::fprintf(stderr, "federation setup failed: %s\n",
                 federation_result.status().ToString().c_str());
    return 1;
  }
  auto federation = std::move(federation_result).ValueOrDie();
  fra::ServiceProvider& provider = federation->provider();

  // 3. "How many vehicles are within 2 km of the city center?"
  const fra::FraQuery query{
      fra::QueryRange::MakeCircle(dataset.domain.Center(), 2.0),
      fra::AggregateKind::kCount};
  const double exact_answer =
      truth.Aggregate(query.range, query.kind).ValueOrDie();
  std::printf("ground truth (pooled data): %.0f vehicles\n\n", exact_answer);

  std::printf("%-16s %12s %10s %10s %10s\n", "algorithm", "answer",
              "error", "msgs", "bytes");
  for (fra::FraAlgorithm algorithm :
       {fra::FraAlgorithm::kExact, fra::FraAlgorithm::kOpta,
        fra::FraAlgorithm::kIidEst, fra::FraAlgorithm::kIidEstLsr,
        fra::FraAlgorithm::kNonIidEst, fra::FraAlgorithm::kNonIidEstLsr}) {
    const fra::CommStats::Snapshot before = provider.comm();
    auto answer = provider.Execute(query, algorithm);
    if (!answer.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   fra::FraAlgorithmToString(algorithm),
                   answer.status().ToString().c_str());
      return 1;
    }
    const fra::CommStats::Snapshot comm = provider.comm() - before;
    std::printf("%-16s %12.1f %9.2f%% %10llu %10llu\n",
                fra::FraAlgorithmToString(algorithm), *answer,
                100.0 * std::abs(*answer - exact_answer) / exact_answer,
                static_cast<unsigned long long>(comm.messages),
                static_cast<unsigned long long>(comm.TotalBytes()));
  }

  std::printf(
      "\nNote how the single-silo estimators answer with 1 message while\n"
      "EXACT/OPTA contact every silo, and how NonIID-est stays accurate on\n"
      "this skewed (non-IID) federation.\n");
  return 0;
}
