// Parameterized end-to-end sweep: for a grid of configurations
// (silo count x grid length x range shape x data regime), every
// algorithm must stay within its accuracy envelope and the algorithm
// ordering the paper reports must hold. One shared corpus per regime
// keeps the suite fast.

#include <gtest/gtest.h>

#include <map>

#include "baseline/brute_force.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "federation/federation.h"

namespace fra {
namespace {

struct PipelineParam {
  size_t num_silos;
  double grid_length;
  bool rect_ranges;
  bool non_iid;
};

std::string ParamName(const ::testing::TestParamInfo<PipelineParam>& info) {
  const PipelineParam& p = info.param;
  std::string name = "m" + std::to_string(p.num_silos) + "_L" +
                     std::to_string(static_cast<int>(p.grid_length * 10)) +
                     (p.rect_ranges ? "_rect" : "_circle") +
                     (p.non_iid ? "_noniid" : "_iid");
  return name;
}

// One generated corpus per regime, shared across all instances.
const FederationDataset& CorpusFor(bool non_iid) {
  static std::map<bool, FederationDataset>* corpora = [] {
    auto* map = new std::map<bool, FederationDataset>();
    for (bool regime : {false, true}) {
      MobilityDataOptions options;
      options.num_objects = 90000;
      options.seed = 4242;
      options.non_iid = regime;
      options.domain = Rect{{0, 0}, {50, 50}};
      options.num_hotspots = 8;
      map->emplace(regime, GenerateMobilityData(options).ValueOrDie());
    }
    return map;
  }();
  return corpora->at(non_iid);
}

class PipelineTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineTest, AllAlgorithmsWithinEnvelope) {
  const PipelineParam param = GetParam();
  const FederationDataset& dataset = CorpusFor(param.non_iid);
  std::vector<ObjectSet> partitions =
      SplitIntoSilos(dataset.company_partitions, param.num_silos, 11)
          .ValueOrDie();
  const BruteForceAggregator truth(partitions);

  WorkloadOptions workload;
  workload.num_queries = 25;
  workload.radius_km = 5.0;
  workload.rect_ranges = param.rect_ranges;
  workload.seed = 12;
  const std::vector<FraQuery> queries =
      GenerateQueries(partitions, workload).ValueOrDie();

  FederationOptions options;
  options.silo.grid_spec.domain = dataset.domain;
  options.silo.grid_spec.cell_length = param.grid_length;
  auto federation =
      Federation::Create(std::move(partitions), options).ValueOrDie();
  ServiceProvider& provider = federation->provider();

  std::map<FraAlgorithm, double> mre;
  for (FraAlgorithm algorithm :
       {FraAlgorithm::kExact, FraAlgorithm::kOpta, FraAlgorithm::kIidEst,
        FraAlgorithm::kIidEstLsr, FraAlgorithm::kNonIidEst,
        FraAlgorithm::kNonIidEstLsr}) {
    const std::vector<double> answers =
        provider.ExecuteBatch(queries, algorithm).ValueOrDie();
    MreAccumulator accumulator;
    for (size_t i = 0; i < queries.size(); ++i) {
      const double exact =
          truth.Aggregate(queries[i].range, queries[i].kind).ValueOrDie();
      accumulator.Add(exact, answers[i]);
    }
    mre[algorithm] = accumulator.Mre();
  }

  // EXACT is exact in every configuration.
  EXPECT_DOUBLE_EQ(mre[FraAlgorithm::kExact], 0.0);
  // Accuracy envelopes (generous: 25 queries per point).
  EXPECT_LT(mre[FraAlgorithm::kNonIidEst], 0.12);
  EXPECT_LT(mre[FraAlgorithm::kNonIidEstLsr], 0.20);
  EXPECT_LT(mre[FraAlgorithm::kIidEst], 0.30);
  EXPECT_LT(mre[FraAlgorithm::kIidEstLsr], 0.35);
  EXPECT_LT(mre[FraAlgorithm::kOpta], 0.45);
  // The NonIID estimator never loses badly to the IID one — on skewed
  // regimes it must win.
  if (param.non_iid) {
    EXPECT_LT(mre[FraAlgorithm::kNonIidEst], mre[FraAlgorithm::kIidEst]);
  } else {
    EXPECT_LT(mre[FraAlgorithm::kNonIidEst],
              mre[FraAlgorithm::kIidEst] + 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, PipelineTest,
    ::testing::Values(PipelineParam{3, 1.0, false, false},
                      PipelineParam{3, 1.0, false, true},
                      PipelineParam{3, 2.5, true, true},
                      PipelineParam{6, 1.0, false, true},
                      PipelineParam{6, 1.0, true, false},
                      PipelineParam{6, 2.5, false, true},
                      PipelineParam{6, 0.5, false, true},
                      PipelineParam{12, 1.0, false, true},
                      PipelineParam{12, 2.5, true, true},
                      PipelineParam{15, 1.0, false, false}),
    ParamName);

}  // namespace
}  // namespace fra
