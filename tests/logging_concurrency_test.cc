// Log-ring concurrency: many writers hammering the sink while readers
// snapshot and render. Labeled `net` so the TSan CI stage exercises the
// ring's atomic slot-claim + per-slot latch protocol — the place a
// cross-thread ordering bug in the sink would actually live.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/trace.h"

namespace fra {
namespace {

TEST(LogRingConcurrencyTest, ParallelWritersAndSnapshotReaders) {
  LogSink& sink = LogSink::Get();
  sink.Clear();
  sink.set_stderr_min_level(LogLevel::kError);  // keep stderr quiet

  constexpr int kWriters = 8;
  constexpr int kRecordsPerWriter = 2000;
  constexpr int kReaders = 3;
  const uint64_t before = sink.records_logged();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&sink, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<LogRecord> records = sink.Snapshot();
        EXPECT_LE(records.size(), sink.capacity());
        // A snapshot is internally ordered even while writers race.
        for (size_t i = 1; i < records.size(); ++i) {
          EXPECT_GT(records[i].sequence, records[i - 1].sequence);
        }
        (void)sink.RenderJson();
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&sink, w] {
      ScopedTraceId trace(static_cast<uint64_t>(w) + 1);
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        sink.Log(LogLevel::kInfo, "hammer.cc", w, 0,
                 "writer " + std::to_string(w) + " record " +
                     std::to_string(i));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Every write landed (the ring drops old records, never new ones).
  EXPECT_EQ(sink.records_logged() - before,
            static_cast<uint64_t>(kWriters) * kRecordsPerWriter);
  const std::vector<LogRecord> records = sink.Snapshot();
  EXPECT_EQ(records.size(), sink.capacity());
  sink.Clear();
  sink.set_stderr_min_level(LogLevel::kWarn);
}

TEST(LogRingConcurrencyTest, MacroCallSiteIsThreadSafeUnderContention) {
  LogSink& sink = LogSink::Get();
  sink.Clear();
  sink.set_stderr_min_level(LogLevel::kError);

  // All threads share ONE textual call site, so its token bucket and the
  // suppressed counter are contended; the ring must stay consistent and
  // the admitted count bounded by burst + refill.
  const uint64_t before = sink.records_logged();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        FRA_LOG(INFO) << "contended site " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const uint64_t landed = sink.records_logged() - before;
  EXPECT_GE(landed, 1UL);
  EXPECT_LE(landed, 16UL);
  sink.Clear();
  sink.set_stderr_min_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace fra
