// Streaming-ingest subsystem: silo-local delta reads, compaction, grid
// delta sync to the provider, and end-to-end freshness of the estimators.

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "federation/federation.h"
#include "index/grid_index.h"
#include "tests/test_util.h"

namespace fra {
namespace {

const Rect kDomain{{0, 0}, {40, 40}};

// --- GridIndex incremental layer ----------------------------------------

GridIndex::GridSpec Spec() {
  GridIndex::GridSpec spec;
  spec.domain = kDomain;
  spec.cell_length = 2.0;
  return spec;
}

TEST(GridIncrementalTest, AddUpdatesCellsAndTotalImmediately) {
  auto grid = GridIndex::Build({}, Spec()).ValueOrDie();
  grid.Add({{5, 5}, 3.0});
  grid.Add({{5, 5}, 1.0});
  EXPECT_EQ(grid.total().count, 2UL);
  EXPECT_DOUBLE_EQ(grid.total().sum, 4.0);
  EXPECT_EQ(grid.cell(grid.CellOf({5, 5})).count, 2UL);
  EXPECT_EQ(grid.pending_updates(), 1UL);  // one touched cell
}

TEST(GridIncrementalTest, BlockAggregateSeesUncommittedAdds) {
  const ObjectSet base = testing::RandomObjects(2000, kDomain, 1);
  auto grid = GridIndex::Build(base, Spec()).ValueOrDie();
  const QueryRange range = QueryRange::MakeCircle({20, 20}, 7);
  const uint64_t before = grid.IntersectingCellsAggregate(range).count;

  // Insert inside the range, without committing.
  for (int i = 0; i < 50; ++i) {
    grid.Add({{20.0 + 0.01 * i, 20.0}, 1.0});
  }
  EXPECT_EQ(grid.IntersectingCellsAggregate(range).count, before + 50);

  // Committing must not change any answer, only fold the delta in.
  grid.CommitUpdates();
  EXPECT_EQ(grid.pending_updates(), 0UL);
  EXPECT_EQ(grid.IntersectingCellsAggregate(range).count, before + 50);
}

TEST(GridIncrementalTest, FastPathEqualsNaiveWithPendingDelta) {
  const ObjectSet base = testing::RandomObjects(1000, kDomain, 2);
  auto grid = GridIndex::Build(base, Spec()).ValueOrDie();
  const ObjectSet extra = testing::RandomObjects(200, kDomain, 3);
  for (const SpatialObject& o : extra) grid.Add(o);

  Rng rng(4);
  for (int q = 0; q < 30; ++q) {
    const QueryRange range = testing::RandomRange(kDomain, 8.0, q % 2 == 0,
                                                  &rng);
    const AggregateSummary fast = grid.IntersectingCellsAggregate(range);
    const AggregateSummary naive = grid.IntersectingCellsAggregateNaive(range);
    EXPECT_EQ(fast.count, naive.count) << "query " << q;
    EXPECT_NEAR(fast.sum, naive.sum, 1e-6);
  }
}

TEST(GridIncrementalTest, SetCellReplacesAndTracksChange) {
  auto grid = GridIndex::Build({{{5, 5}, 2.0}}, Spec()).ValueOrDie();
  const size_t cell = grid.CellOf({5, 5});
  AggregateSummary replacement;
  replacement.Add(10.0);
  replacement.Add(20.0);
  grid.SetCell(cell, replacement);
  EXPECT_EQ(grid.cell(cell).count, 2UL);
  EXPECT_EQ(grid.total().count, 2UL);
  EXPECT_DOUBLE_EQ(grid.total().sum, 30.0);
  const std::vector<size_t> changed = grid.ChangedCells();
  ASSERT_EQ(changed.size(), 1UL);
  EXPECT_EQ(changed[0], cell);
  grid.ClearChangedCells();
  EXPECT_TRUE(grid.ChangedCells().empty());
}

TEST(GridIncrementalTest, ChangedCellsAreSortedAndDeduplicated) {
  auto grid = GridIndex::Build({}, Spec()).ValueOrDie();
  grid.Add({{39, 39}, 1.0});
  grid.Add({{1, 1}, 1.0});
  grid.Add({{1, 1}, 1.0});  // same cell twice
  const std::vector<size_t> changed = grid.ChangedCells();
  ASSERT_EQ(changed.size(), 2UL);
  EXPECT_LT(changed[0], changed[1]);
}

// --- Silo ingest ----------------------------------------------------------

Silo::Options SiloOptions(double compact_fraction = 0.0) {
  Silo::Options options;
  options.grid_spec.domain = kDomain;
  options.grid_spec.cell_length = 2.0;
  options.compact_fraction = compact_fraction;
  return options;
}

TEST(SiloIngestTest, IngestedObjectsVisibleToAllQueryKinds) {
  const ObjectSet base = testing::RandomObjects(5000, kDomain, 5);
  auto silo = Silo::Create(0, base, SiloOptions()).ValueOrDie();
  const QueryRange range = QueryRange::MakeCircle({10, 10}, 5);
  const uint64_t before = silo->ExactRangeAggregate(range).count;

  ObjectSet batch;
  for (int i = 0; i < 40; ++i) batch.push_back({{10.0, 10.0}, 2.0});
  silo->Ingest(batch);
  EXPECT_EQ(silo->pending_ingest(), 40UL);
  EXPECT_EQ(silo->size(), 5040UL);

  // Exact reads, histogram reads and the silo total all see the batch.
  EXPECT_EQ(silo->ExactRangeAggregate(range).count, before + 40);
  EXPECT_EQ(silo->total().count, 5040UL);
  const AggregateSummary hist =
      silo->HistogramEstimate(range).ValueOrDie();
  EXPECT_GE(hist.count, 40UL);  // at least the fresh exact delta

  // Boundary + interior still reconstructs the exact count.
  AggregateSummary interior;
  silo->grid().ForEachIntersectingCell(
      range, [&](size_t id, CellRelation relation) {
        if (relation == CellRelation::kContained) {
          interior.Merge(silo->grid().cell(id));
        }
      });
  AggregateSummary boundary;
  for (const CellContribution& c :
       silo->BoundaryCellContributions(range, false, 0.1, 0.01, 0.0)) {
    boundary.Merge(c.summary);
  }
  EXPECT_EQ(interior.count + boundary.count, before + 40);
}

TEST(SiloIngestTest, CompactFoldsDeltaWithoutChangingAnswers) {
  const ObjectSet base = testing::RandomObjects(3000, kDomain, 6);
  auto silo = Silo::Create(0, base, SiloOptions()).ValueOrDie();
  silo->Ingest(testing::RandomObjects(300, kDomain, 7));

  const QueryRange range = QueryRange::MakeCircle({20, 20}, 8);
  const AggregateSummary before = silo->ExactRangeAggregate(range);
  silo->Compact();
  EXPECT_EQ(silo->pending_ingest(), 0UL);
  const AggregateSummary after = silo->ExactRangeAggregate(range);
  EXPECT_EQ(after.count, before.count);
  EXPECT_NEAR(after.sum, before.sum, 1e-9);
  EXPECT_EQ(silo->size(), 3300UL);
}

TEST(SiloIngestTest, AutoCompactionTriggersAtThreshold) {
  const ObjectSet base = testing::RandomObjects(1000, kDomain, 8);
  auto silo =
      Silo::Create(0, base, SiloOptions(/*compact_fraction=*/0.05))
          .ValueOrDie();
  silo->Ingest(testing::RandomObjects(30, kDomain, 9));
  EXPECT_EQ(silo->pending_ingest(), 30UL);  // 3% < 5%, no compaction
  silo->Ingest(testing::RandomObjects(30, kDomain, 10));
  EXPECT_EQ(silo->pending_ingest(), 0UL);   // 6% > 5%, compacted
  EXPECT_EQ(silo->size(), 1060UL);
}

TEST(SiloIngestTest, LsrQueriesStayAccurateAfterIngest) {
  const ObjectSet base = testing::RandomObjects(50000, kDomain, 11);
  auto silo = Silo::Create(0, base, SiloOptions()).ValueOrDie();
  silo->Ingest(testing::RandomObjects(500, kDomain, 12));

  const QueryRange range = QueryRange::MakeCircle({20, 20}, 10);
  const double exact =
      static_cast<double>(silo->ExactRangeAggregate(range).count);
  const double approx = static_cast<double>(
      silo->LsrRangeAggregate(range, 0.1, 0.01, exact).count);
  EXPECT_LT(std::abs(approx - exact) / exact, 0.25);
}

// --- Delta sync + end-to-end freshness ------------------------------------

std::unique_ptr<Federation> MakeFederation(size_t objects, size_t silos,
                                           uint64_t seed) {
  std::vector<ObjectSet> partitions(silos);
  const ObjectSet all = testing::RandomObjects(objects, kDomain, seed);
  for (size_t i = 0; i < all.size(); ++i) {
    partitions[i % silos].push_back(all[i]);
  }
  FederationOptions options;
  options.silo.grid_spec.domain = kDomain;
  options.silo.grid_spec.cell_length = 2.0;
  return Federation::Create(std::move(partitions), options).ValueOrDie();
}

TEST(DeltaSyncTest, ProviderGridsCatchUpAfterSync) {
  auto federation = MakeFederation(6000, 3, 13);
  ServiceProvider& provider = federation->provider();
  const uint64_t total_before = provider.merged_grid().total().count;

  ObjectSet batch;
  for (int i = 0; i < 100; ++i) batch.push_back({{15.0, 15.0}, 1.0});
  federation->silo(1).Ingest(batch);

  // Stale until synced.
  EXPECT_EQ(provider.merged_grid().total().count, total_before);
  ASSERT_TRUE(provider.SyncGrids().ok());
  EXPECT_EQ(provider.merged_grid().total().count, total_before + 100);
  EXPECT_EQ(provider.silo_grid(1).total().count, 2000UL + 100UL);

  // The per-cell copies match the silo's own grid exactly.
  const GridIndex& remote = provider.silo_grid(1);
  const GridIndex& local = federation->silo(1).grid();
  for (size_t id = 0; id < local.num_cells(); ++id) {
    EXPECT_EQ(remote.cell(id).count, local.cell(id).count);
  }
}

TEST(DeltaSyncTest, SyncIsIncrementalAndIdempotent) {
  auto federation = MakeFederation(3000, 3, 14);
  ServiceProvider& provider = federation->provider();
  federation->silo(0).Ingest({{{10, 10}, 1.0}});

  const CommStats::Snapshot before_first = provider.comm();
  ASSERT_TRUE(provider.SyncGrids().ok());
  const uint64_t first_bytes =
      (provider.comm() - before_first).TotalBytes();

  // Second sync with no new data ships (nearly) nothing.
  const CommStats::Snapshot before_second = provider.comm();
  ASSERT_TRUE(provider.SyncGrids().ok());
  const uint64_t second_bytes =
      (provider.comm() - before_second).TotalBytes();
  EXPECT_LT(second_bytes, first_bytes);

  // And the totals are unchanged (idempotent application).
  const uint64_t total = provider.merged_grid().total().count;
  ASSERT_TRUE(provider.SyncGrids().ok());
  EXPECT_EQ(provider.merged_grid().total().count, total);
}

TEST(DeltaSyncTest, DeltaSyncCheaperThanFullGridTransfer) {
  auto federation = MakeFederation(6000, 3, 15);
  ServiceProvider& provider = federation->provider();
  federation->silo(2).Ingest(testing::RandomObjects(20, kDomain, 16));

  const CommStats::Snapshot before = provider.comm();
  ASSERT_TRUE(provider.SyncGrids().ok());
  const uint64_t sync_bytes = (provider.comm() - before).TotalBytes();
  // A full grid ship would be num_cells * 40B per silo (~16 KB each).
  const uint64_t full_bytes =
      provider.merged_grid().num_cells() * AggregateSummary::kWireSize * 3;
  EXPECT_LT(sync_bytes, full_bytes / 4);
}

TEST(DeltaSyncTest, EstimatorsSeeFreshDataEndToEnd) {
  auto federation = MakeFederation(20000, 4, 17);
  ServiceProvider& provider = federation->provider();

  // Pour a dense new hotspot into one silo: a genuinely new pattern.
  ObjectSet batch;
  Rng rng(18);
  for (int i = 0; i < 3000; ++i) {
    batch.push_back({{rng.NextGaussian(30.0, 1.0),
                      rng.NextGaussian(30.0, 1.0)},
                     1.0});
  }
  federation->silo(0).Ingest(batch);
  ASSERT_TRUE(provider.SyncGrids().ok());

  const FraQuery query{QueryRange::MakeCircle({30, 30}, 4),
                       AggregateKind::kCount};
  const double exact =
      provider.Execute(query, FraAlgorithm::kExact).ValueOrDie();
  ASSERT_GT(exact, 2500.0);
  for (FraAlgorithm algorithm :
       {FraAlgorithm::kIidEst, FraAlgorithm::kNonIidEst,
        FraAlgorithm::kNonIidEstLsr}) {
    const double estimate =
        provider.Execute(query, algorithm).ValueOrDie();
    EXPECT_NEAR(estimate, exact, 0.35 * exact)
        << FraAlgorithmToString(algorithm);
  }
}

TEST(DeltaSyncTest, IngestAndSyncConvenience) {
  auto federation = MakeFederation(3000, 3, 19);
  const uint64_t before =
      federation->provider().merged_grid().total().count;
  ASSERT_TRUE(
      federation->IngestAndSync(1, {{{12, 12}, 2.0}, {{13, 13}, 3.0}}).ok());
  EXPECT_EQ(federation->provider().merged_grid().total().count, before + 2);
  EXPECT_FALSE(federation->IngestAndSync(99, {}).ok());
}

TEST(DeltaSyncTest, ExactIsAlwaysFreshEvenWithoutSync) {
  auto federation = MakeFederation(5000, 3, 20);
  ServiceProvider& provider = federation->provider();
  const FraQuery query{QueryRange::MakeCircle({20, 20}, 6),
                       AggregateKind::kCount};
  const double before =
      provider.Execute(query, FraAlgorithm::kExact).ValueOrDie();
  ObjectSet batch;
  for (int i = 0; i < 25; ++i) batch.push_back({{20.0, 20.0}, 1.0});
  federation->silo(0).Ingest(batch);
  // EXACT reads the silos directly, so no sync is needed for freshness.
  EXPECT_DOUBLE_EQ(
      provider.Execute(query, FraAlgorithm::kExact).ValueOrDie(),
      before + 25.0);
}

}  // namespace
}  // namespace fra
