#include <gtest/gtest.h>

#include <cstdlib>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/workload.h"
#include "tests/test_util.h"

namespace fra {
namespace {

TEST(MetricsTest, RelativeErrorDefinition) {
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 110.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(50.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(-10.0, -11.0), 0.1);
}

TEST(MetricsTest, ZeroExactConvention) {
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 5.0), 1.0);
}

TEST(MetricsTest, MreAveragesOverQueries) {
  MreAccumulator mre;
  mre.Add(100, 90);   // 0.10
  mre.Add(100, 120);  // 0.20
  mre.Add(100, 100);  // 0.00
  EXPECT_EQ(mre.count(), 3UL);
  EXPECT_NEAR(mre.Mre(), 0.1, 1e-12);
  EXPECT_NEAR(mre.MaxRe(), 0.2, 1e-12);
}

TEST(WorkloadTest, GeneratesRequestedQueries) {
  const ObjectSet objects =
      testing::RandomObjects(1000, Rect{{0, 0}, {50, 50}}, 1);
  WorkloadOptions options;
  options.num_queries = 25;
  options.radius_km = 2.0;
  const std::vector<FraQuery> queries =
      GenerateQueries({objects}, options).ValueOrDie();
  ASSERT_EQ(queries.size(), 25UL);
  for (const FraQuery& query : queries) {
    ASSERT_TRUE(query.range.is_circle());
    EXPECT_DOUBLE_EQ(query.range.circle().radius, 2.0);
    EXPECT_EQ(query.kind, AggregateKind::kCount);
  }
}

TEST(WorkloadTest, CentersAreDataLocations) {
  const ObjectSet objects =
      testing::RandomObjects(500, Rect{{0, 0}, {50, 50}}, 2);
  WorkloadOptions options;
  options.num_queries = 50;
  const std::vector<FraQuery> queries =
      GenerateQueries({objects}, options).ValueOrDie();
  for (const FraQuery& query : queries) {
    const Point center = query.range.circle().center;
    bool found = false;
    for (const SpatialObject& o : objects) {
      if (o.location == center) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(WorkloadTest, RectRangesHaveRequestedHalfWidth) {
  const ObjectSet objects =
      testing::RandomObjects(100, Rect{{0, 0}, {50, 50}}, 3);
  WorkloadOptions options;
  options.rect_ranges = true;
  options.radius_km = 3.0;
  options.num_queries = 10;
  const std::vector<FraQuery> queries =
      GenerateQueries({objects}, options).ValueOrDie();
  for (const FraQuery& query : queries) {
    ASSERT_TRUE(query.range.is_rect());
    EXPECT_DOUBLE_EQ(query.range.rect().Width(), 6.0);
    EXPECT_DOUBLE_EQ(query.range.rect().Height(), 6.0);
  }
}

TEST(WorkloadTest, DeterministicAndSeedSensitive) {
  const ObjectSet objects =
      testing::RandomObjects(100, Rect{{0, 0}, {50, 50}}, 4);
  WorkloadOptions options;
  options.num_queries = 10;
  const auto a = GenerateQueries({objects}, options).ValueOrDie();
  const auto b = GenerateQueries({objects}, options).ValueOrDie();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].range.circle().center, b[i].range.circle().center);
  }
  options.seed = 123;
  const auto c = GenerateQueries({objects}, options).ValueOrDie();
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].range.circle().center == c[i].range.circle().center)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkloadTest, RejectsBadInput) {
  EXPECT_FALSE(GenerateQueries({}, WorkloadOptions()).ok());
  std::vector<ObjectSet> empty(2);
  EXPECT_FALSE(GenerateQueries(empty, WorkloadOptions()).ok());
  const ObjectSet objects =
      testing::RandomObjects(10, Rect{{0, 0}, {10, 10}}, 5);
  WorkloadOptions options;
  options.radius_km = 0.0;
  EXPECT_FALSE(GenerateQueries({objects}, options).ok());
}

TEST(ReportTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(FormatBytes(5ULL * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(ExperimentConfigTest, DefaultsMatchPaperTable2Shape) {
  const ExperimentConfig config = ExperimentConfig::Defaults();
  EXPECT_EQ(config.num_silos, 6UL);
  EXPECT_DOUBLE_EQ(config.radius_km, 2.0);
  EXPECT_EQ(config.num_queries, 150UL);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.10);
  EXPECT_DOUBLE_EQ(config.delta, 0.01);
}

TEST(ExperimentConfigTest, EnvScaleSmoke) {
  ::setenv("FRA_BENCH_SCALE", "smoke", 1);
  const ExperimentConfig config = ApplyEnvScale(ExperimentConfig::Defaults());
  EXPECT_EQ(config.total_objects, 30000UL);
  EXPECT_LE(config.num_queries, 30UL);
  ::unsetenv("FRA_BENCH_SCALE");
}

TEST(ExperimentConfigTest, EnvScalePaper) {
  ::setenv("FRA_BENCH_SCALE", "paper", 1);
  const ExperimentConfig config = ApplyEnvScale(ExperimentConfig::Defaults());
  EXPECT_EQ(config.total_objects, 3000000UL);
  ::unsetenv("FRA_BENCH_SCALE");
}

TEST(ExperimentRunnerTest, EndToEndSmallRun) {
  ExperimentConfig config;
  config.total_objects = 30000;
  config.num_silos = 3;
  config.num_queries = 20;
  config.radius_km = 3.0;

  ExperimentRunner runner(config);
  ASSERT_TRUE(runner.Prepare().ok());
  ASSERT_EQ(runner.queries().size(), 20UL);
  ASSERT_EQ(runner.exact_answers().size(), 20UL);

  const AlgorithmResult exact =
      runner.RunAlgorithm(FraAlgorithm::kExact).ValueOrDie();
  EXPECT_DOUBLE_EQ(exact.mre, 0.0);
  EXPECT_GT(exact.total_time_seconds, 0.0);
  EXPECT_EQ(exact.comm_messages, 20UL * 3);  // m messages per query
  EXPECT_GT(exact.index_memory_bytes, 0UL);

  const AlgorithmResult non_iid =
      runner.RunAlgorithm(FraAlgorithm::kNonIidEst).ValueOrDie();
  EXPECT_LT(non_iid.mre, 0.2);
  EXPECT_EQ(non_iid.comm_messages, 20UL);  // one silo per query
  EXPECT_LT(non_iid.comm_bytes, exact.comm_bytes * 3);
}

TEST(ExperimentRunnerTest, RunWithoutPrepareFails) {
  ExperimentRunner runner(ExperimentConfig::Defaults());
  EXPECT_TRUE(runner.RunAlgorithm(FraAlgorithm::kExact).status().IsInternal());
}

TEST(ExperimentRunnerTest, IndexMemoryAttribution) {
  ExperimentConfig config;
  config.total_objects = 20000;
  config.num_silos = 3;
  config.num_queries = 5;
  ExperimentRunner runner(config);
  ASSERT_TRUE(runner.Prepare().ok());
  const size_t exact = runner.IndexMemoryFor(FraAlgorithm::kExact);
  const size_t opta = runner.IndexMemoryFor(FraAlgorithm::kOpta);
  const size_t iid = runner.IndexMemoryFor(FraAlgorithm::kIidEst);
  const size_t iid_lsr = runner.IndexMemoryFor(FraAlgorithm::kIidEstLsr);
  EXPECT_LT(opta, exact);     // histogram is tiny (paper: <0.2 MB)
  EXPECT_GT(iid, exact);      // adds grid indices
  EXPECT_GT(iid_lsr, iid);    // adds LSR levels
  EXPECT_LT(iid_lsr, 3 * iid);  // ~2x R-tree, not more
}


TEST(ExperimentRunnerTest, BatchLatenciesAreCollected) {
  ExperimentConfig config;
  config.total_objects = 20000;
  config.num_silos = 3;
  config.num_queries = 15;
  ExperimentRunner runner(config);
  ASSERT_TRUE(runner.Prepare().ok());
  std::vector<double> latencies;
  ASSERT_TRUE(runner.federation()
                  .provider()
                  .ExecuteBatch(runner.queries(), FraAlgorithm::kNonIidEst,
                                &latencies)
                  .ok());
  ASSERT_EQ(latencies.size(), 15UL);
  for (double latency : latencies) {
    EXPECT_GT(latency, 0.0);
    EXPECT_LT(latency, 5.0);
  }
}

}  // namespace
}  // namespace fra
