#ifndef FRA_TESTS_TEST_UTIL_H_
#define FRA_TESTS_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "agg/spatial_object.h"
#include "geo/range.h"
#include "geo/rect.h"
#include "util/random.h"
#include "util/result.h"

namespace fra {
namespace testing {

/// Uniform random objects over `domain` with integer measures in [0, 4].
inline ObjectSet RandomObjects(size_t n, const Rect& domain, uint64_t seed) {
  Rng rng(seed);
  ObjectSet objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SpatialObject o;
    o.location = {rng.NextDouble(domain.min.x, domain.max.x),
                  rng.NextDouble(domain.min.y, domain.max.y)};
    o.measure = static_cast<double>(rng.NextInt64(0, 4));
    objects.push_back(o);
  }
  return objects;
}

/// Clustered random objects: `clusters` Gaussian blobs plus 10% uniform.
inline ObjectSet ClusteredObjects(size_t n, const Rect& domain, size_t clusters,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers(clusters);
  for (Point& c : centers) {
    c = {rng.NextDouble(domain.min.x, domain.max.x),
         rng.NextDouble(domain.min.y, domain.max.y)};
  }
  const double sigma = domain.Width() / 30.0;
  ObjectSet objects;
  objects.reserve(n);
  while (objects.size() < n) {
    SpatialObject o;
    if (rng.NextBernoulli(0.1) || clusters == 0) {
      o.location = {rng.NextDouble(domain.min.x, domain.max.x),
                    rng.NextDouble(domain.min.y, domain.max.y)};
    } else {
      const Point& c = centers[rng.NextUint64(clusters)];
      o.location = {rng.NextGaussian(c.x, sigma), rng.NextGaussian(c.y, sigma)};
      if (!domain.Contains(o.location)) continue;
    }
    o.measure = static_cast<double>(rng.NextInt64(0, 4));
    objects.push_back(o);
  }
  return objects;
}

/// A random circle or square query inside `domain`.
inline QueryRange RandomRange(const Rect& domain, double max_radius,
                              bool circle, Rng* rng) {
  const Point center{rng->NextDouble(domain.min.x, domain.max.x),
                     rng->NextDouble(domain.min.y, domain.max.y)};
  const double radius = rng->NextDouble(max_radius / 10.0, max_radius);
  if (circle) return QueryRange::MakeCircle(center, radius);
  return QueryRange::MakeRect({center.x - radius, center.y - radius},
                              {center.x + radius, center.y + radius});
}

/// One blocking HTTP GET against 127.0.0.1:`port`, full response
/// (status line, headers and body) returned raw. Deliberately simple —
/// the admin server closes the connection after one response, so
/// read-until-EOF is the whole protocol.
struct HttpReply {
  int status = 0;
  std::string headers;
  std::string body;
};

inline Result<HttpReply> HttpGet(uint16_t port, const std::string& target,
                                 const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) < 0) {
    ::close(fd);
    return Status::IOError(std::string("connect: ") + std::strerror(errno));
  }
  const std::string request = method + " " + target +
                              " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("send");
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("recv");
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  HttpReply reply;
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IOError("malformed response: " + raw);
  }
  reply.headers = raw.substr(0, head_end);
  reply.body = raw.substr(head_end + 4);
  // "HTTP/1.0 200 OK" -> 200
  const size_t space = reply.headers.find(' ');
  if (space == std::string::npos) return Status::IOError("no status code");
  reply.status = std::atoi(reply.headers.c_str() + space + 1);
  return reply;
}

/// Minimal JSON validity checker (recursive descent over the full
/// grammar, no DOM): enough to golden-test that exported documents parse.
class JsonChecker {
 public:
  static bool IsValid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipSpace();
    if (!checker.Value()) return false;
    checker.SkipSpace();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Eat('.')) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    const char c = Peek();
    if (c == '{') {
      ++pos_;
      SkipSpace();
      if (Eat('}')) return true;
      for (;;) {
        SkipSpace();
        if (!String()) return false;
        SkipSpace();
        if (!Eat(':')) return false;
        if (!Value()) return false;
        SkipSpace();
        if (Eat(',')) continue;
        return Eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      SkipSpace();
      if (Eat(']')) return true;
      for (;;) {
        if (!Value()) return false;
        SkipSpace();
        if (Eat(',')) continue;
        return Eat(']');
      }
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testing
}  // namespace fra

#endif  // FRA_TESTS_TEST_UTIL_H_
