#ifndef FRA_TESTS_TEST_UTIL_H_
#define FRA_TESTS_TEST_UTIL_H_

#include <vector>

#include "agg/spatial_object.h"
#include "geo/range.h"
#include "geo/rect.h"
#include "util/random.h"

namespace fra {
namespace testing {

/// Uniform random objects over `domain` with integer measures in [0, 4].
inline ObjectSet RandomObjects(size_t n, const Rect& domain, uint64_t seed) {
  Rng rng(seed);
  ObjectSet objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SpatialObject o;
    o.location = {rng.NextDouble(domain.min.x, domain.max.x),
                  rng.NextDouble(domain.min.y, domain.max.y)};
    o.measure = static_cast<double>(rng.NextInt64(0, 4));
    objects.push_back(o);
  }
  return objects;
}

/// Clustered random objects: `clusters` Gaussian blobs plus 10% uniform.
inline ObjectSet ClusteredObjects(size_t n, const Rect& domain, size_t clusters,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers(clusters);
  for (Point& c : centers) {
    c = {rng.NextDouble(domain.min.x, domain.max.x),
         rng.NextDouble(domain.min.y, domain.max.y)};
  }
  const double sigma = domain.Width() / 30.0;
  ObjectSet objects;
  objects.reserve(n);
  while (objects.size() < n) {
    SpatialObject o;
    if (rng.NextBernoulli(0.1) || clusters == 0) {
      o.location = {rng.NextDouble(domain.min.x, domain.max.x),
                    rng.NextDouble(domain.min.y, domain.max.y)};
    } else {
      const Point& c = centers[rng.NextUint64(clusters)];
      o.location = {rng.NextGaussian(c.x, sigma), rng.NextGaussian(c.y, sigma)};
      if (!domain.Contains(o.location)) continue;
    }
    o.measure = static_cast<double>(rng.NextInt64(0, 4));
    objects.push_back(o);
  }
  return objects;
}

/// A random circle or square query inside `domain`.
inline QueryRange RandomRange(const Rect& domain, double max_radius,
                              bool circle, Rng* rng) {
  const Point center{rng->NextDouble(domain.min.x, domain.max.x),
                     rng->NextDouble(domain.min.y, domain.max.y)};
  const double radius = rng->NextDouble(max_radius / 10.0, max_radius);
  if (circle) return QueryRange::MakeCircle(center, radius);
  return QueryRange::MakeRect({center.x - radius, center.y - radius},
                              {center.x + radius, center.y + radius});
}

}  // namespace testing
}  // namespace fra

#endif  // FRA_TESTS_TEST_UTIL_H_
