#include <gtest/gtest.h>

#include <cmath>

#include "geo/circle.h"
#include "geo/point.h"
#include "geo/projection.h"
#include "geo/range.h"
#include "geo/rect.h"
#include "util/random.h"

namespace fra {
namespace {

TEST(PointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({2, 2}, {2, 2}), 0.0);
}

TEST(RectTest, ContainsIsBoundaryInclusive) {
  const Rect rect{{0, 0}, {10, 5}};
  EXPECT_TRUE(rect.Contains(Point{0, 0}));
  EXPECT_TRUE(rect.Contains(Point{10, 5}));
  EXPECT_TRUE(rect.Contains(Point{5, 2.5}));
  EXPECT_FALSE(rect.Contains(Point{10.001, 2}));
  EXPECT_FALSE(rect.Contains(Point{5, -0.001}));
}

TEST(RectTest, AreaWidthHeight) {
  const Rect rect{{1, 2}, {4, 8}};
  EXPECT_DOUBLE_EQ(rect.Width(), 3.0);
  EXPECT_DOUBLE_EQ(rect.Height(), 6.0);
  EXPECT_DOUBLE_EQ(rect.Area(), 18.0);
  EXPECT_EQ(rect.Center(), (Point{2.5, 5.0}));
}

TEST(RectTest, EmptyIsInvalidAndAbsorbsUnions) {
  Rect rect = Rect::Empty();
  EXPECT_FALSE(rect.IsValid());
  EXPECT_DOUBLE_EQ(rect.Area(), 0.0);
  rect.ExpandToInclude(Point{3, 4});
  EXPECT_TRUE(rect.IsValid());
  EXPECT_EQ(rect.min, (Point{3, 4}));
  EXPECT_EQ(rect.max, (Point{3, 4}));
  rect.ExpandToInclude(Point{-1, 10});
  EXPECT_EQ(rect.min, (Point{-1, 4}));
  EXPECT_EQ(rect.max, (Point{3, 10}));
}

TEST(RectTest, ExpandToIncludeRect) {
  Rect rect{{0, 0}, {1, 1}};
  rect.ExpandToInclude(Rect{{2, -1}, {3, 0.5}});
  EXPECT_EQ(rect, (Rect{{0, -1}, {3, 1}}));
}

TEST(RectTest, IntersectionAndPredicates) {
  const Rect a{{0, 0}, {10, 10}};
  const Rect b{{5, 5}, {15, 15}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(Intersection(a, b), (Rect{{5, 5}, {10, 10}}));

  const Rect c{{11, 11}, {12, 12}};
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(Intersection(a, c).IsValid());

  // Touching edges count as intersecting (boundary inclusive).
  const Rect d{{10, 0}, {20, 10}};
  EXPECT_TRUE(a.Intersects(d));

  EXPECT_TRUE(a.Contains(Rect{{1, 1}, {9, 9}}));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(b));
}

TEST(RectTest, SquaredDistanceToPoint) {
  const Rect rect{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(rect.SquaredDistanceTo(Point{5, 5}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(rect.SquaredDistanceTo(Point{13, 5}), 9.0);  // right
  EXPECT_DOUBLE_EQ(rect.SquaredDistanceTo(Point{13, 14}), 25.0);  // corner
  EXPECT_DOUBLE_EQ(rect.SquaredDistanceTo(Point{-2, -2}), 8.0);
}

TEST(CircleTest, ContainsIsBoundaryInclusive) {
  const Circle circle{{0, 0}, 5.0};
  EXPECT_TRUE(circle.Contains(Point{3, 4}));    // exactly on boundary
  EXPECT_TRUE(circle.Contains(Point{0, 0}));
  EXPECT_FALSE(circle.Contains(Point{3.01, 4}));
}

TEST(CircleTest, IntersectsRect) {
  const Circle circle{{0, 0}, 2.0};
  EXPECT_TRUE(circle.Intersects(Rect{{-1, -1}, {1, 1}}));    // overlaps
  EXPECT_TRUE(circle.Intersects(Rect{{2, -1}, {4, 1}}));     // touches edge
  EXPECT_FALSE(circle.Intersects(Rect{{2.1, 2.1}, {3, 3}}));  // corner gap
  EXPECT_TRUE(circle.Intersects(Rect{{-10, -10}, {10, 10}}));  // inside rect
}

TEST(CircleTest, ContainsRectNeedsAllCorners) {
  const Circle circle{{0, 0}, 5.0};
  EXPECT_TRUE(circle.Contains(Rect{{-3, -3}, {3, 3}}));   // corners at r~4.24
  EXPECT_FALSE(circle.Contains(Rect{{-4, -4}, {4, 4}}));  // corners at r~5.66
}

TEST(CircleTest, BoundingBoxIsTight) {
  const Circle circle{{2, 3}, 1.5};
  EXPECT_EQ(circle.BoundingBox(), (Rect{{0.5, 1.5}, {3.5, 4.5}}));
}

TEST(QueryRangeTest, CircleDispatch) {
  const QueryRange range = QueryRange::MakeCircle({4, 6}, 3.0);
  ASSERT_TRUE(range.is_circle());
  EXPECT_FALSE(range.is_rect());
  // Paper Example 1: objects within the circle centered (4,6) radius 3.
  EXPECT_TRUE(range.Contains(Point{4, 6}));
  EXPECT_TRUE(range.Contains(Point{4, 9}));
  EXPECT_FALSE(range.Contains(Point{8, 6}));
  EXPECT_NEAR(range.Area(), M_PI * 9.0, 1e-12);
}

TEST(QueryRangeTest, RectDispatch) {
  const QueryRange range = QueryRange::MakeRect({0, 0}, {4, 2});
  ASSERT_TRUE(range.is_rect());
  EXPECT_TRUE(range.Contains(Point{4, 2}));
  EXPECT_FALSE(range.Contains(Point{4.1, 2}));
  EXPECT_DOUBLE_EQ(range.Area(), 8.0);
  EXPECT_TRUE(range.Contains(Rect{{1, 0.5}, {2, 1.5}}));
  EXPECT_FALSE(range.Contains(Rect{{1, 0.5}, {5, 1.5}}));
}

TEST(QueryRangeTest, DefaultIsEmptyRect) {
  const QueryRange range;
  EXPECT_TRUE(range.is_rect());
  EXPECT_FALSE(range.Contains(Point{0, 0}));
}

TEST(CircleRectAreaTest, RectFullyInsideCircle) {
  const Circle circle{{0, 0}, 10.0};
  const Rect rect{{-1, -1}, {1, 1}};
  EXPECT_NEAR(CircleRectIntersectionArea(circle, rect), 4.0, 1e-9);
}

TEST(CircleRectAreaTest, CircleFullyInsideRect) {
  const Circle circle{{0, 0}, 2.0};
  const Rect rect{{-5, -5}, {5, 5}};
  EXPECT_NEAR(CircleRectIntersectionArea(circle, rect), M_PI * 4.0, 1e-9);
}

TEST(CircleRectAreaTest, DisjointIsZero) {
  const Circle circle{{0, 0}, 1.0};
  EXPECT_DOUBLE_EQ(CircleRectIntersectionArea(circle, Rect{{5, 5}, {6, 6}}),
                   0.0);
  EXPECT_DOUBLE_EQ(CircleRectIntersectionArea(circle, Rect{{1.5, -1}, {2, 1}}),
                   0.0);
}

TEST(CircleRectAreaTest, HalfPlaneCut) {
  // Rect covering exactly the right half of the circle.
  const Circle circle{{0, 0}, 3.0};
  const Rect rect{{0, -10}, {10, 10}};
  EXPECT_NEAR(CircleRectIntersectionArea(circle, rect), M_PI * 9.0 / 2.0,
              1e-9);
}

TEST(CircleRectAreaTest, QuarterCut) {
  const Circle circle{{0, 0}, 2.0};
  const Rect rect{{0, 0}, {10, 10}};
  EXPECT_NEAR(CircleRectIntersectionArea(circle, rect), M_PI, 1e-9);
}

TEST(CircleRectAreaTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(
      CircleRectIntersectionArea(Circle{{0, 0}, 0.0}, Rect{{-1, -1}, {1, 1}}),
      0.0);
  EXPECT_DOUBLE_EQ(
      CircleRectIntersectionArea(Circle{{0, 0}, 1.0}, Rect::Empty()), 0.0);
}

// Property: closed-form area matches Monte Carlo for random configurations.
TEST(CircleRectAreaTest, MatchesMonteCarlo) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Circle circle{{rng.NextDouble(-5, 5), rng.NextDouble(-5, 5)},
                        rng.NextDouble(0.5, 4.0)};
    Rect rect;
    rect.min = {rng.NextDouble(-6, 4), rng.NextDouble(-6, 4)};
    rect.max = {rect.min.x + rng.NextDouble(0.5, 6.0),
                rect.min.y + rng.NextDouble(0.5, 6.0)};

    constexpr int kSamples = 200000;
    int inside = 0;
    for (int s = 0; s < kSamples; ++s) {
      const Point p{rng.NextDouble(rect.min.x, rect.max.x),
                    rng.NextDouble(rect.min.y, rect.max.y)};
      if (circle.Contains(p)) ++inside;
    }
    const double monte_carlo =
        rect.Area() * static_cast<double>(inside) / kSamples;
    const double exact = CircleRectIntersectionArea(circle, rect);
    EXPECT_NEAR(exact, monte_carlo, 0.05 * std::max(1.0, exact))
        << "trial " << trial;
  }
}

TEST(QueryRangeTest, IntersectionAreaDispatch) {
  const QueryRange circle = QueryRange::MakeCircle({0, 0}, 2.0);
  EXPECT_NEAR(circle.IntersectionArea(Rect{{-5, -5}, {5, 5}}), M_PI * 4.0,
              1e-9);
  const QueryRange rect = QueryRange::MakeRect({0, 0}, {4, 4});
  EXPECT_DOUBLE_EQ(rect.IntersectionArea(Rect{{2, 2}, {6, 6}}), 4.0);
  EXPECT_DOUBLE_EQ(rect.IntersectionArea(Rect{{5, 5}, {6, 6}}), 0.0);
}

TEST(ProjectionTest, OriginMapsToZero) {
  const Projection projection(40.0, 116.0);
  const Point p = projection.Forward(40.0, 116.0);
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
}

TEST(ProjectionTest, KnownDistances) {
  const Projection projection(40.0, 116.0);
  // One degree of latitude ~ 110.574 km.
  EXPECT_NEAR(projection.Forward(41.0, 116.0).y, 110.574, 1e-9);
  // One degree of longitude at 40N ~ 111.320 * cos(40 deg) ~ 85.28 km.
  EXPECT_NEAR(projection.Forward(40.0, 117.0).x, 85.276, 0.01);
}

TEST(ProjectionTest, RoundTrip) {
  const Projection projection(40.75, 116.35);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double lat = rng.NextDouble(39.5, 42.0);
    const double lon = rng.NextDouble(115.5, 117.2);
    const Point p = projection.Forward(lat, lon);
    double lat_back = 0.0;
    double lon_back = 0.0;
    projection.Inverse(p, &lat_back, &lon_back);
    EXPECT_NEAR(lat_back, lat, 1e-9);
    EXPECT_NEAR(lon_back, lon, 1e-9);
  }
}

TEST(ProjectionTest, PaperBeijingExtentIsRoughly145By276Km) {
  const Projection projection(39.5, 115.5);
  const Point far = projection.Forward(42.0, 117.2);
  EXPECT_NEAR(far.y, 276.4, 1.0);
  EXPECT_NEAR(far.x, 145.9, 1.5);
}

}  // namespace
}  // namespace fra
