#include "core/lsr_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"
#include "util/stats.h"

namespace fra {
namespace {

const Rect kDomain{{0, 0}, {100, 100}};

TEST(LsrForestTest, EmptyForest) {
  const LsrForest forest = LsrForest::Build({});
  EXPECT_EQ(forest.num_levels(), 0);
  EXPECT_EQ(forest.size(), 0UL);
  EXPECT_TRUE(forest
                  .ApproximateRangeAggregate(
                      QueryRange::MakeCircle({0, 0}, 1), 0.1, 0.01, 0.0)
                  .empty());
}

TEST(LsrForestTest, NumLevelsIsLogN) {
  const ObjectSet objects = testing::RandomObjects(1024, kDomain, 1);
  const LsrForest forest = LsrForest::Build(objects);
  EXPECT_EQ(forest.num_levels(), 11);  // 1 + log2(1024)
  EXPECT_EQ(forest.tree(0).size(), 1024UL);
}

TEST(LsrForestTest, LevelSizesHalveInExpectation) {
  const ObjectSet objects = testing::RandomObjects(65536, kDomain, 2);
  const LsrForest forest = LsrForest::Build(objects);
  for (int level = 1; level < forest.num_levels(); ++level) {
    const double expected =
        static_cast<double>(objects.size()) / std::pow(2.0, level);
    const double actual = static_cast<double>(forest.tree(level).size());
    if (expected >= 256.0) {
      EXPECT_NEAR(actual, expected, 5.0 * std::sqrt(expected))
          << "level " << level;
    }
    // Monotone: each level samples from the previous one.
    EXPECT_LE(forest.tree(level).size(), forest.tree(level - 1).size());
  }
}

TEST(LsrForestTest, MaxLevelsOptionCapsTheStack) {
  const ObjectSet objects = testing::RandomObjects(4096, kDomain, 3);
  LsrForest::Options options;
  options.max_levels = 1;
  const LsrForest forest = LsrForest::Build(objects, options);
  EXPECT_EQ(forest.num_levels(), 1);
  EXPECT_EQ(forest.tree(0).size(), 4096UL);
}

TEST(LsrForestTest, DeterministicGivenSeed) {
  const ObjectSet objects = testing::RandomObjects(2048, kDomain, 4);
  LsrForest::Options options;
  options.seed = 99;
  const LsrForest a = LsrForest::Build(objects, options);
  const LsrForest b = LsrForest::Build(objects, options);
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int level = 0; level < a.num_levels(); ++level) {
    EXPECT_EQ(a.tree(level).size(), b.tree(level).size());
  }
}

TEST(LsrForestTest, Level0IsExact) {
  const ObjectSet objects = testing::ClusteredObjects(3000, kDomain, 4, 5);
  const LsrForest forest = LsrForest::Build(objects);
  Rng rng(6);
  for (int q = 0; q < 20; ++q) {
    const QueryRange range = testing::RandomRange(kDomain, 20.0, true, &rng);
    const AggregateSummary expected = SummarizeIf(
        objects, [&](const Point& p) { return range.Contains(p); });
    EXPECT_EQ(forest.ExactRangeAggregate(range).count, expected.count);
    EXPECT_EQ(forest.AggregateAtLevel(range, 0).count, expected.count);
  }
}

// --- Lemma 1 level selection -------------------------------------------

TEST(SelectLevelTest, FormulaMatchesLemma1) {
  // l = floor(log2(eps^2 * sum0 / (3 ln(2/delta)))).
  const double eps = 0.1;
  const double delta = 0.01;
  const double sum0 = 1e6;
  const double budget = eps * eps * sum0 / (3.0 * std::log(2.0 / delta));
  const int expected = static_cast<int>(std::floor(std::log2(budget)));
  EXPECT_EQ(LsrForest::SelectLevel(eps, delta, sum0, 100), expected);
}

TEST(SelectLevelTest, ClampsToForestHeight) {
  EXPECT_EQ(LsrForest::SelectLevel(0.5, 0.01, 1e12, 5), 5);
}

TEST(SelectLevelTest, SmallBudgetFallsBackToExactLevel) {
  EXPECT_EQ(LsrForest::SelectLevel(0.05, 0.01, 100.0, 20), 0);
  EXPECT_EQ(LsrForest::SelectLevel(0.1, 0.01, 0.0, 20), 0);
  EXPECT_EQ(LsrForest::SelectLevel(0.1, 0.01, -5.0, 20), 0);
}

TEST(SelectLevelTest, MonotoneInEpsilonAndSum0) {
  int previous = 0;
  for (double eps : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    const int level = LsrForest::SelectLevel(eps, 0.01, 1e6, 100);
    EXPECT_GE(level, previous);
    previous = level;
  }
  previous = 0;
  for (double sum0 : {1e3, 1e4, 1e5, 1e6}) {
    const int level = LsrForest::SelectLevel(0.1, 0.01, sum0, 100);
    EXPECT_GE(level, previous);
    previous = level;
  }
}

TEST(SelectLevelTest, MonotoneInDelta) {
  // Larger delta (weaker guarantee) permits a higher level.
  int previous = 0;
  for (double delta : {0.01, 0.02, 0.03, 0.04, 0.05}) {
    const int level = LsrForest::SelectLevel(0.1, delta, 1e6, 100);
    EXPECT_GE(level, previous);
    previous = level;
  }
}

// --- Statistical properties of the Alg. 6 estimate ----------------------

TEST(LsrForestTest, EstimateIsUnbiasedAcrossSeeds) {
  const ObjectSet objects = testing::RandomObjects(20000, kDomain, 7);
  const QueryRange range = QueryRange::MakeCircle({50, 50}, 15);
  const AggregateSummary exact = SummarizeIf(
      objects, [&](const Point& p) { return range.Contains(p); });
  ASSERT_GT(exact.count, 500UL);

  RunningStat estimates;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    LsrForest::Options options;
    options.seed = seed * 7919 + 3;
    const LsrForest forest = LsrForest::Build(objects, options);
    const AggregateSummary estimate = forest.AggregateAtLevel(range, 3);
    estimates.Add(static_cast<double>(estimate.count));
  }
  const double exact_count = static_cast<double>(exact.count);
  // Mean over independent forests approaches the true count; allow 3
  // standard errors.
  const double standard_error =
      estimates.stddev() / std::sqrt(static_cast<double>(estimates.count()));
  EXPECT_NEAR(estimates.mean(), exact_count,
              3.0 * standard_error + 0.01 * exact_count);
}

TEST(LsrForestTest, Lemma1EmpiricalCoverage) {
  // Alg. 6 must be an eps-approximation with probability >= 1 - delta.
  // Check the empirical failure frequency over independent forests.
  const ObjectSet objects = testing::RandomObjects(30000, kDomain, 11);
  const QueryRange range = QueryRange::MakeCircle({50, 50}, 20);
  const AggregateSummary exact = SummarizeIf(
      objects, [&](const Point& p) { return range.Contains(p); });
  ASSERT_GT(exact.count, 1000UL);

  const double eps = 0.2;
  const double delta = 0.05;
  const double sum0 = static_cast<double>(exact.count);  // ideal rough bound

  int failures = 0;
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    LsrForest::Options options;
    options.seed = trial * 104729 + 17;
    const LsrForest forest = LsrForest::Build(objects, options);
    const AggregateSummary estimate =
        forest.ApproximateRangeAggregate(range, eps, delta, sum0);
    const double error =
        std::abs(static_cast<double>(estimate.count) -
                 static_cast<double>(exact.count)) /
        static_cast<double>(exact.count);
    if (error > eps) ++failures;
  }
  // Allow generous slack over delta for finite trials (binomial noise).
  EXPECT_LE(failures, static_cast<int>(kTrials * (delta + 0.10)));
}

TEST(LsrForestTest, LevelUsedIsReported) {
  const ObjectSet objects = testing::RandomObjects(16384, kDomain, 12);
  const LsrForest forest = LsrForest::Build(objects);
  int level = -1;
  forest.ApproximateRangeAggregate(QueryRange::MakeCircle({50, 50}, 30), 0.2,
                                   0.05, 1e5, &level);
  EXPECT_EQ(level,
            LsrForest::SelectLevel(0.2, 0.05, 1e5, forest.max_level()));
  EXPECT_GT(level, 0);
}

TEST(LsrForestTest, ClippedAggregateAtLevelZeroMatchesPredicate) {
  const ObjectSet objects = testing::RandomObjects(5000, kDomain, 13);
  const LsrForest forest = LsrForest::Build(objects);
  const QueryRange range = QueryRange::MakeCircle({40, 40}, 15);
  const Rect clip{{30, 30}, {45, 45}};
  const AggregateSummary expected = SummarizeIf(
      objects, [&](const Point& p) {
        return clip.Contains(p) && range.Contains(p);
      });
  EXPECT_EQ(forest.AggregateAtLevelClipped(clip, range, 0).count,
            expected.count);
}

TEST(LsrForestTest, MemoryIsAboutTwiceTheBaseTree) {
  const ObjectSet objects = testing::RandomObjects(50000, kDomain, 14);
  const LsrForest forest = LsrForest::Build(objects);
  const size_t base = forest.tree(0).MemoryUsage();
  EXPECT_GT(forest.MemoryUsage(), base);
  EXPECT_LT(forest.MemoryUsage(), 3 * base);
}

TEST(LsrForestTest, HigherLevelsAreFasterToQuery) {
  const ObjectSet objects = testing::ClusteredObjects(100000, kDomain, 5, 15);
  const LsrForest forest = LsrForest::Build(objects);
  const QueryRange range = QueryRange::MakeCircle({50, 50}, 25);
  RTree::QueryStats low_stats;
  RTree::QueryStats high_stats;
  forest.AggregateAtLevel(range, 0, &low_stats);
  forest.AggregateAtLevel(range, 6, &high_stats);
  EXPECT_LT(high_stats.nodes_visited, low_stats.nodes_visited);
}

}  // namespace
}  // namespace fra
